"""Design-space exploration of the approximate MAC array.

Sweeps the array size ``N`` and the perforation parameter ``m`` and reports,
for each configuration, the hardware model's normalized power and area, the
MAC+ column overhead, and the theoretical full-adder savings — i.e. the
hardware half of the paper (Table I, Fig. 4, Table II) exposed as a library
API the user can query for their own design points.

Run with ``python examples/accelerator_design_space.py``.
"""

from repro.analysis import Table
from repro.core import AcceleratorConfig
from repro.hardware import (
    macplus_area_share,
    macplus_power_share,
    normalized_array_area,
    normalized_array_power,
    total_fa_decrease,
)


def main() -> None:
    table = Table(
        title="Approximate MAC-array design space (normalized to the accurate array)",
        columns=[
            "N",
            "m",
            "power",
            "area",
            "power_saving_%",
            "MAC+_power_%",
            "MAC+_area_%",
            "FA_decrease",
        ],
    )
    for n in (16, 32, 48, 64, 128):
        for m in (1, 2, 3):
            config = AcceleratorConfig.make(n, m, use_control_variate=True)
            power = normalized_array_power(config)
            area = normalized_array_area(config)
            table.add_row(
                n,
                m,
                power,
                area,
                100.0 * (1.0 - power),
                100.0 * macplus_power_share(config),
                100.0 * macplus_area_share(config),
                int(total_fa_decrease(n, m)),
            )
    print(table.render())
    print()
    print("Observations (matching Section V-A of the paper):")
    print(" * the power saving is set by m and is nearly independent of N;")
    print(" * the MAC+ column overhead shrinks as the array grows (O(N) vs O(N^2));")
    print(" * m = 1 keeps the area essentially unchanged, m = 3 yields the largest savings.")


if __name__ == "__main__":
    main()
