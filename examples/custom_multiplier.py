"""Using a custom approximate multiplier with the library.

The control-variate technique applies to any multiplier whose error has a
usable analytical form, and the executor accepts arbitrary LUT multipliers
(the TFApprox-style path).  This example shows both extension points:

1. define a custom functional approximate multiplier (operand-rounding);
2. characterize it (error statistics, LUT) and add it to a library;
3. run a small network with it through the LUT execution path;
4. compare against the paper's perforated multiplier with the control
   variate on the same network.

Run with ``python examples/custom_multiplier.py``.
"""

import numpy as np

from repro.analysis import Table
from repro.multipliers import (
    Multiplier,
    MultiplierLibrary,
    PerforatedMultiplier,
    empirical_error_stats,
)
from repro.multipliers.base import _validate_operands
from repro.simulation import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
    TrainingSettings,
    experiment_dataset,
    train_reference_model,
)
from repro.simulation.metrics import accuracy, accuracy_loss_percent


class RoundToNearestMultiplier(Multiplier):
    """Round the activation operand to the nearest multiple of ``2^r``.

    Unlike perforation (which truncates), rounding has a near-zero mean
    error but keeps a similar variance — a useful contrast when studying
    what the control variate actually fixes.
    """

    def __init__(self, r: int):
        if not 1 <= r < 8:
            raise ValueError("r must be within [1, 7]")
        self.r = int(r)
        self.name = f"round_r{self.r}"

    def multiply(self, w, a):
        w, a = _validate_operands(w, a)
        step = 1 << self.r
        rounded = np.clip(((a + step // 2) >> self.r) << self.r, 0, 255)
        return w * rounded


def main() -> None:
    custom = RoundToNearestMultiplier(2)
    stats = empirical_error_stats(custom)
    print(f"custom multiplier {custom.name}: mean error {stats.mean:.2f}, "
          f"std {stats.std:.2f}, max |err| {stats.max_absolute:.0f}")

    library = MultiplierLibrary.from_multipliers(
        [custom, PerforatedMultiplier(2)]
    )
    for entry in library:
        print(f"  library entry {entry.name}: relative power {entry.relative_power:.2f}")

    dataset = experiment_dataset(num_classes=10)
    trained = train_reference_model("shufflenet", dataset, TrainingSettings(epochs=6))
    executor = ApproximateExecutor(trained.model, dataset.train_images[:128])
    baseline = accuracy(
        executor.predict(dataset.test_images, ExecutionPlan.uniform(AccurateProduct())),
        dataset.test_labels,
    )

    table = Table(
        title=f"shufflenet on {dataset.name} (baseline accuracy {baseline:.3f})",
        columns=["product model", "accuracy", "loss_%"],
    )
    plans = {
        "custom rounding (LUT path)": ExecutionPlan.uniform(LUTProduct(custom)),
        "perforated m=2 w/o V": ExecutionPlan.uniform(
            PerforatedProduct(2, use_control_variate=False)
        ),
        "perforated m=2 ours (+V)": ExecutionPlan.uniform(
            PerforatedProduct(2, use_control_variate=True)
        ),
    }
    for label, plan in plans.items():
        acc = accuracy(executor.predict(dataset.test_images, plan), dataset.test_labels)
        table.add_row(label, acc, accuracy_loss_percent(baseline, acc))
    print()
    print(table.render(float_format="{:.3f}"))


if __name__ == "__main__":
    main()
