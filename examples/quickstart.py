"""Quickstart: the control-variate correction on a single convolution.

This example reproduces the paper's core argument at the smallest possible
scale, without training any network:

1. take one convolution filter with realistic (concentrated) weights;
2. compute its output with exact multipliers, with perforated multipliers,
   and with perforated multipliers plus the control variate;
3. compare the measured error statistics against the closed-form model of
   Section III (eqs. (3), (10), (12)).

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro.core import (
    ControlVariate,
    accurate_product_sums,
    convolution_error_stats,
    perforated_product_sums,
)


def main() -> None:
    rng = np.random.default_rng(2021)

    # A 3x3x64 filter (576 taps) whose quantized weights concentrate around a
    # mean code, the way trained filters do (Fig. 1 of the paper).
    taps, filters = 576, 4
    weights = np.clip(rng.normal(128, 18, size=(taps, filters)).round(), 0, 255).astype(np.int64)
    activations = rng.integers(0, 256, size=(2000, taps), dtype=np.int64)

    m = 2
    exact = accurate_product_sums(activations, weights)
    approx = perforated_product_sums(activations, weights, m)
    control_variate = ControlVariate.from_weight_matrix(weights)
    corrected = perforated_product_sums(activations, weights, m, control_variate)

    print(f"Perforation m = {m}, {taps} taps, {filters} filters, 2000 input patches\n")
    header = f"{'filter':>6}  {'mode':<12}  {'mean err':>10}  {'std err':>10}"
    print(header)
    print("-" * len(header))
    for f in range(filters):
        measured_wo = exact[:, f] - approx[:, f]
        measured_cv = exact[:, f] - corrected[:, f]
        model_wo = convolution_error_stats(weights[:, f], m, use_control_variate=False)
        model_cv = convolution_error_stats(weights[:, f], m, use_control_variate=True)
        print(f"{f:>6}  {'w/o V':<12}  {measured_wo.mean():>10.1f}  {measured_wo.std():>10.1f}"
              f"   (model: mean={model_wo.mean:.1f}, std={model_wo.std:.1f})")
        print(f"{f:>6}  {'ours (+V)':<12}  {measured_cv.mean():>10.1f}  {measured_cv.std():>10.1f}"
              f"   (model: mean={model_cv.mean:.1f}, std={model_cv.std:.1f})")

    reduction = np.mean(
        [
            convolution_error_stats(weights[:, f], m, use_control_variate=False).variance
            / convolution_error_stats(weights[:, f], m, use_control_variate=True).variance
            for f in range(filters)
        ]
    )
    print(f"\nAverage variance reduction factor of the control variate: {reduction:.1f}x")
    print("The control variate nullifies the mean error and shrinks the variance,")
    print("which is what lets the accelerator use aggressive perforation values.")


if __name__ == "__main__":
    main()
