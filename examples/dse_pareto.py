"""Automated design-space exploration: per-layer approximation Pareto front.

Trains a small reference network on a synthetic CIFAR-like dataset, then
lets the DSE engine search the per-layer mix of perforated multipliers
(with and without the control-variate MAC+ column) that minimizes the
modeled array energy within an accuracy-loss budget — the paper's decision
procedure, automated.  Two strategies run on the same campaign ledger, so
the second one re-uses every plan the first already evaluated:

* ``greedy`` — the energy-per-accuracy descent the paper's selection implies;
* ``nsga2`` — seeded genetic multi-objective search.

Run with ``python examples/dse_pareto.py`` (takes about a minute on a
laptop; most of it is training the reference model).
"""

import tempfile

import numpy as np

from repro.analysis import pareto_front_table
from repro.core.seeding import SeedBank
from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.dse import CampaignLedger, get_strategy, run_campaign
from repro.models.zoo import build_model
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer
from repro.simulation.campaign import TrainedModel

MAX_LOSS = 0.5  # percentage points, the paper's headline budget


def main() -> None:
    bank = SeedBank(0)
    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10,
            image_size=16,
            train_per_class=60,
            test_per_class=20,
            seed=bank.seed_for("dataset"),
        )
    )
    print(f"training a small vgg13 on {dataset.name} ...")
    model = build_model(
        "vgg13", num_classes=10, base_width=8, rng=bank.generator("init")
    )
    trainer = Trainer(model, SGD(learning_rate=0.08), rng=bank.generator("train"))
    trainer.fit(dataset.train_images, dataset.train_labels, epochs=3, batch_size=32)
    trained = TrainedModel(
        name="vgg13", dataset_name=dataset.name, model=model, float_accuracy=0.0
    )

    with tempfile.TemporaryDirectory() as ledger_dir:
        for index, strategy in enumerate(
            ["greedy", get_strategy("nsga2", population=12, generations=3)]
        ):
            result = run_campaign(
                trained,
                dataset,
                strategy=strategy,
                max_loss=MAX_LOSS,
                budget_evals=120,
                calibration_images=64,
                ledger=CampaignLedger(ledger_dir),
                resume=index > 0,  # the second strategy replays the first's ledger
                rng=bank.generator("nsga2"),
                array_size=64,
            )
            stats = result.stats
            print()
            print(
                f"strategy={result.strategy}: {stats['evaluations']} fresh "
                f"evaluations, {stats['ledger_replays']} ledger replays, "
                f"{stats['wall_clock_s']:.1f} s"
            )
            table = pareto_front_table(
                result.front.points(),
                baseline_energy_nj=result.accurate_energy_nj,
                title=f"Pareto front after {result.strategy} "
                f"(loss budget {MAX_LOSS}%)",
            )
            print(table.render(float_format="{:.3f}"))
            best = result.best()
            if best is not None:
                print(
                    f"-> minimum-energy feasible point: {best.label} "
                    f"({result.energy_reduction_percent():.1f}% energy below "
                    f"the accurate design at {best.accuracy_loss:+.2f}% loss)"
                )


if __name__ == "__main__":
    main()
