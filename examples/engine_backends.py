"""Selecting an engine backend for the compiled product-kernel engine.

The approximate executor compiles every (layer, plan) combination into a
:class:`repro.core.product_kernels.ProductKernel` through a pluggable
*engine backend* (:mod:`repro.core.backends`).  All backends are bit-exact
— they trade simulation speed and memory only — and unavailable backends
(e.g. ``numba`` without the package installed) fall back to ``numpy`` with
a warning.  The same selection is available end to end:

* library: ``ApproximateExecutor(model, calib, engine_backend="lowmem")``
* sweeps:  ``parallel_sweep(models, datasets, engine_backend="lowmem")``
* config:  ``AcceleratorConfig(engine_backend="lowmem")``
* CLI:     ``python -m repro accuracy --model vgg13 --engine-backend lowmem``
           and ``python -m repro backends`` to list availability.

This script compiles one ResNet-shaped conv layer's product models through
every available backend and checks them against the legacy reference.
"""

import numpy as np

from repro.core.approx_conv import lut_product_sums, perforated_product_sums
from repro.core.backends import backend_names, get_backend
from repro.core.control_variate import ControlVariate
from repro.multipliers.lut import LUTMultiplier
from repro.simulation.inference import LUTProduct, PerforatedProduct


def main() -> None:
    rng = np.random.default_rng(0)
    acts = rng.integers(0, 256, size=(512, 144), dtype=np.uint8)
    weights = rng.integers(0, 256, size=(144, 32), dtype=np.uint8)
    cv = ControlVariate.from_weight_matrix(weights)
    lut = np.arange(256, dtype=np.int64)[:, None] * np.arange(256, dtype=np.int64)
    lut = lut + rng.integers(-100, 100, size=(256, 256))

    perforated_ref = perforated_product_sums(acts, weights, 2, cv)
    lut_ref = lut_product_sums(acts, weights, lut)

    print("engine backends (see also: python -m repro backends)")
    for name in backend_names():
        backend = get_backend(name)
        available, reason = backend.availability()
        if not available:
            print(f"  {name:<8} unavailable: {reason}")
            continue
        for label, model, reference in (
            ("perforated m=2 +V", PerforatedProduct(2, True), perforated_ref),
            ("lut (random table)", LUTProduct(LUTMultiplier(lut, name="example")), lut_ref),
        ):
            kernel = backend.compile(model, weights, cv)
            ok = np.array_equal(kernel(acts), reference)
            print(
                f"  {name:<8} {label:<20} -> {type(kernel).__name__:<22} "
                f"bit-exact: {'yes' if ok else 'NO'}"
            )
            assert ok, f"backend {name} diverged from the legacy reference on {label}"


if __name__ == "__main__":
    main()
