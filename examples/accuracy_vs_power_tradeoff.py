"""Accuracy / power trade-off of the control-variate accelerator on a real model.

Trains a small VGG-13-style network on the CIFAR-like dataset, then evaluates
it on approximate accelerators with perforation m = 1..3, with and without
the control variate, and reports the accuracy loss next to the modeled power
saving — the per-network version of Table III + Fig. 4.

Run with ``python examples/accuracy_vs_power_tradeoff.py`` (a couple of
minutes: it trains the reference network with the numpy engine).
"""

import numpy as np

from repro.analysis import Table
from repro.core import AcceleratorConfig
from repro.hardware import normalized_array_power
from repro.simulation import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    PerforatedProduct,
    TrainingSettings,
    experiment_dataset,
    train_reference_model,
)
from repro.simulation.metrics import accuracy, accuracy_loss_percent


def main() -> None:
    dataset = experiment_dataset(num_classes=10)
    print(f"Training vgg13 on {dataset.name} "
          f"({dataset.n_train} train / {dataset.n_test} test images)...")
    trained = train_reference_model(
        "vgg13", dataset, TrainingSettings(epochs=6), verbose=True
    )
    print(f"float test accuracy: {trained.float_accuracy:.3f}\n")

    executor = ApproximateExecutor(trained.model, dataset.train_images[:128])
    baseline_plan = ExecutionPlan.uniform(AccurateProduct())
    baseline = accuracy(
        executor.predict(dataset.test_images, baseline_plan), dataset.test_labels
    )
    print(f"8-bit quantized (accurate array) accuracy: {baseline:.3f}\n")

    table = Table(
        title="Accuracy loss vs modeled power saving (64x64 array)",
        columns=["m", "method", "accuracy", "loss_%", "power_saving_%"],
    )
    for m in (1, 2, 3):
        for use_cv, label in ((True, "ours (+V)"), (False, "w/o V")):
            plan = ExecutionPlan.uniform(PerforatedProduct(m, use_control_variate=use_cv))
            acc = accuracy(
                executor.predict(dataset.test_images, plan), dataset.test_labels
            )
            config = AcceleratorConfig.make(64, m, use_control_variate=use_cv)
            saving = 100.0 * (1.0 - normalized_array_power(config))
            table.add_row(m, label, acc, accuracy_loss_percent(baseline, acc), saving)
    print(table.render(float_format="{:.3f}"))
    print("\nWith the control variate the network tolerates aggressive perforation")
    print("(large power savings at near-zero accuracy loss); without it the same")
    print("multipliers destroy the accuracy — the paper's central claim.")


if __name__ == "__main__":
    main()
