"""Functional simulation of the (approximate) weight-stationary systolic array.

The simulation reproduces, tile by tile, what the hardware of Section IV
computes: weights are loaded as ``N x N`` stationary tiles, activation
patches stream through the rows, every column accumulates its partial sum
(and, in the approximate array, the ``sumX`` sum of perforated activation
bits), and the MAC+ column finally applies ``V = C * sumX`` and re-aligns
the bias.  The result is bit-identical to the vectorized fast paths in
:mod:`repro.core.approx_conv`, which the test-suite asserts — this is the
cross-check that the "mathematical" view of the control variate and its
hardware implementation agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accelerator_model import AcceleratorConfig


@dataclass(frozen=True)
class TileResult:
    """Bookkeeping for one (row-tile, column-tile) mapping step."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    streamed_patches: int


class SystolicArray:
    """Functional model of the ``N x N`` (+ MAC+ column) systolic array."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config

    # ------------------------------------------------------------------
    def matmul(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        bias_codes: np.ndarray | None = None,
        control_constants: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[TileResult]]:
        """Run a quantized ``(patches x taps) @ (taps x filters)`` workload.

        Parameters
        ----------
        act_codes:
            ``(patches, taps)`` unsigned 8-bit activation codes.
        weight_codes:
            ``(taps, filters)`` unsigned 8-bit weight codes.
        bias_codes:
            Optional integer bias per filter added to the accumulation
            (the ``B`` of eq. (1); already in the integer domain).
        control_constants:
            Optional per-filter 8-bit control constants ``C``.  Required when
            the configuration uses the control variate.

        Returns
        -------
        (outputs, tiles):
            ``outputs`` is the ``(patches, filters)`` integer result;
            ``tiles`` records the mapping steps (used by the cycle model
            tests).
        """
        act = np.asarray(act_codes, dtype=np.int64)
        weights = np.asarray(weight_codes, dtype=np.int64)
        if act.ndim != 2 or weights.ndim != 2 or act.shape[1] != weights.shape[0]:
            raise ValueError("incompatible activation / weight shapes")
        taps, filters = weights.shape
        patches = act.shape[0]
        if bias_codes is None:
            bias_codes = np.zeros(filters, dtype=np.int64)
        bias_codes = np.asarray(bias_codes, dtype=np.int64)
        if bias_codes.shape != (filters,):
            raise ValueError(f"bias_codes must have shape ({filters},)")

        config = self.config
        n = config.array_size
        m = config.perforation
        use_cv = config.is_approximate and config.use_control_variate
        if use_cv:
            if control_constants is None:
                raise ValueError(
                    "control_constants are required when the control variate is enabled"
                )
            control_constants = np.asarray(control_constants, dtype=np.int64)
            if control_constants.shape != (filters,):
                raise ValueError(f"control_constants must have shape ({filters},)")

        outputs = np.zeros((patches, filters), dtype=np.int64)
        tiles: list[TileResult] = []
        mask = (1 << m) - 1 if m else 0

        for col_start in range(0, filters, n):
            col_stop = min(col_start + n, filters)
            col_sum = np.zeros((patches, col_stop - col_start), dtype=np.int64)
            col_sumx = np.zeros(patches, dtype=np.int64)
            for row_start in range(0, taps, n):
                row_stop = min(row_start + n, taps)
                tiles.append(
                    TileResult(row_start, row_stop, col_start, col_stop, patches)
                )
                w_tile = weights[row_start:row_stop, col_start:col_stop]
                a_tile = act[:, row_start:row_stop]
                if config.is_approximate:
                    x_tile = a_tile & mask
                    col_sum += (a_tile - x_tile) @ w_tile
                    if use_cv:
                        col_sumx += x_tile.sum(axis=1)
                else:
                    col_sum += a_tile @ w_tile
            col_out = col_sum + bias_codes[None, col_start:col_stop]
            if use_cv:
                # The MAC+ column multiplies the streamed sumX by the per-filter
                # constant and adds it to the partial sum (eqs. (14)-(15)).
                col_out = col_out + col_sumx[:, None] * control_constants[None, col_start:col_stop]
            outputs[:, col_start:col_stop] = col_out
        return outputs, tiles
