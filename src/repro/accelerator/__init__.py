"""TPU-like systolic MAC-array substrate.

Section IV of the paper implements the control-variate correction on a
weight-stationary ``N x N`` systolic array (Fig. 2/3): the first ``N``
columns hold MAC* units (perforated multiplier, narrowed accumulator and a
small ``sumX`` accumulator for the perforated bits) and an extra column of
MAC+ units applies the correction ``V = C * sumX``.

This package provides:

* :mod:`~repro.accelerator.mac_unit` — bit-accurate behavioural models of
  the accurate MAC, MAC* and MAC+ units (eqs. (13)–(15));
* :mod:`~repro.accelerator.systolic` — a functional array simulation that
  tiles an arbitrary ``(taps x filters)`` workload onto the array and is
  cross-checked against the numpy matrix product;
* :mod:`~repro.accelerator.scheduling` — a SCALE-Sim-style weight-stationary
  cycle model used for the energy numbers of Fig. 5;
* :mod:`~repro.accelerator.energy` — ``energy = cycles x power x delay``.
"""

from repro.accelerator.mac_unit import MacUnit, MacStarUnit, MacPlusUnit, adder_bits
from repro.accelerator.systolic import SystolicArray, TileResult
from repro.accelerator.scheduling import (
    LayerShape,
    layer_shapes_of_model,
    tile_count,
    layer_cycles,
    network_cycles,
)
from repro.accelerator.energy import EnergyReport, layer_energy, network_energy

__all__ = [
    "MacUnit",
    "MacStarUnit",
    "MacPlusUnit",
    "adder_bits",
    "SystolicArray",
    "TileResult",
    "LayerShape",
    "layer_shapes_of_model",
    "tile_count",
    "layer_cycles",
    "network_cycles",
    "EnergyReport",
    "layer_energy",
    "network_energy",
]
