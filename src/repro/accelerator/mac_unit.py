"""Bit-accurate behavioural models of the MAC, MAC* and MAC+ units.

These classes mirror the datapaths of Fig. 2b and Fig. 3b/3c of the paper.
They are intentionally scalar and cycle-by-cycle — the vectorized inference
paths never use them — and exist so the array-level simulation and the
hardware cost models can be validated against an explicit register-transfer
level description of what each unit computes (eqs. (13)–(15)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def adder_bits(array_size: int, operand_bits: int = 16) -> int:
    """Accumulator width avoiding overflow: ``ceil(log2(N * (2^bits - 1)))``.

    For a 64x64 array accumulating 16-bit products this is the 22-bit adder
    quoted in Section IV.
    """
    if array_size < 1:
        raise ValueError(f"array_size must be positive, got {array_size}")
    return int(np.ceil(np.log2(array_size * ((1 << operand_bits) - 1))))


def sumx_adder_bits(array_size: int, m: int) -> int:
    """Width of the perforated-bits accumulator: ``ceil(log2(N * (2^m - 1)))``."""
    if m < 1:
        raise ValueError(f"m must be >= 1 for a sumX accumulator, got {m}")
    return int(np.ceil(np.log2(array_size * ((1 << m) - 1))))


@dataclass
class MacUnit:
    """Accurate MAC unit: ``sum_out = sum_in + W * A`` (Fig. 2b)."""

    array_size: int = 64

    @property
    def accumulator_bits(self) -> int:
        return adder_bits(self.array_size)

    def step(self, weight: int, activation: int, sum_in: int) -> int:
        """One MAC operation."""
        _check_operand(weight, "weight")
        _check_operand(activation, "activation")
        return sum_in + weight * activation


@dataclass
class MacStarUnit:
    """MAC* unit of Fig. 3b: perforated product plus the ``sumX`` side channel.

    The unit computes (eq. (13)):

        P*      = W * A[7:m]               (product of the truncated activation)
        sum_out = sum_in + P*              (accumulation, m bits narrower)
        sumX_out = sumX_in + A[m-1:0]      (running sum of the perforated bits)
    """

    m: int
    array_size: int = 64

    def __post_init__(self) -> None:
        if not 1 <= self.m < 8:
            raise ValueError(f"m must be within [1, 7], got {self.m}")

    @property
    def accumulator_bits(self) -> int:
        """The MAC* accumulator is ``m`` bits narrower than the accurate one."""
        return adder_bits(self.array_size) - self.m

    @property
    def sumx_bits(self) -> int:
        return sumx_adder_bits(self.array_size, self.m)

    def step(
        self, weight: int, activation: int, sum_in: int, sumx_in: int
    ) -> tuple[int, int]:
        """One MAC* operation; returns ``(sum_out, sumX_out)``.

        ``sum_in``/``sum_out`` are kept in the shifted domain of the paper:
        the accumulated quantity is ``(W * A_truncated) >> m``, which is an
        integer because the truncated activation is a multiple of ``2^m``.
        """
        _check_operand(weight, "weight")
        _check_operand(activation, "activation")
        x = activation & ((1 << self.m) - 1)
        truncated = activation - x
        product_shifted = (weight * truncated) >> self.m
        return sum_in + product_shifted, sumx_in + x


@dataclass
class MacPlusUnit:
    """MAC+ unit of Fig. 3c: applies the control variate to the partial sum.

    The unit computes (eqs. (14)–(15)):

        V  = C * sumX_N
        G* = {sum_N, B[m-1:0]} + V

    where ``{sum_N, B[m-1:0]}`` shifts the narrowed partial sum back to full
    precision and re-inserts the ``m`` low bits of the bias that the first
    column could not absorb.
    """

    m: int
    array_size: int = 64

    def __post_init__(self) -> None:
        if not 1 <= self.m < 8:
            raise ValueError(f"m must be within [1, 7], got {self.m}")

    @property
    def multiplier_bits(self) -> tuple[int, int]:
        """Operand widths of the accurate multiplier computing ``C * sumX``."""
        return (sumx_adder_bits(self.array_size, self.m), 8)

    @property
    def adder_bits(self) -> int:
        """Final adder width — same as the accurate MAC accumulator."""
        return adder_bits(self.array_size)

    def step(self, control_constant: int, sumx: int, sum_in: int, bias_low: int = 0) -> int:
        """Produce the corrected output ``G*`` for one output element."""
        if not 0 <= control_constant <= 255:
            raise ValueError("control_constant must be an 8-bit value")
        if not 0 <= bias_low < (1 << self.m):
            raise ValueError(f"bias_low must fit in {self.m} bits")
        correction = control_constant * sumx
        return ((sum_in << self.m) | bias_low) + correction


def _check_operand(value: int, name: str) -> None:
    if not 0 <= int(value) <= 255:
        raise ValueError(f"{name} must be an unsigned 8-bit value, got {value}")
