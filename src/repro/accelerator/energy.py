"""Energy accounting: ``energy = cycles x power x delay`` (Section V-C).

The power of the array comes from :mod:`repro.hardware.area_power` (or any
other source); this module only multiplies it with the cycle counts of the
scheduling model and the clock period, exactly as the paper does for the
Fig. 5 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.scheduling import LayerShape, layer_cycles
from repro.core.accelerator_model import AcceleratorConfig


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of a network executed on one array configuration."""

    config: AcceleratorConfig
    power_mw: float
    clock_ns: float
    total_cycles: int
    layer_cycles: dict[str, int]

    @property
    def total_energy_nj(self) -> float:
        """Total energy in nanojoules (mW x ns = pJ; divided by 1000)."""
        return self.power_mw * self.clock_ns * self.total_cycles / 1e3

    @property
    def latency_us(self) -> float:
        """End-to-end latency in microseconds."""
        return self.total_cycles * self.clock_ns / 1e3


def layer_energy(
    shape: LayerShape, config: AcceleratorConfig, power_mw: float, clock_ns: float | None = None
) -> float:
    """Energy (nJ) of a single layer on the configured array."""
    if power_mw < 0:
        raise ValueError("power_mw must be non-negative")
    clock = config.clock_ns if clock_ns is None else clock_ns
    return layer_cycles(shape, config) * power_mw * clock / 1e3


def network_energy(
    shapes: list[LayerShape],
    config: AcceleratorConfig,
    power_mw: float,
    clock_ns: float | None = None,
) -> EnergyReport:
    """Energy report for a whole network (list of conv/dense layer shapes)."""
    if power_mw < 0:
        raise ValueError("power_mw must be non-negative")
    clock = config.clock_ns if clock_ns is None else clock_ns
    per_layer = {shape.name: layer_cycles(shape, config) for shape in shapes}
    total = int(sum(per_layer.values()))
    return EnergyReport(
        config=config,
        power_mw=power_mw,
        clock_ns=clock,
        total_cycles=total,
        layer_cycles=per_layer,
    )
