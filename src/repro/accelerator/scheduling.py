"""Weight-stationary scheduling and cycle model (SCALE-Sim substitute).

The paper obtains layer cycle counts from ARM's SCALE-Sim cycle-accurate
simulator to compute ``energy = cycles x power x delay`` for the Fig. 5
comparison.  This module implements the standard weight-stationary systolic
timing model that SCALE-Sim uses:

* a convolution layer is lowered to a ``(patches x taps) @ (taps x filters)``
  matrix multiplication (same lowering as :mod:`repro.nn.im2col`);
* weights are mapped in ``ceil(taps / N) * ceil(filters / N)`` stationary
  tiles;
* each tile costs ``(N - 1)`` cycles to fill, ``patches`` cycles to stream,
  and ``(N - 1)`` cycles to drain the partial sums;
* the MAC+ column of the approximate array adds one pipeline cycle per
  layer (Section V-A measured l = 1 for all evaluated sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accelerator_model import AcceleratorConfig
from repro.nn.graph import Graph
from repro.nn.layers import Conv2D, Dense


@dataclass(frozen=True)
class LayerShape:
    """MAC-level shape of one convolution or dense layer."""

    name: str
    patches: int
    taps: int
    filters: int
    groups: int = 1

    def __post_init__(self) -> None:
        if min(self.patches, self.taps, self.filters, self.groups) < 1:
            raise ValueError("all LayerShape dimensions must be positive")

    @property
    def macs(self) -> int:
        """Number of multiply-accumulate operations of the layer."""
        return self.patches * self.taps * self.filters * self.groups


def layer_shapes_of_model(
    model: Graph, input_shape: tuple[int, int, int], batch: int = 1
) -> list[LayerShape]:
    """Extract the MAC-level shapes of every conv / dense layer of a model.

    A dummy forward pass with a single batch determines the spatial sizes at
    each node, from which the im2col dimensions follow.
    """
    dummy = np.zeros((batch,) + tuple(input_shape), dtype=np.float64)
    _, activations = model.forward(dummy, training=False, return_activations=True)
    shapes: list[LayerShape] = []
    for node in model.conv_dense_nodes():
        layer = node.layer
        parent = node.inputs[0]
        in_act = activations[parent]
        out_act = activations[node.name]
        if isinstance(layer, Conv2D):
            patches = int(np.prod(out_act.shape[:3]))
            taps = layer.kernel_size * layer.kernel_size * (layer.in_channels // layer.groups)
            filters = layer.out_channels // layer.groups
            shapes.append(
                LayerShape(node.name, patches, taps, filters, groups=layer.groups)
            )
        elif isinstance(layer, Dense):
            patches = int(in_act.shape[0])
            shapes.append(
                LayerShape(node.name, patches, layer.in_features, layer.out_features)
            )
    return shapes


def tile_count(shape: LayerShape, array_size: int) -> int:
    """Number of stationary weight tiles needed for one layer."""
    rows = int(np.ceil(shape.taps / array_size))
    cols = int(np.ceil(shape.filters / array_size))
    return rows * cols * shape.groups


def layer_cycles(shape: LayerShape, config: AcceleratorConfig) -> int:
    """Cycle count of one layer on the configured array."""
    n = config.array_size
    tiles = tile_count(shape, n)
    per_tile = (n - 1) + shape.patches + (n - 1)
    cycles = tiles * per_tile
    if config.is_approximate and config.use_control_variate:
        # One extra pipeline cycle per layer for the MAC+ column (Section V-A).
        cycles += 1
    return cycles


def network_cycles(
    shapes: list[LayerShape] | Graph,
    config: AcceleratorConfig,
    input_shape: tuple[int, int, int] = (16, 16, 3),
    batch: int = 1,
) -> int:
    """Total cycle count of a network (list of shapes or a model graph)."""
    if isinstance(shapes, Graph):
        shapes = layer_shapes_of_model(shapes, input_shape, batch=batch)
    return int(sum(layer_cycles(shape, config) for shape in shapes))
