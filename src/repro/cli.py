"""Command-line interface for the most common reproduction workflows.

The CLI wraps the library's experiment machinery so a downstream user can
regenerate the paper's headline artifacts without writing Python:

* ``python -m repro hardware`` — the hardware design-space table
  (Fig. 4 + Table II + Table I in one sweep);
* ``python -m repro accuracy --model vgg13 --classes 10`` — train (or load
  from cache) one reference network and report its Table III row;
* ``python -m repro sweep --models vgg13 resnet44`` — the multi-model
  Table III sweep (optionally multi-process via ``--workers``);
* ``python -m repro table3 --workers 4`` — the full Table III benchmark
  (every model x both datasets) served by one multi-model evaluation
  session;
* ``python -m repro dse --strategy greedy --max-loss 0.5`` — the automated
  per-layer design-space exploration: search the per-layer approximation
  mapping minimizing energy within an accuracy-loss budget and print the
  resulting Pareto front (see :mod:`repro.dse`); ``--workers N`` fans
  candidate batches across N persistent worker processes and ``--models
  all`` runs one campaign per reference network on one shared service;
* ``python -m repro error-model --m 2`` — the closed-form vs Monte-Carlo
  convolution error statistics of Section III.

``--workers`` has identical semantics across ``sweep``, ``table3`` and
``dse`` — the worker-process count of the evaluation runtime
(:mod:`repro.runtime`), 1 meaning in-process serial — and invalid values
exit with status 2 and a clear message, like unknown backend names.

Each sub-command prints an aligned text table to stdout (``repro backends
--json`` and ``repro dse --json`` emit machine-readable JSON instead).

Unknown engine-backend or search-strategy names exit with status 2 and a
one-line error naming the registered alternatives — never a traceback.

Reproducibility: ``repro dse`` and ``repro sweep`` accept a single
``--seed`` that drives *every* stochastic path (synthetic dataset
generation, evaluation subsampling, NSGA-II) through named
:class:`repro.core.seeding.SeedBank` streams.

Engine backends
---------------
The accuracy sweep compiles its product kernels through a pluggable engine
backend (:mod:`repro.core.backends`).  ``python -m repro backends`` lists
the registered backends and their availability, and ``--engine-backend``
selects one for the sweep::

    python -m repro backends
    python -m repro accuracy --model vgg13 --engine-backend lowmem
    python -m repro accuracy --model vgg13 --engine-backend numba  # JIT

Backends are bit-exact — they change simulation speed and memory only — and
an unavailable backend (e.g. ``numba`` without the package installed) falls
back to ``numpy`` with a warning.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.analysis.reporting import Table, pareto_front_table
from repro.core.accelerator_model import AcceleratorConfig
from repro.core.backends import DEFAULT_BACKEND, backend_names, get_backend, has_backend
from repro.core.error_model import convolution_error_stats, simulate_convolution_error
from repro.core.seeding import SeedBank
from repro.hardware.area_power import (
    macplus_area_share,
    macplus_power_share,
    normalized_array_area,
    normalized_array_power,
)
from repro.hardware.full_adders import total_fa_decrease
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    accuracy_sweep,
    default_cache_dir,
    experiment_dataset,
    parallel_sweep,
    trained_cache_stem,
)


def _model_manifest_entries(trained_models, settings: TrainingSettings) -> list[dict]:
    """Per-model input identity for a run manifest.

    ``model_digest`` hashes the trained parameter bytes with the ledger's
    array recipe; ``trained_cache_stem`` is byte-identical to the
    :class:`TrainedModelCache` entry the parameters came from — so the
    manifest's identity block reproduces both key schemes already used by
    the caching layers.
    """
    from repro.provenance import model_digest

    return [
        {
            "name": trained.name,
            "dataset": trained.dataset_name,
            "float_accuracy": trained.float_accuracy,
            "model_digest": model_digest(trained.model),
            "trained_cache_stem": trained_cache_stem(
                trained.name, trained.dataset_name, settings
            ),
        }
        for trained in trained_models
    ]


def _sweep_manifest_outputs(sweep) -> dict:
    """A :class:`SweepResult` as the outputs block of a run manifest."""
    return {
        "baselines": {
            f"{model}@{dataset}": accuracy
            for (model, dataset), accuracy in sweep.baselines.items()
        },
        "records": [
            {
                "model": record.model,
                "dataset": record.dataset,
                "m": record.m,
                "with_control_variate": record.with_control_variate,
                "baseline_accuracy": record.baseline_accuracy,
                "approximate_accuracy": record.approximate_accuracy,
                "accuracy_loss": record.accuracy_loss,
            }
            for record in sweep.records
        ],
    }


def _cli_error(message: str) -> int:
    """Print a one-line error to stderr and return the CLI failure status.

    Used for late-validated names (engine backends, search strategies) so a
    typo produces a clear message and a non-zero exit instead of a
    traceback.
    """
    print(f"error: {message}", file=sys.stderr)
    return 2


def _check_engine_backend(name: str | None) -> str | None:
    """Error message for an unknown backend name, or ``None`` when valid."""
    if name is not None and not has_backend(name):
        return (
            f"unknown engine backend {name!r}; registered backends: "
            f"{', '.join(backend_names())} (see `repro backends`)"
        )
    return None


def _check_workers(workers: int | None) -> str | None:
    """Error message for an invalid ``--workers`` value, or ``None``.

    One contract across every command that evaluates plans (``sweep``,
    ``table3``, ``dse``): the flag is the worker-process count of the
    evaluation service — ``1`` (the default) runs in-process, ``N > 1``
    fans cells across ``N`` persistent worker processes, and anything
    below ``1`` is a usage error.
    """
    if workers is not None and int(workers) < 1:
        return f"--workers must be a positive integer, got {workers}"
    return None


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--workers`` flag (identical semantics everywhere)."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker process count of the evaluation service (1 = in-process "
        "serial; N > 1 fans evaluation cells across N persistent worker "
        "processes with models and datasets published once through shared "
        "memory; results are bit-exact either way). Requests beyond the "
        "schedulable CPUs (cgroup/affinity-aware, not the machine's core "
        "count) are clamped — on a 1-CPU host any N degrades to the serial "
        "path at 1.0x serial instead of N contending processes",
    )


def _cmd_hardware(args: argparse.Namespace) -> int:
    table = Table(
        title="Approximate MAC-array design space",
        columns=["N", "m", "norm. power", "norm. area", "MAC+ power %", "MAC+ area %", "FA decrease"],
    )
    for n in args.array_sizes:
        for m in args.perforations:
            config = AcceleratorConfig.make(n, m, use_control_variate=True)
            table.add_row(
                n,
                m,
                normalized_array_power(config),
                normalized_array_area(config),
                100 * macplus_power_share(config),
                100 * macplus_area_share(config),
                int(total_fa_decrease(n, m)),
            )
    print(table.render(float_format="{:.3f}"))
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    dataset = experiment_dataset(num_classes=args.classes)
    cache = TrainedModelCache(cache_dir=args.cache_dir)
    settings = TrainingSettings(epochs=args.epochs)
    trained = cache.load_or_train(args.model, dataset, settings, verbose=args.verbose)
    sweep = accuracy_sweep(
        [trained],
        {dataset.name: dataset},
        perforations=tuple(args.perforations),
        max_eval_images=args.max_eval_images,
        engine_backend=args.engine_backend,
        reuse_prefix=not args.no_prefix_reuse,
    )
    table = Table(
        title=f"{args.model} on {dataset.name} "
        f"(float accuracy {trained.float_accuracy:.3f}, "
        f"quantized baseline {sweep.baselines[(args.model, dataset.name)]:.3f})",
        columns=["m", "ours loss %", "w/o V loss %"],
    )
    for m in args.perforations:
        table.add_row(
            m,
            sweep.lookup(args.model, dataset.name, m, True).accuracy_loss,
            sweep.lookup(args.model, dataset.name, m, False).accuracy_loss,
        )
    print(table.render(float_format="{:.2f}"))
    return 0


def _cmd_error_model(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    weights = np.clip(np.round(rng.normal(128, 20, size=args.taps)), 0, 255)
    table = Table(
        title=f"Convolution error, {args.taps} taps, perforation m={args.m}",
        columns=["method", "model mean", "model std", "simulated mean", "simulated std"],
    )
    for use_cv, label in ((False, "w/o V"), (True, "ours (+V)")):
        stats = convolution_error_stats(weights, args.m, use_control_variate=use_cv)
        simulated = simulate_convolution_error(
            weights, args.m, n_trials=args.trials, use_control_variate=use_cv, rng=rng
        )
        table.add_row(label, stats.mean, stats.std, float(simulated.mean()), float(simulated.std()))
    print(table.render(float_format="{:.1f}"))
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    if args.json:
        payload = []
        for name in backend_names():
            backend = get_backend(name)
            available, reason = backend.availability()
            payload.append(
                {
                    "name": name,
                    "available": available,
                    "default": name == DEFAULT_BACKEND,
                    "description": backend.describe(),
                    "unavailable_reason": None if available else reason,
                }
            )
        print(json.dumps(payload, indent=2))
        return 0
    table = Table(
        title="Registered engine backends",
        columns=["name", "available", "default", "notes"],
    )
    for name in backend_names():
        backend = get_backend(name)
        available, reason = backend.availability()
        table.add_row(
            name,
            "yes" if available else "no",
            "*" if name == DEFAULT_BACKEND else "",
            reason if not available else backend.describe(),
        )
    print(table.render())
    return 0


def _subsampled_eval(dataset, count: int, bank: SeedBank):
    """A seeded random evaluation subset of ``count`` test images.

    Indices are drawn without replacement from the bank's dedicated
    ``eval-subsample`` stream and kept in ascending order, so the subset is
    reproducible under one ``--seed`` regardless of any other stochastic
    consumer.
    """
    n_test = dataset.test_images.shape[0]
    count = min(int(count), n_test)
    rng = bank.generator("eval-subsample")
    indices = np.sort(rng.choice(n_test, size=count, replace=False))
    return dataset.test_images[indices], dataset.test_labels[indices]


def _dse_model_names(args: argparse.Namespace) -> list[str]:
    """The models one ``repro dse`` invocation explores.

    ``--models`` (a list, or the ``all`` sentinel) selects a multi-model
    campaign served by one shared evaluation service; without it the
    single ``--model`` is explored, exactly as before.
    """
    if not args.models:
        return [args.model]
    if "all" in args.models:
        return list(MODEL_NAMES)
    return list(dict.fromkeys(args.models))


def _dse_json_payload(dataset, result) -> dict:
    best = result.best()
    return {
        "dataset": dataset.name,
        "strategy": result.strategy,
        "max_loss": result.max_loss,
        "baseline_accuracy": result.baseline_accuracy,
        "accurate_energy_nj": result.accurate_energy_nj,
        "energy_reduction_percent": result.energy_reduction_percent(),
        "best": None
        if best is None
        else {
            "label": best.label,
            "energy_nj": best.energy_nj,
            "accuracy": best.accuracy,
            "accuracy_loss": best.accuracy_loss,
        },
        "front": [
            {
                "label": p.label,
                "energy_nj": p.energy_nj,
                "accuracy": p.accuracy,
                "accuracy_loss": p.accuracy_loss,
            }
            for p in result.front.points()
        ],
        "stats": result.stats,
    }


def _cmd_dse(args: argparse.Namespace) -> int:
    # Late-validated names: clear one-line errors instead of tracebacks.
    from repro.dse import CampaignLedger, has_strategy, run_campaign, strategy_names
    from repro.multipliers.library import MultiplierLibrary

    if not has_strategy(args.strategy):
        return _cli_error(
            f"unknown search strategy {args.strategy!r}; registered strategies: "
            f"{', '.join(strategy_names())}"
        )
    for error in (_check_engine_backend(args.engine_backend), _check_workers(args.workers)):
        if error is not None:
            return _cli_error(error)
    if args.subsample_eval is not None:
        if args.max_eval_images is not None:
            return _cli_error(
                "--subsample-eval and --max-eval-images are mutually exclusive: "
                "the subsample already determines the evaluation set size"
            )
        if args.subsample_eval < 1:
            return _cli_error(
                f"--subsample-eval must be positive, got {args.subsample_eval}"
            )

    from repro.dse.engine import front_payload
    from repro.provenance import dataset_digest, record_run

    with record_run("dse", label="-".join(_dse_model_names(args))) as manifest:
        bank = SeedBank(args.seed)
        dataset = experiment_dataset(
            num_classes=args.classes,
            seed=bank.seed_for("dataset") if args.seed is not None else None,
        )
        cache = TrainedModelCache(cache_dir=args.cache_dir)
        settings = TrainingSettings(epochs=args.epochs)
        model_names = _dse_model_names(args)
        multi = len(model_names) > 1
        trained_models = [
            cache.load_or_train(name, dataset, settings, verbose=args.verbose)
            for name in model_names
        ]

        eval_images = eval_labels = None
        if args.subsample_eval is not None:
            eval_images, eval_labels = _subsampled_eval(
                dataset, args.subsample_eval, bank
            )

        if args.no_ledger:
            ledger_dir = None
        else:
            ledger_dir = args.ledger or os.path.join(
                args.cache_dir or default_cache_dir(), "dse-ledger"
            )

        manifest.inputs.update(
            {
                "dataset": dataset.name,
                "dataset_digest": dataset_digest(dataset),
                "models": _model_manifest_entries(trained_models, settings),
                "seed": args.seed,
                "strategy": args.strategy,
                "max_loss": args.max_loss,
                "budget_evals": args.budget_evals,
                "perforations": list(args.perforations),
                "array_size": args.array_size,
                "max_eval_images": args.max_eval_images,
                "subsample_eval": args.subsample_eval,
                "calibration_images": args.calibration_images,
                "engine_backend": args.engine_backend,
                "workers": args.workers,
                "reuse_prefix": not args.no_prefix_reuse,
                "ledger_dir": ledger_dir,
                "resume": args.resume,
            }
        )

        library = (
            MultiplierLibrary.synthetic_evoapprox()
            if args.include_library > 0
            else None
        )

        # A multi-model campaign hosts every network in ONE evaluation
        # service: models and datasets are published once and the worker
        # pool (or the in-process serial state) is reused across the
        # sequential campaigns.  An eval subsample becomes the hosted
        # dataset's test split inside build_campaign_service, keeping
        # ledger context keys serial-identical.
        service = None
        if multi:
            from repro.dse.engine import build_campaign_service

            service = build_campaign_service(
                trained_models,
                dataset,
                args.workers,
                max_eval_images=args.max_eval_images,
                calibration_images=args.calibration_images,
                engine_backend=args.engine_backend,
                reuse_prefix=not args.no_prefix_reuse,
                eval_images=eval_images,
                eval_labels=eval_labels,
            )

        results = []
        try:
            for trained in trained_models:
                rng_stream = f"nsga2-{trained.name}" if multi else "nsga2"
                result = run_campaign(
                    trained,
                    dataset,
                    strategy=args.strategy,
                    max_loss=args.max_loss,
                    budget_evals=args.budget_evals,
                    ledger=CampaignLedger(path=ledger_dir),
                    resume=args.resume,
                    rng=bank.generator(rng_stream),
                    max_eval_images=args.max_eval_images,
                    calibration_images=args.calibration_images,
                    engine_backend=args.engine_backend,
                    reuse_prefix=not args.no_prefix_reuse,
                    # The shared service already hosts any eval subsample as
                    # its dataset's test split; passing the arrays alongside
                    # `service` is rejected by run_campaign.
                    eval_images=None if service is not None else eval_images,
                    eval_labels=None if service is not None else eval_labels,
                    workers=args.workers,
                    service=service,
                    array_size=args.array_size,
                    perforations=tuple(args.perforations),
                    library=library,
                    max_library_candidates=args.include_library,
                )
                results.append((trained, result))
        except ValueError as error:
            # Campaign-configuration errors (exhaustive search on an
            # unbounded space, bad budget, ...) are user errors, not
            # tracebacks.
            manifest.status = "error"
            manifest.error = f"{type(error).__name__}: {error}"
            return _cli_error(str(error))
        finally:
            if service is not None:
                try:
                    # The session context goes into the manifest while the
                    # service is still alive (shared-block sizes and all).
                    # Best effort: a partially-started service may not have
                    # one, and that must not skip close() below.
                    manifest.inputs["service"] = service.session_context()
                except Exception:
                    pass
                finally:
                    service.close()

        # Each campaign's outputs: the front with its ledger record keys
        # and the stats block, whose context_key is the exact digest the
        # CampaignLedger keyed this campaign's records under.
        manifest.outputs["models"] = [
            {
                "model": trained.name,
                "baseline_accuracy": result.baseline_accuracy,
                "accurate_energy_nj": result.accurate_energy_nj,
                "energy_reduction_percent": result.energy_reduction_percent(),
                "front": front_payload(result),
                "stats": result.stats,
            }
            for trained, result in results
        ]

    if multi:
        if args.json:
            payload = {
                "models": [
                    {"model": trained.name, **_dse_json_payload(dataset, result)}
                    for trained, result in results
                ],
            }
            print(json.dumps(payload, indent=2))
            return 0
        table = Table(
            title=f"DSE campaigns on {dataset.name} "
            f"(strategy={results[0][1].strategy}, loss budget {args.max_loss:.2f}%, "
            f"workers={args.workers})",
            columns=[
                "model",
                "baseline acc",
                "evals",
                "front",
                "best energy nJ",
                "best loss %",
                "energy saved %",
            ],
        )
        for trained, result in results:
            best = result.best()
            reduction = result.energy_reduction_percent()
            table.add_row(
                trained.name,
                result.baseline_accuracy,
                result.stats["evaluations"],
                result.stats["front_size"],
                "-" if best is None else f"{best.energy_nj:.1f}",
                "-" if best is None else f"{best.accuracy_loss:+.2f}",
                "-" if reduction is None else f"{reduction:.1f}",
            )
        print(table.render(float_format="{:.3f}"))
        return 0

    result = results[0][1]
    best = result.best()
    if args.json:
        payload = {
            "model": results[0][0].name,
            **_dse_json_payload(dataset, result),
        }
        print(json.dumps(payload, indent=2))
        return 0

    stats = result.stats
    print(
        f"{results[0][0].name} on {dataset.name}: strategy={result.strategy} "
        f"space={stats['space_size']} evaluations={stats['evaluations']} "
        f"ledger_replays={stats['ledger_replays']} "
        f"wall={stats['wall_clock_s']:.1f}s"
    )
    print(
        f"quantized baseline accuracy {result.baseline_accuracy:.3f}, "
        f"accurate-design energy {result.accurate_energy_nj:.1f} nJ, "
        f"loss budget {result.max_loss:.2f}%"
    )
    print()
    table = pareto_front_table(
        result.front.points(), baseline_energy_nj=result.accurate_energy_nj
    )
    print(table.render(float_format="{:.3f}"))
    print()
    if best is None:
        print(f"no front point within the {result.max_loss:.2f}% loss budget")
    else:
        reduction = result.energy_reduction_percent()
        print(
            f"minimum-energy feasible point: {best.label} "
            f"({best.energy_nj:.1f} nJ, loss {best.accuracy_loss:+.2f}%, "
            f"{reduction:.1f}% energy below the accurate design)"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    for error in (_check_engine_backend(args.engine_backend), _check_workers(args.workers)):
        if error is not None:
            return _cli_error(error)
    from repro.provenance import dataset_digest, record_run

    with record_run("sweep", label=f"c{args.classes}") as manifest:
        bank = SeedBank(args.seed)
        dataset = experiment_dataset(
            num_classes=args.classes,
            seed=bank.seed_for("dataset") if args.seed is not None else None,
        )
        cache = TrainedModelCache(cache_dir=args.cache_dir)
        settings = TrainingSettings(epochs=args.epochs)
        trained_models = [
            cache.load_or_train(name, dataset, settings, verbose=args.verbose)
            for name in args.models
        ]
        manifest.inputs.update(
            {
                "dataset": dataset.name,
                "dataset_digest": dataset_digest(dataset),
                "models": _model_manifest_entries(trained_models, settings),
                "seed": args.seed,
                "perforations": list(args.perforations),
                "max_eval_images": args.max_eval_images,
                "engine_backend": args.engine_backend,
                "workers": args.workers,
                "reuse_prefix": not args.no_prefix_reuse,
            }
        )
        sweep = parallel_sweep(
            trained_models,
            {dataset.name: dataset},
            perforations=tuple(args.perforations),
            max_eval_images=args.max_eval_images,
            max_workers=args.workers,
            engine_backend=args.engine_backend,
            reuse_prefix=not args.no_prefix_reuse,
        )
        manifest.outputs.update(_sweep_manifest_outputs(sweep))
    table = Table(
        title=f"Accuracy sweep on {dataset.name} "
        f"({len(args.models)} models, m = {', '.join(map(str, args.perforations))})",
        columns=["model", "baseline acc", "m", "ours loss %", "w/o V loss %"],
    )
    for trained in trained_models:
        for m in args.perforations:
            table.add_row(
                trained.name,
                sweep.baselines[(trained.name, dataset.name)],
                m,
                sweep.lookup(trained.name, dataset.name, m, True).accuracy_loss,
                sweep.lookup(trained.name, dataset.name, m, False).accuracy_loss,
            )
    print(table.render(float_format="{:.3f}"))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    """The full Table III benchmark: every model x both datasets, one service.

    All requested (model, dataset) combinations are trained (or loaded from
    cache) and swept through ONE multi-model evaluation session:
    :func:`~repro.simulation.campaign.parallel_sweep` publishes every
    trained network and both datasets once and serves all cells from the
    same worker pool.
    """
    for error in (_check_engine_backend(args.engine_backend), _check_workers(args.workers)):
        if error is not None:
            return _cli_error(error)
    from repro.provenance import dataset_digest, record_run

    with record_run("table3") as manifest:
        bank = SeedBank(args.seed)
        cache = TrainedModelCache(cache_dir=args.cache_dir)
        settings = TrainingSettings(epochs=args.epochs)
        datasets = {}
        trained_models = []
        for classes in args.classes:
            # Same seed stream as `sweep` and `dse` (num_classes already
            # differentiates the generated data and the dataset name), so one
            # --seed yields the same datasets — and therefore cache-hits the
            # same trained models — across all three commands.
            dataset = experiment_dataset(
                num_classes=classes,
                seed=bank.seed_for("dataset") if args.seed is not None else None,
            )
            datasets[dataset.name] = dataset
            for name in args.models:
                trained_models.append(
                    cache.load_or_train(name, dataset, settings, verbose=args.verbose)
                )
        manifest.inputs.update(
            {
                "datasets": {
                    name: dataset_digest(dataset)
                    for name, dataset in datasets.items()
                },
                "models": _model_manifest_entries(trained_models, settings),
                "seed": args.seed,
                "perforations": list(args.perforations),
                "max_eval_images": args.max_eval_images,
                "engine_backend": args.engine_backend,
                "workers": args.workers,
                "reuse_prefix": not args.no_prefix_reuse,
            }
        )
        sweep = parallel_sweep(
            trained_models,
            datasets,
            perforations=tuple(args.perforations),
            max_eval_images=args.max_eval_images,
            max_workers=args.workers,
            engine_backend=args.engine_backend,
            reuse_prefix=not args.no_prefix_reuse,
        )
        manifest.outputs.update(_sweep_manifest_outputs(sweep))
        manifest.outputs["averages"] = {
            f"{dataset_name}/m={m}/cv={with_cv}": sweep.average_loss(
                dataset_name, m, with_cv
            )
            for dataset_name in datasets
            for m in args.perforations
            for with_cv in (True, False)
        }
    table = Table(
        title=f"Table III accuracy sweep ({len(args.models)} models x "
        f"{len(datasets)} datasets, m = {', '.join(map(str, args.perforations))}, "
        f"workers={args.workers})",
        columns=["model", "dataset", "baseline acc", "m", "ours loss %", "w/o V loss %"],
    )
    for trained in trained_models:
        for m in args.perforations:
            table.add_row(
                trained.name,
                trained.dataset_name,
                sweep.baselines[(trained.name, trained.dataset_name)],
                m,
                sweep.lookup(trained.name, trained.dataset_name, m, True).accuracy_loss,
                sweep.lookup(trained.name, trained.dataset_name, m, False).accuracy_loss,
            )
    for dataset_name in datasets:
        for m in args.perforations:
            table.add_row(
                "average",
                dataset_name,
                "",
                m,
                sweep.average_loss(dataset_name, m, True),
                sweep.average_loss(dataset_name, m, False),
            )
    print(table.render(float_format="{:.3f}"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    """Print the provenance environment block (the one inside every manifest)."""
    from repro.provenance import provenance_environment

    env = provenance_environment()
    if args.json:
        print(json.dumps(env, indent=2, sort_keys=True))
        return 0
    print(
        f"{env['package']['name']} {env['package']['version']} — "
        f"python {env['python']} ({env['implementation']}) on {env['platform']}, "
        f"{env['cpu_count']} cpu(s)"
    )
    table = Table(title="Probed packages", columns=["package", "available", "version / reason"])
    for name, probe in env["packages"].items():
        table.add_row(
            name,
            "yes" if probe["available"] else "no",
            probe["version"] if probe["available"] else probe["reason"],
        )
    print()
    print(table.render())
    table = Table(title="Engine backends", columns=["name", "available", "default", "reason"])
    for row in env["engine_backends"]:
        table.add_row(
            row["name"],
            "yes" if row["available"] else "no",
            "*" if row["default"] else "",
            row["reason"] or "",
        )
    print()
    print(table.render())
    print()
    print(
        "seed defaults: "
        + ", ".join(f"{key}={value}" for key, value in env["seed_defaults"].items())
    )
    return 0


def _cmd_verify_results(args: argparse.Namespace) -> int:
    """Golden-baseline verification (the `make check` regression gate).

    Without ``--refresh``: re-run the deterministic golden workload
    (unless ``--skip-workload``), compare it and the fresh bench ledger
    against ``results/golden/``, and exit 1 on any failure.  With
    ``--refresh``: rewrite the goldens from the current code and results —
    the deliberate re-baselining escape hatch behind ``make bench-refresh``.
    ``SKIP_REGRESSION=1`` skips the gate entirely (known-divergent
    environments).
    """
    from repro.analysis.reporting import regression_report_table
    from repro.provenance import (
        compare_bench_ledgers,
        load_json,
        record_run,
        write_json_atomic,
    )
    from repro.provenance.regression import (
        DEFAULT_TOLERANCE,
        Finding,
        RegressionReport,
    )
    from repro.provenance.workload import (
        run_golden_workload,
        verify_goldens,
        write_goldens,
    )

    if os.environ.get("SKIP_REGRESSION"):
        print("verify-results: skipped (SKIP_REGRESSION is set)")
        return 0
    tolerance = args.tolerance
    if tolerance is None:
        env_tolerance = os.environ.get("REPRO_REGRESSION_TOL")
        tolerance = float(env_tolerance) if env_tolerance else DEFAULT_TOLERANCE
    if tolerance < 0:
        return _cli_error(f"--tolerance must be non-negative, got {tolerance}")
    fresh_ledger_path = os.path.join(args.results, "BENCH_engine.json")
    golden_ledger_path = os.path.join(args.golden, "BENCH_engine.json")

    if args.refresh:
        written = []
        if not args.skip_workload:
            written += write_goldens(run_golden_workload(), args.golden)
        if os.path.exists(fresh_ledger_path):
            # Canonicalized rewrite (sorted keys, atomic), so refreshing
            # twice from the same results is byte-identical.
            write_json_atomic(golden_ledger_path, load_json(fresh_ledger_path))
            written.append(golden_ledger_path)
        for path in written:
            print(f"refreshed {path}")
        if not written:
            print("nothing to refresh (no fresh results found)")
        return 0

    if not os.path.isdir(args.golden):
        return _cli_error(
            f"golden directory {args.golden!r} does not exist — "
            "run `make bench-refresh` to create the baselines"
        )
    with record_run("verify-results") as manifest:
        manifest.inputs.update(
            {
                "golden_dir": args.golden,
                "results_dir": args.results,
                "tolerance": tolerance,
                "skip_workload": bool(args.skip_workload),
            }
        )
        report = RegressionReport(tolerance=tolerance)
        if os.path.exists(golden_ledger_path):
            if os.path.exists(fresh_ledger_path):
                report.extend(
                    compare_bench_ledgers(
                        load_json(golden_ledger_path),
                        load_json(fresh_ledger_path),
                        tolerance,
                    ).findings
                )
            else:
                report.findings.append(
                    Finding(
                        "BENCH_engine",
                        "",
                        "missing",
                        "fail",
                        f"fresh bench ledger {fresh_ledger_path} not found — "
                        "run the benches (`make engine dse`) first",
                    )
                )
        if not args.skip_workload:
            report.extend(verify_goldens(run_golden_workload(), args.golden, tolerance))
        manifest.outputs.update(report.to_payload())
        manifest.status = "ok" if report.ok else "error"

    if args.json:
        print(json.dumps(report.to_payload(), indent=2))
        return 0 if report.ok else 1
    if report.findings:
        print(regression_report_table(report.findings).render())
        print()
    verdict = "PASS" if report.ok else "FAIL"
    print(
        f"verify-results: {verdict} — {len(report.failures)} failure(s), "
        f"{len(report.warnings)} warning(s) against {args.golden} "
        f"(tolerance {tolerance:g})"
    )
    if not report.ok:
        print("re-baseline deliberately with `make bench-refresh`", file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Control Variate Approximation for DNN Accelerators' (DAC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    hardware = sub.add_parser("hardware", help="hardware design-space sweep (Fig. 4 / Tables I-II)")
    hardware.add_argument("--array-sizes", type=int, nargs="+", default=[16, 32, 48, 64])
    hardware.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    hardware.set_defaults(func=_cmd_hardware)

    accuracy = sub.add_parser("accuracy", help="accuracy sweep of one network (one Table III row)")
    accuracy.add_argument("--model", choices=MODEL_NAMES, default="vgg13")
    accuracy.add_argument("--classes", type=int, choices=(10, 100), default=10)
    accuracy.add_argument("--epochs", type=int, default=6)
    accuracy.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    accuracy.add_argument("--max-eval-images", type=int, default=None)
    accuracy.add_argument("--cache-dir", default=None)
    accuracy.add_argument(
        "--engine-backend",
        choices=backend_names(),
        default=None,
        help="engine backend compiling the product kernels (bit-exact; "
        "unavailable backends fall back to numpy with a warning)",
    )
    accuracy.add_argument(
        "--no-prefix-reuse",
        action="store_true",
        help="disable cross-plan reuse of plan-invariant work (activation "
        "codes and the plan-invariant layer prefix); reuse is bit-exact, "
        "this is an escape hatch for debugging and A/B timing",
    )
    accuracy.add_argument("--verbose", action="store_true")
    accuracy.set_defaults(func=_cmd_accuracy)

    backends = sub.add_parser(
        "backends", help="list registered engine backends and their availability"
    )
    backends.add_argument(
        "--json", action="store_true", help="emit the listing as machine-readable JSON"
    )
    backends.set_defaults(func=_cmd_backends)

    sweep = sub.add_parser(
        "sweep", help="multi-model Table III accuracy sweep (optionally parallel)"
    )
    sweep.add_argument("--models", nargs="+", choices=MODEL_NAMES, default=["vgg13"])
    sweep.add_argument("--classes", type=int, choices=(10, 100), default=10)
    sweep.add_argument("--epochs", type=int, default=6)
    sweep.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    sweep.add_argument("--max-eval-images", type=int, default=None)
    _add_workers_flag(sweep)
    sweep.add_argument(
        "--engine-backend",
        default=None,
        help="engine backend name (validated against the registry; unknown "
        "names exit with a clear error)",
    )
    sweep.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed of every stochastic path (synthetic dataset "
        "generation); distinct streams are derived per consumer",
    )
    sweep.add_argument("--cache-dir", default=None)
    sweep.add_argument("--no-prefix-reuse", action="store_true")
    sweep.add_argument("--verbose", action="store_true")
    sweep.set_defaults(func=_cmd_sweep)

    table3 = sub.add_parser(
        "table3",
        help="the full Table III benchmark: every model x both datasets "
        "served by one multi-model evaluation session",
    )
    table3.add_argument(
        "--models", nargs="+", choices=MODEL_NAMES, default=list(MODEL_NAMES)
    )
    table3.add_argument(
        "--classes",
        type=int,
        nargs="+",
        choices=(10, 100),
        default=[10, 100],
        help="dataset variants to sweep (default: both, as in the paper)",
    )
    table3.add_argument("--epochs", type=int, default=6)
    table3.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    table3.add_argument("--max-eval-images", type=int, default=None)
    _add_workers_flag(table3)
    table3.add_argument(
        "--engine-backend",
        default=None,
        help="engine backend name (validated against the registry; unknown "
        "names exit with a clear error)",
    )
    table3.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed of every stochastic path (synthetic dataset "
        "generation); distinct streams are derived per consumer",
    )
    table3.add_argument("--cache-dir", default=None)
    table3.add_argument("--no-prefix-reuse", action="store_true")
    table3.add_argument("--verbose", action="store_true")
    table3.set_defaults(func=_cmd_table3)

    dse = sub.add_parser(
        "dse",
        help="automated design-space exploration of per-layer approximation "
        "(energy/accuracy Pareto front under a loss budget)",
    )
    dse.add_argument("--model", choices=MODEL_NAMES, default="vgg13")
    dse.add_argument(
        "--models",
        nargs="+",
        choices=MODEL_NAMES + ("all",),
        default=None,
        help="run one campaign per listed model (or 'all' for every "
        "reference network), all served by ONE shared evaluation service "
        "(models and datasets published once, one worker pool); overrides "
        "--model",
    )
    dse.add_argument("--classes", type=int, choices=(10, 100), default=10)
    dse.add_argument("--epochs", type=int, default=6)
    dse.add_argument(
        "--strategy",
        default="greedy",
        help="search strategy name (see repro.dse.strategy_names(): "
        "exhaustive, greedy, nsga2, or a one-call baseline); unknown "
        "names exit with a clear error",
    )
    dse.add_argument(
        "--max-loss",
        type=float,
        default=0.5,
        help="accuracy-loss budget in percentage points (paper headline: 0.5)",
    )
    dse.add_argument(
        "--budget-evals",
        type=int,
        default=None,
        help="cap on fresh accuracy evaluations (ledger replays are free)",
    )
    dse.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed of every stochastic path (dataset generation, eval "
        "subsampling, NSGA-II); distinct streams are derived per consumer",
    )
    dse.add_argument(
        "--resume",
        action="store_true",
        help="replay ledger records of a previous (possibly killed) campaign "
        "instead of re-evaluating plans",
    )
    dse.add_argument(
        "--ledger",
        default=None,
        help="campaign ledger directory (default: <cache-dir>/dse-ledger); "
        "records are always written so campaigns are resumable",
    )
    dse.add_argument(
        "--no-ledger", action="store_true", help="keep the ledger in memory only"
    )
    dse.add_argument("--array-size", type=int, default=64)
    dse.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    dse.add_argument(
        "--include-library",
        type=int,
        default=0,
        metavar="N",
        help="add the N cheapest approximate-library multipliers as per-layer "
        "LUT candidates (slower to simulate)",
    )
    dse.add_argument("--max-eval-images", type=int, default=None)
    dse.add_argument(
        "--subsample-eval",
        type=int,
        default=None,
        metavar="N",
        help="evaluate on a seeded random subset of N test images (drawn "
        "from the --seed bank's eval-subsample stream)",
    )
    dse.add_argument("--calibration-images", type=int, default=128)
    _add_workers_flag(dse)
    dse.add_argument(
        "--engine-backend",
        default=None,
        help="engine backend name (validated against the registry; unknown "
        "names exit with a clear error)",
    )
    dse.add_argument("--cache-dir", default=None)
    dse.add_argument("--no-prefix-reuse", action="store_true")
    dse.add_argument(
        "--json", action="store_true", help="emit the campaign result as JSON"
    )
    dse.add_argument("--verbose", action="store_true")
    dse.set_defaults(func=_cmd_dse)

    info = sub.add_parser(
        "info",
        help="print the provenance environment block (package versions, "
        "backend availability with failure reasons, seed defaults) — the "
        "block embedded verbatim in every run manifest",
    )
    info.add_argument(
        "--json", action="store_true", help="emit the block as machine-readable JSON"
    )
    info.set_defaults(func=_cmd_info)

    verify = sub.add_parser(
        "verify-results",
        help="compare fresh results against the committed golden baselines "
        "in results/golden/ (exact for accuracy tables and Pareto fronts, "
        "tolerance bands for throughput); non-zero exit on regression",
    )
    verify.add_argument(
        "--results",
        default="results",
        help="directory holding the fresh results tree (default: results)",
    )
    verify.add_argument(
        "--golden",
        default=os.path.join("results", "golden"),
        help="directory holding the committed golden baselines "
        "(default: results/golden)",
    )
    verify.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative tolerance for throughput/speedup floors and size "
        "bands (default: $REPRO_REGRESSION_TOL or 0.5; exact-match "
        "sections ignore it)",
    )
    verify.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite the golden baselines from the current code and "
        "results instead of comparing (the `make bench-refresh` escape "
        "hatch)",
    )
    verify.add_argument(
        "--skip-workload",
        action="store_true",
        help="skip re-running the deterministic golden workload (compare "
        "the bench ledger only)",
    )
    verify.add_argument(
        "--json", action="store_true", help="emit the report as machine-readable JSON"
    )
    verify.set_defaults(func=_cmd_verify_results)

    error_model = sub.add_parser("error-model", help="closed-form vs Monte-Carlo error statistics")
    error_model.add_argument("--m", type=int, default=2)
    error_model.add_argument("--taps", type=int, default=576)
    error_model.add_argument("--trials", type=int, default=10000)
    error_model.add_argument("--seed", type=int, default=0)
    error_model.set_defaults(func=_cmd_error_model)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
