"""Command-line interface for the most common reproduction workflows.

The CLI wraps the library's experiment machinery so a downstream user can
regenerate the paper's headline artifacts without writing Python:

* ``python -m repro hardware`` — the hardware design-space table
  (Fig. 4 + Table II + Table I in one sweep);
* ``python -m repro accuracy --model vgg13 --classes 10`` — train (or load
  from cache) one reference network and report its Table III row;
* ``python -m repro error-model --m 2`` — the closed-form vs Monte-Carlo
  convolution error statistics of Section III.

Each sub-command prints an aligned text table to stdout.

Engine backends
---------------
The accuracy sweep compiles its product kernels through a pluggable engine
backend (:mod:`repro.core.backends`).  ``python -m repro backends`` lists
the registered backends and their availability, and ``--engine-backend``
selects one for the sweep::

    python -m repro backends
    python -m repro accuracy --model vgg13 --engine-backend lowmem
    python -m repro accuracy --model vgg13 --engine-backend numba  # JIT

Backends are bit-exact — they change simulation speed and memory only — and
an unavailable backend (e.g. ``numba`` without the package installed) falls
back to ``numpy`` with a warning.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.reporting import Table
from repro.core.accelerator_model import AcceleratorConfig
from repro.core.backends import DEFAULT_BACKEND, backend_names, get_backend
from repro.core.error_model import convolution_error_stats, simulate_convolution_error
from repro.hardware.area_power import (
    macplus_area_share,
    macplus_power_share,
    normalized_array_area,
    normalized_array_power,
)
from repro.hardware.full_adders import total_fa_decrease
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    accuracy_sweep,
    experiment_dataset,
)


def _cmd_hardware(args: argparse.Namespace) -> int:
    table = Table(
        title="Approximate MAC-array design space",
        columns=["N", "m", "norm. power", "norm. area", "MAC+ power %", "MAC+ area %", "FA decrease"],
    )
    for n in args.array_sizes:
        for m in args.perforations:
            config = AcceleratorConfig.make(n, m, use_control_variate=True)
            table.add_row(
                n,
                m,
                normalized_array_power(config),
                normalized_array_area(config),
                100 * macplus_power_share(config),
                100 * macplus_area_share(config),
                int(total_fa_decrease(n, m)),
            )
    print(table.render(float_format="{:.3f}"))
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    dataset = experiment_dataset(num_classes=args.classes)
    cache = TrainedModelCache(cache_dir=args.cache_dir)
    settings = TrainingSettings(epochs=args.epochs)
    trained = cache.load_or_train(args.model, dataset, settings, verbose=args.verbose)
    sweep = accuracy_sweep(
        [trained],
        {dataset.name: dataset},
        perforations=tuple(args.perforations),
        max_eval_images=args.max_eval_images,
        engine_backend=args.engine_backend,
        reuse_prefix=not args.no_prefix_reuse,
    )
    table = Table(
        title=f"{args.model} on {dataset.name} "
        f"(float accuracy {trained.float_accuracy:.3f}, "
        f"quantized baseline {sweep.baselines[(args.model, dataset.name)]:.3f})",
        columns=["m", "ours loss %", "w/o V loss %"],
    )
    for m in args.perforations:
        table.add_row(
            m,
            sweep.lookup(args.model, dataset.name, m, True).accuracy_loss,
            sweep.lookup(args.model, dataset.name, m, False).accuracy_loss,
        )
    print(table.render(float_format="{:.2f}"))
    return 0


def _cmd_error_model(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    weights = np.clip(np.round(rng.normal(128, 20, size=args.taps)), 0, 255)
    table = Table(
        title=f"Convolution error, {args.taps} taps, perforation m={args.m}",
        columns=["method", "model mean", "model std", "simulated mean", "simulated std"],
    )
    for use_cv, label in ((False, "w/o V"), (True, "ours (+V)")):
        stats = convolution_error_stats(weights, args.m, use_control_variate=use_cv)
        simulated = simulate_convolution_error(
            weights, args.m, n_trials=args.trials, use_control_variate=use_cv, rng=rng
        )
        table.add_row(label, stats.mean, stats.std, float(simulated.mean()), float(simulated.std()))
    print(table.render(float_format="{:.1f}"))
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    table = Table(
        title="Registered engine backends",
        columns=["name", "available", "default", "notes"],
    )
    for name in backend_names():
        backend = get_backend(name)
        available, reason = backend.availability()
        table.add_row(
            name,
            "yes" if available else "no",
            "*" if name == DEFAULT_BACKEND else "",
            reason if not available else backend.describe(),
        )
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Control Variate Approximation for DNN Accelerators' (DAC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    hardware = sub.add_parser("hardware", help="hardware design-space sweep (Fig. 4 / Tables I-II)")
    hardware.add_argument("--array-sizes", type=int, nargs="+", default=[16, 32, 48, 64])
    hardware.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    hardware.set_defaults(func=_cmd_hardware)

    accuracy = sub.add_parser("accuracy", help="accuracy sweep of one network (one Table III row)")
    accuracy.add_argument("--model", choices=MODEL_NAMES, default="vgg13")
    accuracy.add_argument("--classes", type=int, choices=(10, 100), default=10)
    accuracy.add_argument("--epochs", type=int, default=6)
    accuracy.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    accuracy.add_argument("--max-eval-images", type=int, default=None)
    accuracy.add_argument("--cache-dir", default=None)
    accuracy.add_argument(
        "--engine-backend",
        choices=backend_names(),
        default=None,
        help="engine backend compiling the product kernels (bit-exact; "
        "unavailable backends fall back to numpy with a warning)",
    )
    accuracy.add_argument(
        "--no-prefix-reuse",
        action="store_true",
        help="disable cross-plan reuse of plan-invariant work (activation "
        "codes and the plan-invariant layer prefix); reuse is bit-exact, "
        "this is an escape hatch for debugging and A/B timing",
    )
    accuracy.add_argument("--verbose", action="store_true")
    accuracy.set_defaults(func=_cmd_accuracy)

    backends = sub.add_parser(
        "backends", help="list registered engine backends and their availability"
    )
    backends.set_defaults(func=_cmd_backends)

    error_model = sub.add_parser("error-model", help="closed-form vs Monte-Carlo error statistics")
    error_model.add_argument("--m", type=int, default=2)
    error_model.add_argument("--taps", type=int, default=576)
    error_model.add_argument("--trials", type=int, default=10000)
    error_model.add_argument("--seed", type=int, default=0)
    error_model.set_defaults(func=_cmd_error_model)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
