"""The deterministic golden workload behind ``repro verify-results``.

A regression gate needs a workload that is (a) cheap enough to run inside
``make check`` and (b) **bit-exact by construction**, so any drift is a
behavior change rather than noise.  This module provides exactly that: a
tiny seeded synthetic dataset, a quickly but deterministically trained
vgg13, one serial Table-III-style accuracy sweep and one greedy DSE
campaign — the same shape (and the same dataset/model configuration) as
``benchmarks/bench_dse_search.py``, shrunk to a fixed evaluation budget.

Three golden documents come out of one run:

``inputs.json``
    The content-addressed identity of the workload — model parameter
    digest, dataset digest, the campaign ledger context key — plus the
    literal configuration.  Golden-comparing *these* is what pins the
    input-hashing recipe itself: if the digests drift, manifests would
    silently stop reproducing the ledger/cache keys.
``accuracy_table.json``
    The sweep's per-cell accuracies and losses (exact match).
``pareto_front.json``
    The greedy campaign's front, each point carrying its ledger record
    key, plus the deterministic campaign statistics (exact match,
    order-insensitive front).

Wall-clock is deliberately absent from all three: the goldens contain only
reproducible values, so ``verify-results`` needs no tolerance for them.
"""

from __future__ import annotations

import numpy as np

from repro.provenance.manifest import (
    dataset_digest,
    load_json,
    model_digest,
    write_json_atomic,
)
from repro.provenance.regression import (
    DEFAULT_TOLERANCE,
    Finding,
    compare_golden_payloads,
)

#: The golden documents one workload run produces, in comparison order.
GOLDEN_FILES = ("inputs.json", "accuracy_table.json", "pareto_front.json")

#: Workload constants (also recorded verbatim in ``inputs.json``).
PERFORATIONS = (1, 2)
MAX_LOSS = 0.5
BUDGET_EVALS = 40
CALIBRATION_IMAGES = 64
ARRAY_SIZE = 64


def _train_workload_model():
    """The bench_dse_search setup: tiny seeded dataset, 2-epoch vgg13."""
    from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
    from repro.models.zoo import build_model
    from repro.nn.optimizers import SGD
    from repro.nn.training import Trainer
    from repro.simulation.campaign import TrainedModel

    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10,
            image_size=16,
            train_per_class=40,
            test_per_class=16,
            noise_std=0.12,
            confusion=0.25,
            seed=21,
        )
    )
    model = build_model(
        "vgg13", num_classes=10, base_width=8, rng=np.random.default_rng(0)
    )
    trainer = Trainer(model, SGD(learning_rate=0.08), rng=np.random.default_rng(1))
    trainer.fit(dataset.train_images, dataset.train_labels, epochs=2, batch_size=32)
    trained = TrainedModel(
        name="vgg13", dataset_name=dataset.name, model=model, float_accuracy=0.0
    )
    return trained, dataset


def run_golden_workload() -> dict[str, dict]:
    """Run the workload; returns ``{golden filename: payload}``.

    Every value in every payload is deterministic (seeded training, serial
    sweep, greedy search), so two runs on any host with the same code
    produce byte-identical documents.
    """
    from repro.dse import run_campaign
    from repro.dse.engine import front_payload
    from repro.simulation.campaign import parallel_sweep

    trained, dataset = _train_workload_model()

    sweep = parallel_sweep(
        [trained],
        {dataset.name: dataset},
        perforations=PERFORATIONS,
        calibration_images=CALIBRATION_IMAGES,
        max_workers=1,
    )
    accuracy_table = {
        "model": trained.name,
        "dataset": dataset.name,
        "baseline_accuracy": sweep.baselines[(trained.name, dataset.name)],
        "rows": [
            {
                "m": record.m,
                "with_control_variate": record.with_control_variate,
                "accuracy": record.approximate_accuracy,
                "accuracy_loss": record.accuracy_loss,
            }
            for record in sweep.records
        ],
    }

    result = run_campaign(
        trained,
        dataset,
        strategy="greedy",
        max_loss=MAX_LOSS,
        budget_evals=BUDGET_EVALS,
        calibration_images=CALIBRATION_IMAGES,
        array_size=ARRAY_SIZE,
    )
    pareto_front = {
        "strategy": result.strategy,
        "max_loss": result.max_loss,
        "baseline_accuracy": result.baseline_accuracy,
        "accurate_energy_nj": result.accurate_energy_nj,
        "energy_reduction_percent": result.energy_reduction_percent(),
        "evaluations": result.stats["evaluations"],
        "front_size": result.stats["front_size"],
        "front": front_payload(result),
    }

    inputs = {
        "model": trained.name,
        "dataset": dataset.name,
        "model_digest": model_digest(trained.model),
        "dataset_digest": dataset_digest(dataset),
        "context_key": result.stats["context_key"],
        "config": {
            "perforations": list(PERFORATIONS),
            "max_loss": MAX_LOSS,
            "budget_evals": BUDGET_EVALS,
            "calibration_images": CALIBRATION_IMAGES,
            "array_size": ARRAY_SIZE,
        },
    }
    return {
        "inputs.json": inputs,
        "accuracy_table.json": accuracy_table,
        "pareto_front.json": pareto_front,
    }


def write_goldens(payloads: dict[str, dict], directory: str) -> list[str]:
    """Atomically (re)write the golden documents; returns paths written."""
    import os

    paths = []
    for filename, payload in payloads.items():
        path = os.path.join(directory, filename)
        write_json_atomic(path, payload)
        paths.append(path)
    return paths


def verify_goldens(
    payloads: dict[str, dict],
    directory: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[Finding]:
    """Compare fresh workload payloads against the committed goldens."""
    import os

    findings: list[Finding] = []
    for filename in GOLDEN_FILES:
        fresh = payloads.get(filename)
        if fresh is None:
            continue
        path = os.path.join(directory, filename)
        name = os.path.splitext(filename)[0]
        if not os.path.exists(path):
            findings.append(
                Finding(
                    name,
                    "",
                    "missing",
                    "fail",
                    f"golden file {path} does not exist (run `make bench-refresh`)",
                    None,
                    fresh,
                )
            )
            continue
        findings.extend(
            compare_golden_payloads(name, load_json(path), fresh, tolerance)
        )
    return findings


__all__ = [
    "GOLDEN_FILES",
    "run_golden_workload",
    "write_goldens",
    "verify_goldens",
]
