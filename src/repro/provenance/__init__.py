"""Provenance-first results layer: run manifests, golden baselines, regression.

Every headline artifact of this reproduction — Table III accuracy sweeps,
DSE Pareto fronts, the engine throughput ledger — is a *measurement*, and a
measurement without provenance cannot be regression-gated.  This package is
the one place the repo states what it measured:

* :mod:`repro.provenance.environment` — the self-describing runtime block
  (package versions, backend availability *with import-failure reasons*,
  host facts, seed defaults) reused verbatim inside every manifest and
  printed by ``repro info --json``;
* :mod:`repro.provenance.manifest` — :class:`RunManifest` (input identity
  hashes + outputs), atomic temp-file-rename JSON writers, and the
  :func:`record_run` context manager adopted by ``repro sweep`` /
  ``table3`` / ``dse`` and every benchmark via ``benchmarks/conftest.py``;
* :mod:`repro.provenance.regression` — the golden-baseline comparator
  behind ``repro verify-results``: exact match for accuracy tables and
  Pareto fronts (bit-exact by construction), configurable tolerance bands
  for throughput/speedup sections;
* :mod:`repro.provenance.workload` — the small deterministic golden
  workload (sweep table + greedy DSE front) ``verify-results`` re-runs and
  compares bit-exactly against ``results/golden/``.

``make check`` runs the gate; ``make bench-refresh`` is the deliberate
re-baselining escape hatch.  See ``results/README.md`` for the schema and
workflow.
"""

from repro.provenance.environment import provenance_environment
from repro.provenance.manifest import (
    RunManifest,
    canonical_json,
    dataset_digest,
    load_json,
    model_digest,
    payload_digest,
    record_run,
    update_json_atomic,
    write_json_atomic,
    write_text_atomic,
)
from repro.provenance.regression import (
    Finding,
    RegressionReport,
    compare_bench_ledgers,
    compare_golden_payloads,
)

__all__ = [
    "provenance_environment",
    "RunManifest",
    "record_run",
    "canonical_json",
    "payload_digest",
    "model_digest",
    "dataset_digest",
    "write_json_atomic",
    "write_text_atomic",
    "update_json_atomic",
    "load_json",
    "Finding",
    "RegressionReport",
    "compare_bench_ledgers",
    "compare_golden_payloads",
]
