"""Run manifests: content-addressed input identity + outputs, written atomically.

A :class:`RunManifest` states what a run measured and what it measured it
*on*: sha256 digests of the trained parameters and dataset bytes (the same
array-hashing recipe :mod:`repro.dse.ledger` keys its records with, so a
manifest's hashes reproduce the ledger's ``context_key`` and the
:class:`~repro.simulation.campaign.TrainedModelCache` stem), the seed,
engine backend, worker count, package version, and the full provenance
environment block.  :func:`record_run` is the one context manager every
result-producing entry point wraps itself in — ``repro sweep`` / ``table3``
/ ``dse`` and the benchmarks via ``benchmarks/conftest.py``.

All disk writes in this module are **atomic** (temp file in the target
directory + ``os.replace``), the same pattern
:meth:`repro.dse.ledger.CampaignLedger.put` uses: an interrupt mid-write
can never truncate a shared results file.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import re
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

# The one array-hashing recipe in the repo: name + shape + dtype + bytes,
# sorted by name.  Reusing it (rather than re-implementing it) is what makes
# a manifest's model/dataset digests line up with the CampaignLedger's
# evaluation-context hashing.
from repro.dse.ledger import _hash_arrays

#: Environment variable overriding where :func:`record_run` writes manifests.
MANIFEST_DIR_ENV = "REPRO_MANIFEST_DIR"

#: Default manifest directory (relative to the working directory).
DEFAULT_MANIFEST_DIR = os.path.join("results", "manifests")

#: Key under which the payload digest is stored; excluded from the digest.
DIGEST_KEY = "manifest_digest"


# ---------------------------------------------------------------------------
# JSON plumbing: sanitization, canonical form, digests, atomic writes.
# ---------------------------------------------------------------------------


def jsonable(value: Any) -> Any:
    """``value`` rebuilt from JSON-serializable types only.

    numpy scalars become Python scalars, arrays become nested lists, tuples
    and sets become lists, dataclasses become dicts.  Mapping keys are
    coerced to strings (JSON has no other kind).
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return jsonable(value.tolist())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [jsonable(item) for item in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(payload: Any) -> str:
    """The canonical serialization digests and goldens are computed over.

    Sorted keys, compact separators, numpy types sanitized — two payloads
    with equal content always produce equal text, independent of insertion
    order or scalar container type.
    """
    return json.dumps(jsonable(payload), sort_keys=True, separators=(",", ":"))


def payload_digest(payload: dict) -> str:
    """sha256 of ``payload``'s canonical JSON, excluding :data:`DIGEST_KEY`.

    Because the digest key itself is excluded, loading a manifest and
    re-serializing it reproduces the stored digest — the round-trip
    hash-stability contract ``tests/test_provenance.py`` pins.
    """
    body = {key: value for key, value in payload.items() if key != DIGEST_KEY}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def model_digest(model: Any) -> str:
    """sha256 of a model's parameter arrays (ledger array-hashing recipe).

    ``model`` is anything with a ``state_dict()`` mapping names to arrays —
    the same bytes :func:`repro.dse.ledger.evaluation_context_key` folds
    into the campaign ledger's context key.
    """
    digest = hashlib.sha256()
    _hash_arrays(digest, dict(model.state_dict()))
    return digest.hexdigest()


def dataset_digest(dataset: Any) -> str:
    """sha256 of a dataset's split arrays plus its identity metadata."""
    digest = hashlib.sha256()
    _hash_arrays(
        digest,
        {
            "train_images": dataset.train_images,
            "train_labels": dataset.train_labels,
            "test_images": dataset.test_images,
            "test_labels": dataset.test_labels,
        },
    )
    digest.update(
        json.dumps(
            {"name": dataset.name, "num_classes": int(dataset.num_classes)},
            sort_keys=True,
        ).encode("utf-8")
    )
    return digest.hexdigest()


def write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via temp-file-in-directory + rename."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        # mkstemp creates 0600 files and os.replace preserves that; restore
        # umask-default permissions so results stay group/world readable.
        umask = os.umask(0)
        os.umask(umask)
        with contextlib.suppress(OSError, AttributeError):
            os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def write_json_atomic(path: str, payload: Any, indent: int = 2) -> None:
    """Atomically write ``payload`` as sorted-key JSON (trailing newline)."""
    text = json.dumps(jsonable(payload), indent=indent, sort_keys=True)
    write_text_atomic(path, text + "\n")


def load_json(path: str) -> Any:
    """Parse one JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def update_json_atomic(path: str, section: str, payload: Any, indent: int = 2) -> dict:
    """Merge ``payload`` under ``section`` of the JSON dict at ``path``.

    The read-modify-write the benchmarks historically open-coded (and could
    truncate when interrupted mid-write): here the merged document lands via
    :func:`write_json_atomic`, so readers only ever observe the old or the
    new complete file.  A missing or corrupt file starts a fresh document.
    Returns the merged document.
    """
    try:
        document = load_json(path)
        if not isinstance(document, dict):
            document = {}
    except (OSError, json.JSONDecodeError):
        document = {}
    document[section] = jsonable(payload)
    write_json_atomic(path, document, indent=indent)
    return document


# ---------------------------------------------------------------------------
# The manifest itself.
# ---------------------------------------------------------------------------


def _slug(text: str) -> str:
    """Filesystem-safe fragment of a manifest label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "run"


def resolve_manifest_dir(directory: str | None = None) -> str:
    """Manifest directory: explicit arg → ``$REPRO_MANIFEST_DIR`` → default."""
    if directory is not None:
        return directory
    return os.environ.get(MANIFEST_DIR_ENV) or DEFAULT_MANIFEST_DIR


@dataclass
class RunManifest:
    """Input identity and outputs of one result-producing run.

    ``inputs`` carries content-addressed identity (model/dataset sha256
    digests, plan fingerprints, ledger context keys, trained-cache stems,
    seed, backend, workers); ``outputs`` carries what was measured
    (accuracy records, Pareto fronts, wall clocks, eval counts).  The
    environment block from
    :func:`repro.provenance.environment.provenance_environment` is embedded
    verbatim, and :meth:`to_payload` stamps a digest over the whole
    document (excluding the digest itself) so any tampering or drift is one
    hash comparison away.
    """

    kind: str
    label: str | None = None
    inputs: dict = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None
    wall_clock_s: float | None = None
    #: Path of the last :meth:`write` (not serialized into the payload).
    path: str | None = None

    def filename(self) -> str:
        if self.label:
            return f"{_slug(self.kind)}-{_slug(self.label)}.json"
        return f"{_slug(self.kind)}.json"

    def to_payload(self) -> dict:
        """The manifest as a JSON-able dict, digest included."""
        payload = {
            "schema": "repro-run-manifest/v1",
            "kind": self.kind,
            "label": self.label,
            "status": self.status,
            "error": self.error,
            "wall_clock_s": self.wall_clock_s,
            "inputs": jsonable(self.inputs),
            "outputs": jsonable(self.outputs),
            "environment": jsonable(self.environment),
        }
        payload[DIGEST_KEY] = payload_digest(payload)
        return payload

    def write(self, directory: str | None = None) -> str:
        """Atomically write the manifest; returns the path written."""
        directory = resolve_manifest_dir(directory)
        path = os.path.join(directory, self.filename())
        write_json_atomic(path, self.to_payload())
        self.path = path
        return path

    @classmethod
    def from_payload(cls, payload: dict) -> "RunManifest":
        stored = payload.get(DIGEST_KEY)
        if stored is not None and stored != payload_digest(payload):
            raise ValueError(f"manifest digest mismatch: {payload.get('kind')!r}")
        return cls(
            kind=payload["kind"],
            label=payload.get("label"),
            inputs=payload.get("inputs", {}),
            outputs=payload.get("outputs", {}),
            environment=payload.get("environment", {}),
            status=payload.get("status", "ok"),
            error=payload.get("error"),
            wall_clock_s=payload.get("wall_clock_s"),
        )

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Load and digest-verify a manifest written by :meth:`write`."""
        return cls.from_payload(load_json(path))


@contextlib.contextmanager
def record_run(
    kind: str,
    label: str | None = None,
    directory: str | None = None,
    inputs: dict | None = None,
) -> Iterator[RunManifest]:
    """Record one result-producing run as a :class:`RunManifest` on disk.

    Yields the mutable manifest; the caller fills ``inputs`` / ``outputs``
    as identity and results become known.  On exit — including exceptional
    exit, where ``status`` flips to ``"error"`` and the exception is
    re-raised — the wall clock and environment block are stamped and the
    manifest is written atomically to ``directory`` (resolved through
    :func:`resolve_manifest_dir`).  A manifest-write failure degrades to a
    stderr warning: provenance never crashes the run it describes.
    """
    from repro.provenance.environment import provenance_environment

    manifest = RunManifest(kind=kind, label=label, inputs=dict(inputs or {}))
    start = time.perf_counter()
    try:
        yield manifest
    except BaseException as error:
        manifest.status = "error"
        manifest.error = f"{type(error).__name__}: {error}"
        raise
    finally:
        manifest.wall_clock_s = time.perf_counter() - start
        if not manifest.environment:
            manifest.environment = provenance_environment()
        try:
            manifest.write(directory)
        except OSError as error:
            # An unwritable manifest directory must not crash a successful
            # run at exit, nor replace an in-flight exception on the error
            # path — the manifest is provenance, not the result itself.
            print(
                f"warning: could not write run manifest for {manifest.kind!r}: {error}",
                file=sys.stderr,
            )


__all__ = [
    "RunManifest",
    "record_run",
    "resolve_manifest_dir",
    "canonical_json",
    "payload_digest",
    "model_digest",
    "dataset_digest",
    "jsonable",
    "write_json_atomic",
    "write_text_atomic",
    "update_json_atomic",
    "load_json",
    "MANIFEST_DIR_ENV",
    "DEFAULT_MANIFEST_DIR",
    "DIGEST_KEY",
]
