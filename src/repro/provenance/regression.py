"""Golden-baseline regression comparison behind ``repro verify-results``.

The policy in one sentence: **deterministic artifacts must match exactly,
timing-derived artifacts must not regress beyond a tolerance, pure
wall-clock noise is ignored** — so a PR that perturbs an accuracy table or
Pareto front fails loudly, a PR that halves throughput fails loudly, and a
PR that merely ran on a slower afternoon does not.

Every leaf of a compared document is classified by its key *path*: a key
names its own policy, and a bare-index key (a worker count like ``"4"``
under ``speedup_vs_serial``) inherits its parent's policy, so
timing-derived values keyed by index are still floors, not exact matches:

``ignore``
    Wall-clock noise and host facts that legitimately drift between runs
    and machines: ``wall_clock_s``, ``*_time``, ``cpu_count``,
    ``workers_vs_wallclock``, the per-backend throughput ``backends``
    subtree, ``worker_private_kib_*``, ``reason``.
``floor``
    Higher-is-better throughput metrics — ``*speedup*``, ``*_pps``,
    ``*_ips``, ``payload_reduction``.  Fail when
    ``fresh < golden * (1 - tolerance)``; improvements never fail.  The
    *relative* floor is not enforced when the golden value is already
    below 1.0 (a sub-unity parallel "speedup" recorded on a starved box is
    an environment artifact, not a baseline worth defending) — but
    ``speedup_vs_serial`` values additionally carry an *absolute* floor of
    1.0 (minus :data:`SPEEDUP_NOISE_TOLERANCE` noise margin), regardless
    of the golden: with cost-balanced scheduling and the
    degrade-to-serial worker clamp, parallel execution must never lose to
    serial on any host, so a fresh sub-0.9x "speedup" is a scheduling
    regression even if the golden once recorded one.
``band``
    Size-like metrics (``*bytes*``): fail when
    ``|fresh - golden| > tolerance * max(|golden|, 1)``.
``exact``
    Everything else — accuracies, losses, energies, eval counts, fronts.
    These are bit-exact by construction (seeded training, content-addressed
    ledger), so any difference is a real behavior change.  Lists compare as
    *multisets* of canonical JSON: a Pareto front reordered but otherwise
    equal passes, any perturbed value fails.

Sections present in the golden but missing from the fresh results are
failures (a result silently stopped being produced); fresh sections with no
golden are warnings (unbaselined — run ``make bench-refresh``).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

from repro.provenance.manifest import canonical_json

#: Default relative tolerance for floor/band comparisons.  Generous on
#: purpose: single-run timings on a shared 1-CPU box jitter far more than a
#: genuine optimisation regresses.  Override with ``--tolerance`` or
#: ``REPRO_REGRESSION_TOL``.
DEFAULT_TOLERANCE = 0.5

#: Noise margin of the absolute ``speedup_vs_serial`` floor: the serial
#: degradation path still re-measures serial and "parallel" wall-clocks in
#: one process, and single-run jitter on a busy box can push the ratio a
#: few percent under 1.0 without any scheduling change.
SPEEDUP_NOISE_TOLERANCE = 0.1

#: Absolute floors by path substring: ``{marker: (target, reason)}``.
#: Applied on top of (and independently of) the golden-relative floor —
#: these encode invariants of the system itself, not of a recorded
#: baseline.  ``reason`` opens the failure message.
_ABSOLUTE_FLOORS = {
    "speedup_vs_serial": (
        1.0,
        "parallel execution lost to serial (the scheduler must degrade to "
        "serial rather than lose to it)",
    ),
    "speedup_vs_unfused": (
        1.3,
        "fused multi-plan sweep lost its launch-collapse margin over the "
        "per-plan path",
    ),
}

_IGNORED_KEYS = {
    "wall_clock_s",
    "cpu_count",
    "affinity_cpus",
    "effective_workers",
    "workers_vs_wallclock",
    "backends",
    "reason",
}
_FLOOR_KEYS = {"payload_reduction"}
_BARE_INDEX = re.compile(r"\d+")


def classify_key(key: str, parent: str = "exact") -> str:
    """The comparison policy of one key: ignore / floor / band / exact.

    ``parent`` is the policy of the enclosing container.  A bare-index key
    (all digits — a worker count, a layer index) carries no policy of its
    own and inherits ``parent``, so ``speedup_vs_serial.4`` is a floor even
    though ``"4"`` alone would classify as exact.
    """
    if key in _IGNORED_KEYS or key.endswith("_time") or key.startswith("worker_private_kib"):
        return "ignore"
    if "speedup" in key or key.endswith(("_pps", "_ips")) or key in _FLOOR_KEYS:
        return "floor"
    if "bytes" in key:
        return "band"
    if _BARE_INDEX.fullmatch(key):
        return parent
    return "exact"


@dataclass(frozen=True)
class Finding:
    """One divergence (or advisory) between golden and fresh results."""

    section: str
    path: str
    kind: str  # "exact" | "floor" | "band" | "missing" | "unbaselined" | "type"
    severity: str  # "fail" | "warn"
    message: str
    golden: object = None
    fresh: object = None

    def describe(self) -> str:
        location = f"{self.section}:{self.path}" if self.path else self.section
        return f"[{self.severity}] {location} — {self.message}"


@dataclass
class RegressionReport:
    """All findings of one verification run."""

    tolerance: float = DEFAULT_TOLERANCE
    findings: list[Finding] = field(default_factory=list)

    @property
    def failures(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "fail"]

    @property
    def warnings(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "warn"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def extend(self, findings: "list[Finding]") -> None:
        self.findings.extend(findings)

    def to_payload(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "failures": [finding.describe() for finding in self.failures],
            "warnings": [finding.describe() for finding in self.warnings],
        }


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare_leaf(
    section: str, path: str, policy: str, golden: object, fresh: object, tolerance: float
) -> list[Finding]:
    if policy in ("floor", "band") and _is_number(golden) and _is_number(fresh):
        if policy == "floor":
            findings: list[Finding] = []
            for marker, (target, reason) in _ABSOLUTE_FLOORS.items():
                if marker not in path:
                    continue
                minimum = target * (1.0 - SPEEDUP_NOISE_TOLERANCE)
                if fresh < minimum:
                    findings.append(
                        Finding(
                            section,
                            path,
                            "floor",
                            "fail",
                            f"{reason}: {fresh:.6g} < "
                            f"{target:g} × (1 − {SPEEDUP_NOISE_TOLERANCE:g}) = "
                            f"{minimum:.6g} (absolute floor)",
                            golden,
                            fresh,
                        )
                    )
                break
            if golden < 1.0:
                # Sub-unity golden: environment artifact, no relative floor
                # (the absolute floors above still applied).
                return findings
            floor = golden * (1.0 - tolerance)
            if fresh < floor:
                findings.append(
                    Finding(
                        section,
                        path,
                        "floor",
                        "fail",
                        f"regressed beyond tolerance: {fresh:.6g} < "
                        f"{golden:.6g} × (1 − {tolerance:g}) = {floor:.6g}",
                        golden,
                        fresh,
                    )
                )
            return findings
        band = tolerance * max(abs(float(golden)), 1.0)
        if abs(float(fresh) - float(golden)) > band:
            return [
                Finding(
                    section,
                    path,
                    "band",
                    "fail",
                    f"outside tolerance band: |{fresh:.6g} − {golden:.6g}| > {band:.6g}",
                    golden,
                    fresh,
                )
            ]
        return []
    # Exact policy (also floor/band leaves of non-numeric type).
    if canonical_json(golden) != canonical_json(fresh):
        return [
            Finding(
                section,
                path,
                "exact",
                "fail",
                f"exact-match value changed: golden {golden!r} != fresh {fresh!r}",
                golden,
                fresh,
            )
        ]
    return []


def _compare_nodes(
    section: str,
    path: str,
    key: str,
    golden: object,
    fresh: object,
    tolerance: float,
    parent_policy: str = "exact",
) -> list[Finding]:
    policy = classify_key(key, parent_policy)
    if policy == "ignore":
        return []
    if isinstance(golden, dict) and isinstance(fresh, dict):
        findings: list[Finding] = []
        for child in golden:
            child_path = _join(path, child)
            if child not in fresh:
                if classify_key(child, policy) == "ignore":
                    continue
                findings.append(
                    Finding(
                        section,
                        child_path,
                        "missing",
                        "fail",
                        "present in golden but missing from fresh results",
                        golden[child],
                        None,
                    )
                )
                continue
            findings.extend(
                _compare_nodes(
                    section,
                    child_path,
                    child,
                    golden[child],
                    fresh[child],
                    tolerance,
                    parent_policy=policy,
                )
            )
        for child in fresh:
            if child not in golden and classify_key(child, policy) != "ignore":
                findings.append(
                    Finding(
                        section,
                        _join(path, child),
                        "unbaselined",
                        "warn",
                        "fresh result has no golden baseline (run `make bench-refresh`)",
                        None,
                        fresh[child],
                    )
                )
        return findings
    if isinstance(golden, list) and isinstance(fresh, list):
        # Order-insensitive multiset comparison: a Pareto front reordered
        # but otherwise equal is the same front; any perturbed element is
        # a different multiset.
        golden_items = Counter(canonical_json(item) for item in golden)
        fresh_items = Counter(canonical_json(item) for item in fresh)
        if golden_items != fresh_items:
            lost = list((golden_items - fresh_items).elements())
            gained = list((fresh_items - golden_items).elements())
            detail = "; ".join(
                part
                for part in (
                    f"missing from fresh: {lost[:3]}" if lost else "",
                    f"not in golden: {gained[:3]}" if gained else "",
                )
                if part
            )
            return [
                Finding(
                    section,
                    path,
                    "exact",
                    "fail",
                    f"list content changed ({len(golden)} golden vs "
                    f"{len(fresh)} fresh items): {detail}",
                    golden,
                    fresh,
                )
            ]
        return []
    if type(golden) is not type(fresh) and not (
        _is_number(golden) and _is_number(fresh)
    ):
        return [
            Finding(
                section,
                path,
                "type",
                "fail",
                f"type changed: golden {type(golden).__name__} != "
                f"fresh {type(fresh).__name__}",
                golden,
                fresh,
            )
        ]
    return _compare_leaf(section, path, policy, golden, fresh, tolerance)


def compare_golden_payloads(
    name: str, golden: object, fresh: object, tolerance: float = DEFAULT_TOLERANCE
) -> list[Finding]:
    """Compare one golden document against its fresh counterpart.

    ``name`` labels the findings (e.g. the golden file's stem).  The
    key-classification policy applies from the root; for the workload
    goldens (accuracy table, Pareto front) every key is ``exact`` so this
    degenerates to bit-exact comparison with order-insensitive fronts.
    """
    return _compare_nodes(name, "", name, golden, fresh, tolerance)


def compare_bench_ledgers(
    golden: dict, fresh: dict, tolerance: float = DEFAULT_TOLERANCE
) -> RegressionReport:
    """Compare the full bench ledger (``BENCH_engine.json``) section-wise.

    Golden sections missing from the fresh ledger fail (a benchmark
    silently stopped producing its section); fresh sections without a
    golden warn (unbaselined).
    """
    report = RegressionReport(tolerance=tolerance)
    for section in golden:
        if section not in fresh:
            report.findings.append(
                Finding(
                    section,
                    "",
                    "missing",
                    "fail",
                    "golden section missing from fresh results",
                    golden[section],
                    None,
                )
            )
            continue
        report.extend(
            _compare_nodes(
                section, "", section, golden[section], fresh[section], tolerance
            )
        )
    for section in fresh:
        if section not in golden:
            report.findings.append(
                Finding(
                    section,
                    "",
                    "unbaselined",
                    "warn",
                    "fresh section has no golden baseline (run `make bench-refresh`)",
                    None,
                    fresh[section],
                )
            )
    return report


__all__ = [
    "DEFAULT_TOLERANCE",
    "SPEEDUP_NOISE_TOLERANCE",
    "classify_key",
    "Finding",
    "RegressionReport",
    "compare_golden_payloads",
    "compare_bench_ledgers",
]
