"""The self-describing provenance environment block.

One dictionary answers "what machine, what software, what defaults produced
this number?" — it is embedded verbatim in every :class:`RunManifest` and
printed by ``repro info --json``.  Two properties matter:

* **failure reasons are recorded, not discarded** — an optional package
  (numba) that fails to import contributes its import-error message, so a
  results file claiming ``"numba": {"available": false}`` explains *why*
  (the ROADMAP PR-2 carryover: stale hardware claims must be
  self-describing);
* **determinism** — given one interpreter on one host the block is stable,
  so manifests of repeated runs differ only where the measurement differs.
"""

from __future__ import annotations

import importlib
import os
import platform

from repro import __version__


#: Optional/load-bearing packages probed for the environment block.  numpy
#: is required, scipy accelerates the LUT decomposition (the engine degrades
#: without it), numba backs the JIT engine backend.
PROBED_PACKAGES = ("numpy", "scipy", "numba")


def probe_package(name: str) -> dict:
    """``{available, version, reason}`` of one importable package.

    ``reason`` carries the import failure (exception type + message) when
    the package is unavailable, ``None`` otherwise.
    """
    try:
        module = importlib.import_module(name)
    except Exception as error:  # noqa: BLE001 - any import failure is a reason
        return {
            "available": False,
            "version": None,
            "reason": f"{type(error).__name__}: {error}",
        }
    return {
        "available": True,
        "version": getattr(module, "__version__", None),
        "reason": None,
    }


def _engine_backend_rows() -> list[dict]:
    """Availability of every registered engine backend (with reasons)."""
    from repro.core.backends import DEFAULT_BACKEND, backend_names, get_backend

    rows = []
    for name in backend_names():
        backend = get_backend(name)
        available, reason = backend.availability()
        rows.append(
            {
                "name": name,
                "available": available,
                "default": name == DEFAULT_BACKEND,
                # Capability flag, not hasattr: backends without a fused
                # multi-plan compiler (e.g. lowmem) report False and the
                # executor degrades to the per-plan loop.
                "fused_multi_plan": bool(backend.fused_multi_plan),
                "reason": None if available else reason,
            }
        )
    return rows


def _seed_defaults() -> dict:
    """The root seeds every stochastic path defaults to without ``--seed``."""
    from repro.simulation.campaign import TrainingSettings

    return {
        # The CLI's --seed default: None means the built-in stream seeds below.
        "cli_seed": None,
        "training_seed": TrainingSettings().seed,
        # run_campaign's default NSGA-II / strategy generator.
        "campaign_rng_seed": 0,
        # experiment_dataset's built-in synthetic generator seeds.
        "dataset_seed_10_classes": 10,
        "dataset_seed_100_classes": 100,
    }


def _runtime_defaults() -> dict:
    """The runtime layer's stats schema and admission defaults.

    ``repro info`` surfaces the same schema identifier every live
    ``stats()`` payload carries (:data:`repro.runtime.stats.STATS_SCHEMA`),
    plus the worker sizing this host would resolve an auto request to and
    the job layer's admission-control defaults — so a manifest records how
    the runtime *would* be configured even for runs that never start a
    service.
    """
    from repro.runtime.jobs.queue import JobQueue
    from repro.runtime.sizing import resolve_worker_count
    from repro.runtime.stats import STATS_SCHEMA

    from repro.core.backends import backend_names, get_backend
    from repro.runtime.scheduling import DEFAULT_PLAN_GROUP_SIZE

    return {
        "stats_schema": STATS_SCHEMA,
        # A `workers=None` auto request resolved on this host (affinity/
        # load-aware) — the effective pool an unconstrained run would get.
        "auto_workers": resolve_worker_count(None),
        "default_queue_depth": JobQueue().max_depth,
        "default_session_inflight": JobQueue().max_inflight_per_session,
        # Fused multi-plan path: on by default, with the launch counters
        # (`fused_launches`, `plans_per_launch_avg`, prefix-checkpoint
        # hits) reported by every stats() payload under the schema above.
        "default_fuse_plans": True,
        "default_plan_group_size": DEFAULT_PLAN_GROUP_SIZE,
        "fused_backends": [
            name
            for name in backend_names()
            if get_backend(name).fused_multi_plan
        ],
    }


def _serving_defaults() -> dict:
    """The deployed-daemon policy knobs, as ``repro serve``/``gateway`` default them.

    Everything an operator can tune on a running fleet — admission bounds,
    the priority/starvation policy, result-cache sizing and persistence,
    and the gateway's retry/health-check posture — in one inspectable
    block, so "what knobs is this deployment actually running?" is a
    ``repro info --json`` away instead of a source dive.
    """
    from repro.runtime.jobs.cache import ResultCache
    from repro.runtime.jobs.client import HttpJobClient
    from repro.runtime.jobs.queue import JobQueue

    queue = JobQueue()
    cache = ResultCache()
    client = HttpJobClient("http://example.invalid")
    return {
        "queue_depth": queue.max_depth,
        "session_inflight_cap": queue.max_inflight_per_session,
        "default_priority": 0,
        "starvation_limit": queue.starvation_limit,
        "cache_entries": cache.max_entries,  # None = unbounded
        "cache_persist_path": cache.persist_dir,  # None = memory-only
        "client_retries": client.retries,
        "client_backoff_s": client.backoff,
        "client_max_backoff_s": client.max_backoff,
        "client_request_timeout_s": client.request_timeout,
        "gateway_fail_threshold": 1,
        "gateway_health_interval_s": 1.0,
    }


def provenance_environment() -> dict:
    """The environment block embedded in every manifest.

    Keys: ``package`` (this distribution), ``python`` / ``platform`` /
    ``machine`` / ``cpu_count`` (host facts), ``packages`` (probe results
    incl. import-failure reasons), ``engine_backends`` (registry
    availability with reasons), ``seed_defaults``, ``runtime`` (stats
    schema + admission defaults), ``serving`` (daemon/gateway policy-knob
    defaults: queue depth, session cap, priority/starvation policy, cache
    sizing + persistence, client retry posture).
    """
    return {
        "package": {"name": "repro-dac21", "version": __version__},
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "packages": {name: probe_package(name) for name in PROBED_PACKAGES},
        "engine_backends": _engine_backend_rows(),
        "seed_defaults": _seed_defaults(),
        "runtime": _runtime_defaults(),
        "serving": _serving_defaults(),
    }


__all__ = ["provenance_environment", "probe_package", "PROBED_PACKAGES"]
