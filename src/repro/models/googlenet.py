"""GoogLeNet-like network built from Inception modules."""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph, INPUT
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
)


def _conv_bn_relu(
    graph: Graph,
    name: str,
    x: str,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    rng: np.random.Generator,
    stride: int = 1,
) -> str:
    """Append a conv / batch-norm / ReLU triple and return its output node."""
    x = graph.add(
        f"{name}_conv",
        Conv2D(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding="same",
            use_bias=False,
            rng=rng,
        ),
        x,
    )
    x = graph.add(f"{name}_bn", BatchNorm(out_channels), x)
    return graph.add(f"{name}_relu", ReLU(), x)


def _inception(
    graph: Graph,
    name: str,
    x: str,
    in_channels: int,
    branch_channels: tuple[int, int, int, int],
    rng: np.random.Generator,
) -> tuple[str, int]:
    """Append one Inception module.

    ``branch_channels`` gives the output widths of the 1x1, 3x3, 5x5 and
    pool-projection branches.  Returns the concatenated node and its channel
    count.
    """
    b1x1, b3x3, b5x5, bpool = branch_channels
    branch1 = _conv_bn_relu(graph, f"{name}_b1", x, in_channels, b1x1, 1, rng)
    branch3 = _conv_bn_relu(graph, f"{name}_b3_reduce", x, in_channels, b3x3, 1, rng)
    branch3 = _conv_bn_relu(graph, f"{name}_b3", branch3, b3x3, b3x3, 3, rng)
    branch5 = _conv_bn_relu(graph, f"{name}_b5_reduce", x, in_channels, b5x5, 1, rng)
    branch5 = _conv_bn_relu(graph, f"{name}_b5", branch5, b5x5, b5x5, 5, rng)
    # The original module max-pools (stride 1) before the projection; the
    # scaled module uses the projection alone, which keeps the module's
    # channel-concatenation structure without an overlapping-pool layer.
    pool = _conv_bn_relu(graph, f"{name}_bp", x, in_channels, bpool, 1, rng)
    out = graph.add(
        f"{name}_concat", Concat(4), [branch1, branch3, branch5, pool]
    )
    return out, b1x1 + b3x3 + b5x5 + bpool


def build_googlenet(
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 8,
    rng: np.random.Generator | None = None,
) -> Graph:
    """Build a scaled GoogLeNet: a stem followed by four Inception modules."""
    if rng is None:
        rng = np.random.default_rng(22)
    graph = Graph()
    x = _conv_bn_relu(graph, "stem", INPUT, in_channels, base_width * 2, 3, rng)
    channels = base_width * 2
    x = graph.add("stem_pool", MaxPool2D(2), x)

    x, channels = _inception(
        graph, "inc3a", x, channels, (base_width, base_width, base_width // 2, base_width // 2), rng
    )
    x, channels = _inception(
        graph, "inc3b", x, channels, (base_width, base_width, base_width // 2, base_width // 2), rng
    )
    x = graph.add("pool3", MaxPool2D(2), x)
    x, channels = _inception(
        graph,
        "inc4a",
        x,
        channels,
        (base_width * 2, base_width * 2, base_width, base_width),
        rng,
    )
    x, channels = _inception(
        graph,
        "inc4b",
        x,
        channels,
        (base_width * 2, base_width * 2, base_width, base_width),
        rng,
    )
    x = graph.add("gap", GlobalAvgPool(), x)
    graph.add("classifier", Dense(channels, num_classes, rng=rng), x)
    return graph
