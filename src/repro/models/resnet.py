"""CIFAR-style residual networks (ResNet-44-like and ResNet-56-like)."""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph, INPUT
from repro.nn.layers import Add, BatchNorm, Conv2D, Dense, GlobalAvgPool, ReLU

#: Blocks per stage for each supported (scaled) depth.  The original CIFAR
#: ResNets use ``depth = 6n + 2`` with n = 7 (ResNet-44) and n = 9
#: (ResNet-56); the scaled variants use n = 2 and n = 3, preserving the
#: three-stage structure and the relative depth ordering.
STAGE_BLOCKS = {
    44: 2,
    56: 3,
}


def _basic_block(
    graph: Graph,
    name: str,
    x: str,
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
) -> str:
    """Append one pre-activation-free basic residual block and return its output node."""
    y = graph.add(
        f"{name}_conv1",
        Conv2D(in_channels, out_channels, 3, stride=stride, padding="same", use_bias=False, rng=rng),
        x,
    )
    y = graph.add(f"{name}_bn1", BatchNorm(out_channels), y)
    y = graph.add(f"{name}_relu1", ReLU(), y)
    y = graph.add(
        f"{name}_conv2",
        Conv2D(out_channels, out_channels, 3, padding="same", use_bias=False, rng=rng),
        y,
    )
    y = graph.add(f"{name}_bn2", BatchNorm(out_channels), y)
    if stride != 1 or in_channels != out_channels:
        shortcut = graph.add(
            f"{name}_proj",
            Conv2D(in_channels, out_channels, 1, stride=stride, padding="valid", use_bias=False, rng=rng),
            x,
        )
        shortcut = graph.add(f"{name}_proj_bn", BatchNorm(out_channels), shortcut)
    else:
        shortcut = x
    merged = graph.add(f"{name}_add", Add(2), [y, shortcut])
    return graph.add(f"{name}_relu2", ReLU(), merged)


def build_resnet(
    depth: int = 44,
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 8,
    rng: np.random.Generator | None = None,
) -> Graph:
    """Build a scaled CIFAR ResNet.

    Parameters
    ----------
    depth:
        44 or 56 — selects the number of residual blocks per stage.
    base_width:
        Channels of the first stage; the three stages use
        ``(w, 2w, 4w)`` like the original CIFAR ResNets.
    """
    if depth not in STAGE_BLOCKS:
        raise ValueError(
            f"unsupported ResNet depth {depth}; choose from {sorted(STAGE_BLOCKS)}"
        )
    if rng is None:
        rng = np.random.default_rng(depth)
    blocks_per_stage = STAGE_BLOCKS[depth]
    graph = Graph()
    x = graph.add(
        "stem_conv",
        Conv2D(in_channels, base_width, 3, padding="same", use_bias=False, rng=rng),
        INPUT,
    )
    x = graph.add("stem_bn", BatchNorm(base_width), x)
    x = graph.add("stem_relu", ReLU(), x)
    channels = base_width
    for stage in range(3):
        out_channels = base_width * (2**stage)
        for block in range(blocks_per_stage):
            stride = 2 if (stage > 0 and block == 0) else 1
            x = _basic_block(
                graph,
                f"stage{stage}_block{block}",
                x,
                channels,
                out_channels,
                stride,
                rng,
            )
            channels = out_channels
    x = graph.add("gap", GlobalAvgPool(), x)
    graph.add("classifier", Dense(channels, num_classes, rng=rng), x)
    return graph
