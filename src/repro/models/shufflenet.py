"""ShuffleNet-like network built from grouped-conv / channel-shuffle units."""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph, INPUT
from repro.nn.layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    ChannelShuffle,
    Concat,
    Conv2D,
    Dense,
    GlobalAvgPool,
    ReLU,
)


def _gconv_bn(
    graph: Graph,
    name: str,
    x: str,
    in_channels: int,
    out_channels: int,
    groups: int,
    rng: np.random.Generator,
    relu: bool = True,
) -> str:
    """Grouped 1x1 convolution followed by batch-norm (and optional ReLU)."""
    x = graph.add(
        f"{name}_gconv",
        Conv2D(in_channels, out_channels, 1, padding="valid", groups=groups, use_bias=False, rng=rng),
        x,
    )
    x = graph.add(f"{name}_bn", BatchNorm(out_channels), x)
    if relu:
        x = graph.add(f"{name}_relu", ReLU(), x)
    return x


def _shuffle_unit(
    graph: Graph,
    name: str,
    x: str,
    in_channels: int,
    out_channels: int,
    groups: int,
    stride: int,
    rng: np.random.Generator,
) -> tuple[str, int]:
    """One ShuffleNet unit: GConv1x1 -> shuffle -> DWConv3x3 -> GConv1x1.

    Stride-1 units add a residual connection; stride-2 units concatenate an
    average-pooled shortcut, as in the original architecture.
    """
    bottleneck = max(groups, out_channels // 4)
    bottleneck -= bottleneck % groups
    branch_out = out_channels - in_channels if stride == 2 else out_channels
    y = _gconv_bn(graph, f"{name}_reduce", x, in_channels, bottleneck, groups, rng)
    y = graph.add(f"{name}_shuffle", ChannelShuffle(groups), y)
    y = graph.add(
        f"{name}_dwconv",
        Conv2D(
            bottleneck,
            bottleneck,
            3,
            stride=stride,
            padding="same",
            groups=bottleneck,
            use_bias=False,
            rng=rng,
        ),
        y,
    )
    y = graph.add(f"{name}_dwbn", BatchNorm(bottleneck), y)
    y = _gconv_bn(graph, f"{name}_expand", y, bottleneck, branch_out, groups, rng, relu=False)
    if stride == 2:
        shortcut = graph.add(f"{name}_avgpool", AvgPool2D(2), x)
        merged = graph.add(f"{name}_concat", Concat(2), [shortcut, y])
        out_channels = in_channels + branch_out
    else:
        if in_channels != out_channels:
            raise ValueError("stride-1 shuffle units require in_channels == out_channels")
        merged = graph.add(f"{name}_add", Add(2), [x, y])
    out = graph.add(f"{name}_relu_out", ReLU(), merged)
    return out, out_channels


def build_shufflenet(
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 16,
    groups: int = 2,
    rng: np.random.Generator | None = None,
) -> Graph:
    """Build a scaled ShuffleNet: a stem plus two stages of shuffle units."""
    if base_width % (2 * groups):
        raise ValueError("base_width must be divisible by 2 * groups")
    if rng is None:
        rng = np.random.default_rng(28)
    graph = Graph()
    x = graph.add(
        "stem_conv",
        Conv2D(in_channels, base_width, 3, padding="same", use_bias=False, rng=rng),
        INPUT,
    )
    x = graph.add("stem_bn", BatchNorm(base_width), x)
    x = graph.add("stem_relu", ReLU(), x)
    channels = base_width

    x, channels = _shuffle_unit(graph, "stage1_down", x, channels, channels * 2, groups, 2, rng)
    x, channels = _shuffle_unit(graph, "stage1_unit1", x, channels, channels, groups, 1, rng)
    x, channels = _shuffle_unit(graph, "stage1_unit2", x, channels, channels, groups, 1, rng)

    x, channels = _shuffle_unit(graph, "stage2_down", x, channels, channels * 2, groups, 2, rng)
    x, channels = _shuffle_unit(graph, "stage2_unit1", x, channels, channels, groups, 1, rng)

    x = graph.add("gap", GlobalAvgPool(), x)
    graph.add("classifier", Dense(channels, num_classes, rng=rng), x)
    return graph
