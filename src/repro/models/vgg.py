"""VGG-13-like and VGG-16-like plain convolutional networks."""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Sequential
from repro.nn.layers import BatchNorm, Conv2D, Dense, GlobalAvgPool, MaxPool2D, ReLU

#: Number of 3x3 convolutions per stage for each supported depth.  The real
#: VGG-13 / VGG-16 use (2,2,2,2,2) and (2,2,3,3,3) over five stages; the
#: scaled versions keep the per-stage pattern over four stages so a 16x16
#: input is reduced to 2x2 before global pooling.
STAGE_CONVS = {
    13: (2, 2, 2, 2),
    16: (2, 2, 3, 3),
}


def build_vgg(
    depth: int = 13,
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 12,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Build a scaled VGG-style network.

    Parameters
    ----------
    depth:
        13 or 16 — selects the per-stage convolution counts.
    num_classes:
        Size of the classifier output.
    in_channels:
        Number of input channels (3 for RGB).
    base_width:
        Channel count of the first stage; later stages double it (capped at
        ``4 * base_width`` to keep the numpy training tractable).
    rng:
        Generator used for weight initialization.
    """
    if depth not in STAGE_CONVS:
        raise ValueError(f"unsupported VGG depth {depth}; choose from {sorted(STAGE_CONVS)}")
    if rng is None:
        rng = np.random.default_rng(depth)
    model = Sequential()
    channels = in_channels
    width = base_width
    for stage, n_convs in enumerate(STAGE_CONVS[depth]):
        for conv in range(n_convs):
            prefix = f"s{stage}_c{conv}"
            model.append(
                Conv2D(channels, width, kernel_size=3, padding="same", use_bias=False, rng=rng),
                name=f"{prefix}_conv",
            )
            model.append(BatchNorm(width), name=f"{prefix}_bn")
            model.append(ReLU(), name=f"{prefix}_relu")
            channels = width
        if stage < len(STAGE_CONVS[depth]) - 1:
            model.append(MaxPool2D(2), name=f"s{stage}_pool")
            width = min(width * 2, base_width * 4)
    model.append(GlobalAvgPool(), name="gap")
    model.append(Dense(channels, num_classes, rng=rng), name="classifier")
    return model
