"""Registry of the six reproduced network families."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.models.googlenet import build_googlenet
from repro.models.resnet import build_resnet
from repro.models.shufflenet import build_shufflenet
from repro.models.vgg import build_vgg
from repro.nn.graph import Graph

#: The network names exactly as they appear in Table III of the paper.
MODEL_NAMES = ("googlenet", "resnet44", "resnet56", "shufflenet", "vgg13", "vgg16")


@dataclass(frozen=True)
class ModelSpec:
    """Description of one registered architecture."""

    name: str
    family: str
    builder: Callable[..., Graph]
    kwargs: dict

    def build(
        self, num_classes: int, rng: np.random.Generator | None = None, **overrides
    ) -> Graph:
        """Instantiate the architecture for ``num_classes`` outputs."""
        kwargs = dict(self.kwargs)
        kwargs.update(overrides)
        return self.builder(num_classes=num_classes, rng=rng, **kwargs)


_REGISTRY: dict[str, ModelSpec] = {
    "googlenet": ModelSpec("googlenet", "inception", build_googlenet, {"base_width": 8}),
    "resnet44": ModelSpec("resnet44", "resnet", build_resnet, {"depth": 44, "base_width": 8}),
    "resnet56": ModelSpec("resnet56", "resnet", build_resnet, {"depth": 56, "base_width": 8}),
    "shufflenet": ModelSpec(
        "shufflenet", "shufflenet", build_shufflenet, {"base_width": 16, "groups": 2}
    ),
    "vgg13": ModelSpec("vgg13", "vgg", build_vgg, {"depth": 13, "base_width": 12}),
    "vgg16": ModelSpec("vgg16", "vgg", build_vgg, {"depth": 16, "base_width": 12}),
}


def model_spec(name: str) -> ModelSpec:
    """Look up the :class:`ModelSpec` registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}"
        ) from None


def build_model(
    name: str,
    num_classes: int = 10,
    rng: np.random.Generator | None = None,
    **overrides,
) -> Graph:
    """Build one of the six registered architectures by name."""
    return model_spec(name).build(num_classes=num_classes, rng=rng, **overrides)
