"""Scaled-down versions of the six CIFAR architectures evaluated in the paper.

Table III of the paper evaluates GoogLeNet, ResNet-44, ResNet-56,
ShuffleNet, VGG-13 and VGG-16 trained on CIFAR-10 and CIFAR-100.  Training
the full-size networks is infeasible with a pure-numpy engine in this
environment, so each family is rebuilt here at reduced width/depth while
preserving its structural signature:

* VGG family — plain stacks of 3x3 conv / batch-norm / ReLU blocks with
  max-pooling between stages (VGG-16-like is deeper than VGG-13-like);
* ResNet family — CIFAR-style residual stages with identity and projection
  shortcuts (ResNet-56-like is deeper than ResNet-44-like);
* GoogLeNet family — Inception modules with parallel 1x1 / 3x3 / 5x5 /
  pool-projection branches concatenated along channels;
* ShuffleNet family — grouped pointwise convolutions, channel shuffle and
  depthwise 3x3 convolutions with residual/concat units.

The relative ordering of depth and of approximation sensitivity across
families is what matters for reproducing the shape of Table III; absolute
accuracy values necessarily differ (see DESIGN.md).
"""

from repro.models.vgg import build_vgg
from repro.models.resnet import build_resnet
from repro.models.googlenet import build_googlenet
from repro.models.shufflenet import build_shufflenet
from repro.models.zoo import MODEL_NAMES, ModelSpec, build_model, model_spec

__all__ = [
    "build_vgg",
    "build_resnet",
    "build_googlenet",
    "build_shufflenet",
    "MODEL_NAMES",
    "ModelSpec",
    "build_model",
    "model_spec",
]
