"""Experiment campaigns: training reference models and sweeping approximations.

This module provides the machinery behind the Table III benchmark:

* :func:`train_reference_model` trains one of the six architectures on a
  CIFAR-like dataset with the numpy engine;
* :class:`TrainedModelCache` stores trained parameters (and their float
  accuracy) on disk so the expensive training step runs once per
  (architecture, dataset, training-settings) combination — the cache stem
  carries a hash of the full :class:`TrainingSettings` and the stored
  metadata is validated on load, so changing any hyper-parameter retrains
  instead of silently reusing a stale model;
* :func:`accuracy_sweep` evaluates the quantized accurate baseline and every
  requested perforation value with and without the control variate,
  producing one :class:`AccuracyRecord` per cell of Table III;
* :func:`parallel_sweep` fans the (model, m, control-variate) cells of the
  sweep across worker processes, each worker building its calibrated
  :class:`~repro.simulation.inference.ApproximateExecutor` (with its
  compiled product kernels) once per model and reusing it for every cell it
  evaluates.  Results are bit-identical to the serial sweep.
* :func:`plan_sweep` generalizes the cells to arbitrary labeled
  :class:`~repro.simulation.inference.ExecutionPlan` sets (per-layer
  approximation, LUT multipliers, ...), arms each worker executor's
  plan-invariant prefix reuse with the full plan set, and orders cells with
  the prefix-aware scheduler :func:`order_plan_cells` so consecutive cells
  share the deepest possible prefix.

Shared-memory publication
-------------------------
The multi-process sweep does **not** ship a private copy of every trained
model — or of the evaluation datasets, which dwarf the weights for small
models — to every worker.  Both ride the generic
:class:`repro.core.shared_store.SharedArrayStore` (one POSIX
``multiprocessing.shared_memory`` block, memory-mapped temp file fallback):
:func:`publish_trained_models` pickles each model with its parameter arrays
replaced by persistent-id tokens, and :func:`publish_datasets` tokenizes the
train/test image and label arrays of every dataset.  Workers attach
**read-only views into the shared block**, so N workers hold one copy of
the bytes instead of N.  Workers never train — they attach to
already-trained parameters — and the engine backend used to compile product
kernels is forwarded via ``engine_backend``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.shared_store import SharedArrayStore
from repro.datasets.synthetic import Dataset
from repro.models.zoo import build_model
from repro.nn.graph import Graph
from repro.nn.optimizers import SGD
from repro.nn.serialization import load_params, save_params
from repro.nn.training import Trainer, evaluate_accuracy
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    PerforatedProduct,
    plan_fingerprint_sort_key,
)
from repro.simulation.metrics import accuracy, accuracy_loss_percent


def default_cache_dir() -> str:
    """Directory used to cache trained model parameters."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-dac21"),
    )


def experiment_dataset(
    num_classes: int,
    train_per_class: int | None = None,
    seed: int | None = None,
) -> Dataset:
    """The CIFAR-like dataset configuration used by the paper-reproduction benches.

    The generator parameters are chosen so the trained reference models land
    around 85-95 % clean accuracy — high enough to be meaningful, low enough
    that approximation-induced degradation is measurable and graded (the
    role CIFAR-10/100 play in the paper).  The 100-class variant uses fewer
    samples per class, making it the harder dataset, as in the paper.

    ``seed`` overrides the synthetic generator's default seed (the CLI
    threads its single ``--seed`` here through one
    :class:`repro.core.seeding.SeedBank` stream).  A custom-seeded
    synthetic dataset gets a ``-seed<N>`` name suffix so trained-model
    cache entries and DSE ledger tags never alias across seeds; real CIFAR
    data (when locally available) ignores the seed.
    """
    from repro.datasets.cifar import load_cifar_like
    from repro.datasets.synthetic import SyntheticCifarConfig

    if num_classes == 10:
        config = SyntheticCifarConfig(
            num_classes=10,
            train_per_class=train_per_class if train_per_class is not None else 150,
            test_per_class=40,
            noise_std=0.22,
            confusion=0.45,
            seed=10 if seed is None else int(seed),
        )
    elif num_classes == 100:
        config = SyntheticCifarConfig(
            num_classes=100,
            train_per_class=train_per_class if train_per_class is not None else 24,
            test_per_class=6,
            noise_std=0.20,
            confusion=0.45,
            seed=100 if seed is None else int(seed),
        )
    else:
        raise ValueError(f"num_classes must be 10 or 100, got {num_classes}")
    dataset = load_cifar_like(num_classes=num_classes, synthetic_config=config)
    if seed is not None and dataset.name.startswith("synthetic"):
        dataset = dataclasses.replace(dataset, name=f"{dataset.name}-seed{int(seed)}")
    return dataset


@dataclass
class TrainedModel:
    """A trained architecture together with its float test accuracy."""

    name: str
    dataset_name: str
    model: Graph
    float_accuracy: float


@dataclass(frozen=True)
class TrainingSettings:
    """Hyper-parameters of the reference training runs."""

    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay: float = 0.85
    seed: int = 0


def train_reference_model(
    model_name: str,
    dataset: Dataset,
    settings: TrainingSettings = TrainingSettings(),
    verbose: bool = False,
) -> TrainedModel:
    """Train one architecture on ``dataset`` and return it with its accuracy."""
    rng = np.random.default_rng(settings.seed)
    model = build_model(model_name, num_classes=dataset.num_classes, rng=rng)
    optimizer = SGD(
        learning_rate=settings.learning_rate,
        momentum=settings.momentum,
        weight_decay=settings.weight_decay,
    )
    trainer = Trainer(model, optimizer, rng=np.random.default_rng(settings.seed + 1))
    trainer.fit(
        dataset.train_images,
        dataset.train_labels,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        validation=(dataset.test_images, dataset.test_labels),
        lr_decay=settings.lr_decay,
        verbose=verbose,
    )
    float_acc = evaluate_accuracy(model, dataset.test_images, dataset.test_labels)
    return TrainedModel(
        name=model_name,
        dataset_name=dataset.name,
        model=model,
        float_accuracy=float_acc,
    )


def settings_fingerprint(settings: TrainingSettings) -> str:
    """Stable short hash of every :class:`TrainingSettings` field.

    Used in the cache file stem so that any hyper-parameter change (epochs,
    learning rate, decay, ...) maps to a distinct cache entry instead of
    silently aliasing an older run.
    """
    payload = json.dumps(dataclasses.asdict(settings), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


class TrainedModelCache:
    """Disk cache of trained models keyed by (model, dataset, training settings).

    The cache stem embeds :func:`settings_fingerprint`, and the stored JSON
    metadata (model, dataset, full settings) is re-validated on load; any
    mismatch retrains and overwrites the entry rather than returning a stale
    model.
    """

    def __init__(self, cache_dir: str | None = None):
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()

    def _paths(
        self, model_name: str, dataset_name: str, settings: TrainingSettings
    ) -> tuple[str, str]:
        stem = (
            f"{model_name}__{dataset_name}__seed{settings.seed}"
            f"__cfg{settings_fingerprint(settings)}"
        )
        return (
            os.path.join(self.cache_dir, f"{stem}.npz"),
            os.path.join(self.cache_dir, f"{stem}.json"),
        )

    def _load_valid_meta(
        self,
        meta_path: str,
        model_name: str,
        dataset_name: str,
        settings: TrainingSettings,
    ) -> dict | None:
        """The stored metadata, or ``None`` when it does not match the request."""
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if meta.get("model") != model_name or meta.get("dataset") != dataset_name:
            return None
        if meta.get("settings") != dataclasses.asdict(settings):
            return None
        if "float_accuracy" not in meta:
            return None
        return meta

    def load_or_train(
        self,
        model_name: str,
        dataset: Dataset,
        settings: TrainingSettings = TrainingSettings(),
        verbose: bool = False,
    ) -> TrainedModel:
        """Return a cached trained model, training and caching it if missing."""
        params_path, meta_path = self._paths(model_name, dataset.name, settings)
        if os.path.exists(params_path) and os.path.exists(meta_path):
            meta = self._load_valid_meta(meta_path, model_name, dataset.name, settings)
            if meta is not None:
                model = build_model(
                    model_name,
                    num_classes=dataset.num_classes,
                    rng=np.random.default_rng(settings.seed),
                )
                load_params(model, params_path)
                return TrainedModel(
                    name=model_name,
                    dataset_name=dataset.name,
                    model=model,
                    float_accuracy=float(meta["float_accuracy"]),
                )
        trained = train_reference_model(model_name, dataset, settings, verbose=verbose)
        os.makedirs(self.cache_dir, exist_ok=True)
        save_params(trained.model, params_path)
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "model": model_name,
                    "dataset": dataset.name,
                    "seed": settings.seed,
                    "settings": dataclasses.asdict(settings),
                    "float_accuracy": trained.float_accuracy,
                },
                handle,
                indent=2,
            )
        return trained


@dataclass(frozen=True)
class AccuracyRecord:
    """One cell of the Table III sweep."""

    model: str
    dataset: str
    m: int
    with_control_variate: bool
    baseline_accuracy: float
    approximate_accuracy: float

    @property
    def accuracy_loss(self) -> float:
        """Accuracy loss in percentage points versus the accurate design."""
        return accuracy_loss_percent(self.baseline_accuracy, self.approximate_accuracy)


@dataclass
class SweepResult:
    """All records of an accuracy sweep plus the quantized baselines."""

    records: list[AccuracyRecord] = field(default_factory=list)
    baselines: dict[tuple[str, str], float] = field(default_factory=dict)

    def lookup(self, model: str, dataset: str, m: int, with_cv: bool) -> AccuracyRecord:
        """Find the record of one (model, dataset, m, method) combination."""
        for record in self.records:
            if (
                record.model == model
                and record.dataset == dataset
                and record.m == m
                and record.with_control_variate == with_cv
            ):
                return record
        raise LookupError(f"no record for {model}/{dataset}/m={m}/cv={with_cv}")

    def average_loss(self, dataset: str, m: int, with_cv: bool) -> float:
        """Average accuracy loss over all models, as in Table III's last row."""
        losses = [
            record.accuracy_loss
            for record in self.records
            if record.dataset == dataset
            and record.m == m
            and record.with_control_variate == with_cv
        ]
        if not losses:
            raise LookupError(f"no records for {dataset}/m={m}/cv={with_cv}")
        return float(np.mean(losses))


# ----------------------------------------------------------------------
# Shared-memory publication of trained models and datasets
# ----------------------------------------------------------------------


class _ParamPickler(pickle.Pickler):
    """Pickler externalizing registered parameter arrays as persistent ids.

    Arrays registered (by object identity) in ``tokens`` are emitted as a
    token string instead of their bytes; everything else pickles normally.
    This keeps the model *structure* in the pickle while the parameter
    *data* lives once in the shared block.
    """

    def __init__(self, file, tokens: dict[int, str]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._tokens = tokens

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray):
            return self._tokens.get(id(obj))
        return None


class _ParamUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent-id tokens to views of a shared store."""

    def __init__(self, file, store: SharedArrayStore):
        super().__init__(file)
        self._store = store

    def persistent_load(self, token):
        return self._store.get(token)


class SharedTrainedModels:
    """Trained models published once for zero-copy attachment by workers.

    Produced by :func:`publish_trained_models`.  The parameter arrays of
    every model live in one :class:`~repro.core.shared_store.SharedArrayStore`
    block (POSIX shared memory, or a memory-mapped temp file as fallback —
    see :attr:`kind`); the pickled models reference them via persistent-id
    tokens.  :meth:`attach` rebuilds the :class:`TrainedModel` list with
    parameters as read-only views into the block, never copying them.  The
    publishing process must call :meth:`unlink` once all consumers are done.
    """

    def __init__(self, pickles: list[bytes], store: SharedArrayStore):
        self.pickles = pickles
        self.store = store
        self._models: list[TrainedModel] | None = None

    # Back-compat accessors mirroring the pre-SharedArrayStore attributes.
    @property
    def spec(self) -> dict[str, tuple[int, tuple, str]]:
        return self.store.spec

    @property
    def kind(self) -> str:
        return self.store.kind

    @property
    def name(self) -> str:
        return self.store.name

    @property
    def size(self) -> int:
        return self.store.size

    def __getstate__(self):
        # The per-process model cache never travels to workers.
        state = self.__dict__.copy()
        state["_models"] = None
        return state

    def attach(self) -> list[TrainedModel]:
        """Models with parameters viewing the shared block (cached per process)."""
        if self._models is None:
            self._models = [
                _ParamUnpickler(io.BytesIO(blob), self.store).load()
                for blob in self.pickles
            ]
        return self._models

    def nbytes_shared(self) -> int:
        """Total parameter bytes placed in the shared block."""
        return self.store.nbytes_shared()

    def unlink(self) -> None:
        """Release the shared block (publisher side; idempotent)."""
        self._models = None
        self.store.unlink()


def publish_trained_models(
    trained_models: Iterable[TrainedModel],
    prefer_shared_memory: bool = True,
) -> SharedTrainedModels:
    """Publish the parameter arrays of ``trained_models`` for worker attachment.

    Every array returned by each model's ``state_dict`` (weights, biases,
    batch-norm statistics) is copied once into a single shared block, and
    each :class:`TrainedModel` is pickled with those arrays externalized.
    Workers call :meth:`SharedTrainedModels.attach` to rebuild the models
    with parameters as read-only views — no per-worker copies, no re-pickling
    of parameter data.

    POSIX shared memory is used when available; when it cannot be created
    (or ``prefer_shared_memory`` is false) the block degrades to a
    memory-mapped file in the temp directory, which workers map read-only.
    """
    models = list(trained_models)
    # ``tokens`` keys arrays by id(); every keyed array is immediately
    # pinned in ``arrays`` (which outlives the pickling below), so a
    # tracked id can never be garbage-collected and recycled by a later,
    # distinct array — the aliasing that plagued state_dict implementations
    # returning fresh (otherwise unreferenced) arrays per call.
    tokens: dict[int, str] = {}
    arrays: dict[str, np.ndarray] = {}
    for index, trained in enumerate(models):
        for key, array in trained.model.state_dict().items():
            if id(array) in tokens:  # array shared between models: store once
                continue
            token = f"{index}:{key}"
            tokens[id(array)] = token
            arrays[token] = array

    store = SharedArrayStore.publish(arrays, prefer_shared_memory=prefer_shared_memory)
    pickles: list[bytes] = []
    for trained in models:
        sink = io.BytesIO()
        _ParamPickler(sink, tokens).dump(trained)
        pickles.append(sink.getvalue())
    return SharedTrainedModels(pickles, store)


#: Dataset fields published to (and rebuilt from) the shared block.
_DATASET_ARRAY_FIELDS = ("train_images", "train_labels", "test_images", "test_labels")


class SharedDatasets:
    """Evaluation datasets published once for zero-copy worker attachment.

    Produced by :func:`publish_datasets`.  The image and label arrays of
    every dataset live in one shared block; :meth:`attach` rebuilds the
    ``{name: Dataset}`` mapping with those arrays as read-only views, so a
    sweep's worker processes share one copy of the evaluation data.  The
    publishing process must call :meth:`unlink` once all consumers are done.
    """

    def __init__(self, metas: dict[str, dict], store: SharedArrayStore):
        self.metas = metas
        self.store = store
        self._datasets: dict[str, Dataset] | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_datasets"] = None
        return state

    def attach(self) -> dict[str, Dataset]:
        """Datasets with arrays viewing the shared block (cached per process)."""
        if self._datasets is None:
            self._datasets = {
                name: Dataset(
                    name=name,
                    num_classes=meta["num_classes"],
                    **{
                        field_name: self.store.get(token)
                        for field_name, token in meta["arrays"].items()
                    },
                )
                for name, meta in self.metas.items()
            }
        return self._datasets

    def nbytes_shared(self) -> int:
        """Total dataset bytes placed in the shared block."""
        return self.store.nbytes_shared()

    def unlink(self) -> None:
        """Release the shared block (publisher side; idempotent)."""
        self._datasets = None
        self.store.unlink()


def publish_datasets(
    datasets: dict[str, Dataset],
    prefer_shared_memory: bool = True,
) -> SharedDatasets:
    """Publish the train/test arrays of ``datasets`` for worker attachment.

    The evaluation images dwarf the trained weights for small models, so a
    multi-process sweep that ships datasets by pickle pays the dominant
    memory cost once per worker.  Publishing moves those bytes into one
    shared block; workers attach read-only views through
    :meth:`SharedDatasets.attach`.
    """
    arrays: dict[str, np.ndarray] = {}
    metas: dict[str, dict] = {}
    for name, dataset in datasets.items():
        field_tokens: dict[str, str] = {}
        for field_name in _DATASET_ARRAY_FIELDS:
            token = f"{name}:{field_name}"
            arrays[token] = getattr(dataset, field_name)
            field_tokens[field_name] = token
        metas[name] = {"num_classes": dataset.num_classes, "arrays": field_tokens}
    store = SharedArrayStore.publish(arrays, prefer_shared_memory=prefer_shared_memory)
    return SharedDatasets(metas, store)


#: Per-process worker state of :func:`parallel_sweep` / :func:`plan_sweep`
#: (set by the pool initializer; also used by the in-process serial path).
_SWEEP_STATE: dict = {}


def _init_sweep_worker(
    trained_models: "list[TrainedModel] | SharedTrainedModels",
    datasets: "dict[str, Dataset] | SharedDatasets",
    max_eval_images: int | None,
    calibration_images: int,
    engine_backend: str | None = None,
    plans: "Sequence[tuple[str, ExecutionPlan]] | None" = None,
    reuse_prefix: bool = True,
) -> None:
    if isinstance(trained_models, SharedTrainedModels):
        # Attach to the published parameter block: the models rebuilt here
        # hold read-only views into shared memory, not private copies.
        trained_models = trained_models.attach()
    if isinstance(datasets, SharedDatasets):
        # Same for the evaluation data — images dwarf the weights for small
        # models, so this is where most of the per-worker RSS would go.
        datasets = datasets.attach()
    _SWEEP_STATE.clear()
    _SWEEP_STATE.update(
        models=trained_models,
        datasets=datasets,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        engine_backend=engine_backend,
        plans=list(plans) if plans is not None else None,
        reuse_prefix=bool(reuse_prefix),
        executors={},
        executor_builds=0,
    )


def _sweep_executor(model_index: int) -> ApproximateExecutor:
    """Calibrated executor of one trained model, cached per worker process.

    Only the most recent model's executor is kept: cells are grouped by
    model, so this preserves reuse across a model's cells while bounding
    peak memory to one executor (kernel caches, activation buffers and
    quantized weights included) — matching the old serial sweep's profile.
    The executor's own cross-plan caches then make consecutive cells of one
    model skip re-quantizing the first MAC layer's inputs, and — for a
    :func:`plan_sweep` whose plan set is armed as the executor's plan
    context — skip re-running the whole plan-invariant layer prefix.
    """
    executor = _SWEEP_STATE["executors"].get(model_index)
    if executor is None:
        trained = _SWEEP_STATE["models"][model_index]
        dataset = _SWEEP_STATE["datasets"][trained.dataset_name]
        calib = dataset.train_images[: _SWEEP_STATE["calibration_images"]]
        reuse = _SWEEP_STATE.get("reuse_prefix", True)
        executor = ApproximateExecutor(
            trained.model,
            calib,
            engine_backend=_SWEEP_STATE["engine_backend"],
            reuse_plan_invariant_acts=reuse,
            reuse_plan_invariant_prefix=reuse,
        )
        plans = _SWEEP_STATE.get("plans")
        if plans and reuse:
            executor.set_plan_context([plan for _, plan in plans])
        _SWEEP_STATE["executors"].clear()
        _SWEEP_STATE["executors"][model_index] = executor
        _SWEEP_STATE["executor_builds"] += 1
    return executor


def _sweep_eval_arrays(trained: TrainedModel) -> tuple[np.ndarray, np.ndarray]:
    """The (possibly capped) evaluation images and labels of one model."""
    dataset = _SWEEP_STATE["datasets"][trained.dataset_name]
    test_images = dataset.test_images
    test_labels = dataset.test_labels
    max_eval = _SWEEP_STATE["max_eval_images"]
    if max_eval is not None:
        test_images = test_images[:max_eval]
        test_labels = test_labels[:max_eval]
    return test_images, test_labels


def _eval_sweep_cell(cell: tuple[int, int | None, bool]) -> tuple[int, int | None, bool, float]:
    """Evaluate one (model, m, cv) cell; ``m is None`` is the accurate baseline."""
    model_index, m, with_cv = cell
    trained = _SWEEP_STATE["models"][model_index]
    test_images, test_labels = _sweep_eval_arrays(trained)
    executor = _sweep_executor(model_index)
    if m is None:
        plan = ExecutionPlan.uniform(AccurateProduct())
    else:
        plan = ExecutionPlan.uniform(PerforatedProduct(m, use_control_variate=with_cv))
    acc = accuracy(executor.predict(test_images, plan), test_labels)
    return model_index, m, with_cv, acc


def _eval_plan_cell(cell: tuple[int, int]) -> tuple[int, int, float]:
    """Evaluate one (model, plan) cell of a :func:`plan_sweep`."""
    model_index, plan_index = cell
    trained = _SWEEP_STATE["models"][model_index]
    test_images, test_labels = _sweep_eval_arrays(trained)
    executor = _sweep_executor(model_index)
    _, plan = _SWEEP_STATE["plans"][plan_index]
    acc = accuracy(executor.predict(test_images, plan), test_labels)
    return model_index, plan_index, acc


def _assemble_sweep_result(
    models: list[TrainedModel],
    perforations: Sequence[int],
    cell_results: Iterable[tuple[int, int | None, bool, float]],
) -> SweepResult:
    baselines: dict[int, float] = {}
    approx: dict[tuple[int, int, bool], float] = {}
    for model_index, m, with_cv, acc in cell_results:
        if m is None:
            baselines[model_index] = acc
        else:
            approx[(model_index, m, with_cv)] = acc
    result = SweepResult()
    for index, trained in enumerate(models):
        baseline_acc = baselines[index]
        result.baselines[(trained.name, trained.dataset_name)] = baseline_acc
        for m in perforations:
            for with_cv in (True, False):
                result.records.append(
                    AccuracyRecord(
                        model=trained.name,
                        dataset=trained.dataset_name,
                        m=m,
                        with_control_variate=with_cv,
                        baseline_accuracy=baseline_acc,
                        approximate_accuracy=approx[(index, m, with_cv)],
                    )
                )
    return result


def _sweep_cells(
    models: list[TrainedModel], perforations: Sequence[int]
) -> list[tuple[int, int | None, bool]]:
    cells: list[tuple[int, int | None, bool]] = []
    for index in range(len(models)):
        cells.append((index, None, False))
        for m in perforations:
            for with_cv in (True, False):
                cells.append((index, m, with_cv))
    return cells


@dataclass(frozen=True)
class PlanAccuracyRecord:
    """One cell of a :func:`plan_sweep`: one model evaluated under one plan."""

    model: str
    dataset: str
    plan_label: str
    accuracy: float


def order_plan_cells(
    models: list[TrainedModel], plans: Sequence[tuple[str, ExecutionPlan]]
) -> list[tuple[int, int]]:
    """Prefix-aware cell schedule of a :func:`plan_sweep`.

    Cells are grouped by model (one calibrated executor per model is kept
    per worker), and within one model the plans are ordered
    lexicographically by their per-MAC-layer fingerprint sequence.  Plans
    sharing a layer prefix therefore become *adjacent*, which maximizes the
    executor's prefix-checkpoint and activation-code cache hits when cells
    run in schedule order.
    """
    cells: list[tuple[int, int]] = []
    for model_index, trained in enumerate(models):
        mac_names = [node.name for node in trained.model.conv_dense_nodes()]
        # Same key as the executor's checkpoint-depth computation, so
        # schedule adjacency matches the checkpoint structure exactly.
        sort_keys = {
            plan_index: plan_fingerprint_sort_key(plan.fingerprints(mac_names))
            for plan_index, (_, plan) in enumerate(plans)
        }
        ordered = sorted(range(len(plans)), key=sort_keys.__getitem__)
        cells.extend((model_index, plan_index) for plan_index in ordered)
    return cells


def _run_sweep(
    models: list[TrainedModel],
    datasets: "dict[str, Dataset]",
    cells: list,
    eval_cell,
    max_eval_images: int | None,
    calibration_images: int,
    max_workers: int | None,
    engine_backend: str | None,
    use_shared_memory: bool | None,
    plans: "Sequence[tuple[str, ExecutionPlan]] | None" = None,
    reuse_prefix: bool = True,
    contiguous_chunks: bool = False,
) -> list:
    """Shared orchestration of :func:`parallel_sweep` and :func:`plan_sweep`.

    Publishes models (and datasets) through shared memory when sharing is
    on, dispatches ``cells`` to ``eval_cell`` either in-process (serial) or
    across a worker pool, and always unlinks the shared blocks.
    ``contiguous_chunks`` hands each worker one contiguous block of the
    schedule, preserving prefix-cache adjacency arranged by the scheduler.
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    serial = max_workers <= 1 or len(cells) <= 1
    share = (not serial) if use_shared_memory is None else bool(use_shared_memory)
    model_store = dataset_store = None
    try:
        # Publish inside the try: if the second publish fails, the finally
        # still unlinks the first block instead of leaking it.
        if share:
            model_store = publish_trained_models(models)
            dataset_store = publish_datasets(datasets)
        initargs = (
            model_store if model_store is not None else models,
            dataset_store if dataset_store is not None else datasets,
            max_eval_images,
            calibration_images,
            engine_backend,
            plans,
            reuse_prefix,
        )
        if serial:
            _init_sweep_worker(*initargs)
            try:
                return [eval_cell(cell) for cell in cells]
            finally:
                _SWEEP_STATE.clear()
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=context,
            initializer=_init_sweep_worker,
            initargs=initargs,
        ) as pool:
            chunksize = -(-len(cells) // max_workers) if contiguous_chunks else 1
            return list(pool.map(eval_cell, cells, chunksize=chunksize))
    finally:
        if model_store is not None:
            model_store.unlink()
        if dataset_store is not None:
            dataset_store.unlink()


def plan_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: "dict[str, Dataset]",
    plans: Sequence[tuple[str, ExecutionPlan]],
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    max_workers: int | None = None,
    engine_backend: str | None = None,
    use_shared_memory: bool | None = None,
    reuse_prefix: bool = True,
) -> list[PlanAccuracyRecord]:
    """Evaluate every trained model under every labeled execution plan.

    The generalization of :func:`parallel_sweep` behind per-layer
    approximation studies: each ``(label, plan)`` pair is one cell per
    model, workers arm their executors' plan-invariant prefix reuse with
    the full plan set, cells are ordered by :func:`order_plan_cells` so
    consecutive cells share the deepest possible prefix, and — like
    :func:`parallel_sweep` — trained parameters and datasets are published
    once through shared memory instead of being copied per worker.
    Results are returned in ``(model, plan)`` input order and are
    bit-identical to evaluating each plan on a fresh executor with reuse
    disabled.

    Parameters not shared with :func:`parallel_sweep`:

    plans:
        Labeled :class:`~repro.simulation.inference.ExecutionPlan` objects;
        labels key the returned records.
    reuse_prefix:
        Arm cross-plan reuse (activation codes and the plan-invariant
        layer prefix) in every worker executor.  Disable to force full
        re-execution per cell — the escape hatch the CLI exposes as
        ``--no-prefix-reuse``.
    """
    models = list(trained_models)
    plans = list(plans)
    if not plans:
        raise ValueError("plan_sweep requires at least one plan")
    cells = order_plan_cells(models, plans)
    results = _run_sweep(
        models,
        datasets,
        cells,
        _eval_plan_cell,
        max_eval_images,
        calibration_images,
        max_workers,
        engine_backend,
        use_shared_memory,
        plans=plans,
        reuse_prefix=reuse_prefix,
        contiguous_chunks=True,
    )
    by_cell = {(model_index, plan_index): acc for model_index, plan_index, acc in results}
    return [
        PlanAccuracyRecord(
            model=trained.name,
            dataset=trained.dataset_name,
            plan_label=plans[plan_index][0],
            accuracy=by_cell[(model_index, plan_index)],
        )
        for model_index, trained in enumerate(models)
        for plan_index in range(len(plans))
    ]


def parallel_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    max_workers: int | None = None,
    engine_backend: str | None = None,
    use_shared_memory: bool | None = None,
    reuse_prefix: bool = True,
) -> SweepResult:
    """:func:`accuracy_sweep` fanned across worker processes.

    Every (model, m, control-variate) cell — plus one accurate-baseline cell
    per model — is an independent task.  Workers cache one calibrated
    executor per model, so a worker that receives several cells of the same
    model pays calibration and kernel compilation once.  The result is
    bit-identical to the serial sweep; ``max_workers=1`` (or a single CPU)
    degenerates to the in-process serial path with no multiprocessing
    overhead.

    Parameters
    ----------
    trained_models, datasets, perforations, max_eval_images, calibration_images:
        As in :func:`accuracy_sweep`.
    max_workers:
        Worker process count; defaults to ``os.cpu_count()``.
    engine_backend:
        Engine backend name compiled kernels should use in every worker
        (see :mod:`repro.core.backends`); ``None`` uses the default.
    use_shared_memory:
        Publish trained-model parameters (:func:`publish_trained_models`)
        and the evaluation datasets (:func:`publish_datasets`) once so
        workers attach read-only views instead of receiving per-process
        copies.  ``None`` (default) enables it exactly when worker
        processes are used; ``True`` forces the publish/attach round trip
        even on the serial path (useful for testing), ``False`` ships
        models and datasets directly.
    reuse_prefix:
        Arm the worker executors' cross-plan reuse (plan-invariant
        activation codes and layer prefix).  Disable (the CLI's
        ``--no-prefix-reuse``) to force full re-execution per cell.
    """
    models = list(trained_models)
    cells = _sweep_cells(models, perforations)
    results = _run_sweep(
        models,
        datasets,
        cells,
        _eval_sweep_cell,
        max_eval_images,
        calibration_images,
        max_workers,
        engine_backend,
        use_shared_memory,
        reuse_prefix=reuse_prefix,
    )
    return _assemble_sweep_result(models, perforations, results)


def accuracy_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    engine_backend: str | None = None,
    reuse_prefix: bool = True,
) -> SweepResult:
    """Evaluate every trained model under every approximation mode (serially).

    Parameters
    ----------
    trained_models:
        Models produced by :func:`train_reference_model` /
        :class:`TrainedModelCache`.
    datasets:
        Mapping from dataset name to dataset (must contain every
        ``TrainedModel.dataset_name``).
    perforations:
        The perforation values ``m`` to sweep (the paper uses 1..3).
    max_eval_images:
        Optional cap on the number of test images (keeps CI-style runs fast).
    calibration_images:
        Number of training images used for activation calibration.

    See :func:`parallel_sweep` for the multi-process variant; both produce
    identical results.
    """
    return parallel_sweep(
        trained_models,
        datasets,
        perforations=perforations,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        max_workers=1,
        engine_backend=engine_backend,
        reuse_prefix=reuse_prefix,
    )
