"""Experiment campaigns: training reference models and sweeping approximations.

This module provides the machinery behind the Table III benchmark:

* :func:`train_reference_model` trains one of the six architectures on a
  CIFAR-like dataset with the numpy engine;
* :class:`TrainedModelCache` stores trained parameters (and their float
  accuracy) on disk so the expensive training step runs once per
  (architecture, dataset, training-settings) combination — the cache stem
  carries a hash of the full :class:`TrainingSettings` and the stored
  metadata is validated on load, so changing any hyper-parameter retrains
  instead of silently reusing a stale model;
* :func:`accuracy_sweep` evaluates the quantized accurate baseline and every
  requested perforation value with and without the control variate,
  producing one :class:`AccuracyRecord` per cell of Table III;
* :func:`parallel_sweep` fans the (model, m, control-variate) cells of the
  sweep across worker processes, each worker building its calibrated
  :class:`~repro.simulation.inference.ApproximateExecutor` (with its
  compiled product kernels) once per model and reusing it for every cell it
  evaluates.  Results are bit-identical to the serial sweep.

Shared-memory model publication
-------------------------------
The multi-process sweep does **not** ship a private copy of every trained
model to every worker.  :func:`publish_trained_models` writes all parameter
arrays once into a single ``multiprocessing.shared_memory`` block (falling
back to a memory-mapped temp file when POSIX shared memory is unavailable)
and pickles each model with the arrays replaced by persistent-id tokens;
workers unpickle the models with the tokens resolved to **read-only views
into the shared block**, so N workers hold one copy of the parameters
instead of N.  Workers never train — they attach to already-trained
parameters — and the engine backend used to compile product kernels is
forwarded via ``engine_backend``.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import io
import json
import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

try:  # pragma: no cover - part of the stdlib since 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    _shared_memory = None

from repro.datasets.synthetic import Dataset
from repro.models.zoo import build_model
from repro.nn.graph import Graph
from repro.nn.optimizers import SGD
from repro.nn.serialization import load_params, save_params
from repro.nn.training import Trainer, evaluate_accuracy
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    PerforatedProduct,
)
from repro.simulation.metrics import accuracy, accuracy_loss_percent


def default_cache_dir() -> str:
    """Directory used to cache trained model parameters."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-dac21"),
    )


def experiment_dataset(num_classes: int, train_per_class: int | None = None) -> Dataset:
    """The CIFAR-like dataset configuration used by the paper-reproduction benches.

    The generator parameters are chosen so the trained reference models land
    around 85-95 % clean accuracy — high enough to be meaningful, low enough
    that approximation-induced degradation is measurable and graded (the
    role CIFAR-10/100 play in the paper).  The 100-class variant uses fewer
    samples per class, making it the harder dataset, as in the paper.
    """
    from repro.datasets.cifar import load_cifar_like
    from repro.datasets.synthetic import SyntheticCifarConfig

    if num_classes == 10:
        config = SyntheticCifarConfig(
            num_classes=10,
            train_per_class=train_per_class if train_per_class is not None else 150,
            test_per_class=40,
            noise_std=0.22,
            confusion=0.45,
            seed=10,
        )
    elif num_classes == 100:
        config = SyntheticCifarConfig(
            num_classes=100,
            train_per_class=train_per_class if train_per_class is not None else 24,
            test_per_class=6,
            noise_std=0.20,
            confusion=0.45,
            seed=100,
        )
    else:
        raise ValueError(f"num_classes must be 10 or 100, got {num_classes}")
    return load_cifar_like(num_classes=num_classes, synthetic_config=config)


@dataclass
class TrainedModel:
    """A trained architecture together with its float test accuracy."""

    name: str
    dataset_name: str
    model: Graph
    float_accuracy: float


@dataclass(frozen=True)
class TrainingSettings:
    """Hyper-parameters of the reference training runs."""

    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay: float = 0.85
    seed: int = 0


def train_reference_model(
    model_name: str,
    dataset: Dataset,
    settings: TrainingSettings = TrainingSettings(),
    verbose: bool = False,
) -> TrainedModel:
    """Train one architecture on ``dataset`` and return it with its accuracy."""
    rng = np.random.default_rng(settings.seed)
    model = build_model(model_name, num_classes=dataset.num_classes, rng=rng)
    optimizer = SGD(
        learning_rate=settings.learning_rate,
        momentum=settings.momentum,
        weight_decay=settings.weight_decay,
    )
    trainer = Trainer(model, optimizer, rng=np.random.default_rng(settings.seed + 1))
    trainer.fit(
        dataset.train_images,
        dataset.train_labels,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        validation=(dataset.test_images, dataset.test_labels),
        lr_decay=settings.lr_decay,
        verbose=verbose,
    )
    float_acc = evaluate_accuracy(model, dataset.test_images, dataset.test_labels)
    return TrainedModel(
        name=model_name,
        dataset_name=dataset.name,
        model=model,
        float_accuracy=float_acc,
    )


def settings_fingerprint(settings: TrainingSettings) -> str:
    """Stable short hash of every :class:`TrainingSettings` field.

    Used in the cache file stem so that any hyper-parameter change (epochs,
    learning rate, decay, ...) maps to a distinct cache entry instead of
    silently aliasing an older run.
    """
    payload = json.dumps(dataclasses.asdict(settings), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


class TrainedModelCache:
    """Disk cache of trained models keyed by (model, dataset, training settings).

    The cache stem embeds :func:`settings_fingerprint`, and the stored JSON
    metadata (model, dataset, full settings) is re-validated on load; any
    mismatch retrains and overwrites the entry rather than returning a stale
    model.
    """

    def __init__(self, cache_dir: str | None = None):
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()

    def _paths(
        self, model_name: str, dataset_name: str, settings: TrainingSettings
    ) -> tuple[str, str]:
        stem = (
            f"{model_name}__{dataset_name}__seed{settings.seed}"
            f"__cfg{settings_fingerprint(settings)}"
        )
        return (
            os.path.join(self.cache_dir, f"{stem}.npz"),
            os.path.join(self.cache_dir, f"{stem}.json"),
        )

    def _load_valid_meta(
        self,
        meta_path: str,
        model_name: str,
        dataset_name: str,
        settings: TrainingSettings,
    ) -> dict | None:
        """The stored metadata, or ``None`` when it does not match the request."""
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if meta.get("model") != model_name or meta.get("dataset") != dataset_name:
            return None
        if meta.get("settings") != dataclasses.asdict(settings):
            return None
        if "float_accuracy" not in meta:
            return None
        return meta

    def load_or_train(
        self,
        model_name: str,
        dataset: Dataset,
        settings: TrainingSettings = TrainingSettings(),
        verbose: bool = False,
    ) -> TrainedModel:
        """Return a cached trained model, training and caching it if missing."""
        params_path, meta_path = self._paths(model_name, dataset.name, settings)
        if os.path.exists(params_path) and os.path.exists(meta_path):
            meta = self._load_valid_meta(meta_path, model_name, dataset.name, settings)
            if meta is not None:
                model = build_model(
                    model_name,
                    num_classes=dataset.num_classes,
                    rng=np.random.default_rng(settings.seed),
                )
                load_params(model, params_path)
                return TrainedModel(
                    name=model_name,
                    dataset_name=dataset.name,
                    model=model,
                    float_accuracy=float(meta["float_accuracy"]),
                )
        trained = train_reference_model(model_name, dataset, settings, verbose=verbose)
        os.makedirs(self.cache_dir, exist_ok=True)
        save_params(trained.model, params_path)
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "model": model_name,
                    "dataset": dataset.name,
                    "seed": settings.seed,
                    "settings": dataclasses.asdict(settings),
                    "float_accuracy": trained.float_accuracy,
                },
                handle,
                indent=2,
            )
        return trained


@dataclass(frozen=True)
class AccuracyRecord:
    """One cell of the Table III sweep."""

    model: str
    dataset: str
    m: int
    with_control_variate: bool
    baseline_accuracy: float
    approximate_accuracy: float

    @property
    def accuracy_loss(self) -> float:
        """Accuracy loss in percentage points versus the accurate design."""
        return accuracy_loss_percent(self.baseline_accuracy, self.approximate_accuracy)


@dataclass
class SweepResult:
    """All records of an accuracy sweep plus the quantized baselines."""

    records: list[AccuracyRecord] = field(default_factory=list)
    baselines: dict[tuple[str, str], float] = field(default_factory=dict)

    def lookup(self, model: str, dataset: str, m: int, with_cv: bool) -> AccuracyRecord:
        """Find the record of one (model, dataset, m, method) combination."""
        for record in self.records:
            if (
                record.model == model
                and record.dataset == dataset
                and record.m == m
                and record.with_control_variate == with_cv
            ):
                return record
        raise LookupError(f"no record for {model}/{dataset}/m={m}/cv={with_cv}")

    def average_loss(self, dataset: str, m: int, with_cv: bool) -> float:
        """Average accuracy loss over all models, as in Table III's last row."""
        losses = [
            record.accuracy_loss
            for record in self.records
            if record.dataset == dataset
            and record.m == m
            and record.with_control_variate == with_cv
        ]
        if not losses:
            raise LookupError(f"no records for {dataset}/m={m}/cv={with_cv}")
        return float(np.mean(losses))


# ----------------------------------------------------------------------
# Shared-memory publication of trained models
# ----------------------------------------------------------------------


class _ParamPickler(pickle.Pickler):
    """Pickler externalizing registered parameter arrays as persistent ids.

    Arrays registered (by object identity) in ``tokens`` are emitted as a
    token string instead of their bytes; everything else pickles normally.
    This keeps the model *structure* in the pickle while the parameter
    *data* lives once in the shared block.
    """

    def __init__(self, file, tokens: dict[int, str]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._tokens = tokens

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray):
            return self._tokens.get(id(obj))
        return None


class _ParamUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent-id tokens to views of a shared buffer."""

    def __init__(self, file, spec: dict[str, tuple[int, tuple, str]], buf: np.ndarray):
        super().__init__(file)
        self._spec = spec
        self._buf = buf

    def persistent_load(self, token):
        offset, shape, dtype_str = self._spec[token]
        dtype = np.dtype(dtype_str)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        view = self._buf[offset : offset + nbytes].view(dtype).reshape(shape)
        # Workers only read parameters; an accidental in-place write would
        # corrupt every sibling worker, so the shared views are frozen.
        view.flags.writeable = False
        return view


#: Byte alignment of each array inside the shared block (covers every dtype).
_PARAM_ALIGN = 64


class SharedTrainedModels:
    """Trained models published once for zero-copy attachment by workers.

    Produced by :func:`publish_trained_models`.  The parameter arrays of
    every model live in one shared block (POSIX shared memory, or a
    memory-mapped temp file as fallback — see :attr:`kind`); the pickled
    models reference them via persistent-id tokens.  :meth:`attach` rebuilds
    the :class:`TrainedModel` list with parameters as read-only views into
    the block, never copying them.  The publishing process must call
    :meth:`unlink` once all consumers are done.
    """

    def __init__(
        self,
        pickles: list[bytes],
        spec: dict[str, tuple[int, tuple, str]],
        kind: str,
        name: str,
        size: int,
    ):
        self.pickles = pickles
        self.spec = spec
        self.kind = kind  # "shm" | "memmap"
        self.name = name  # shm segment name / memmap file path
        self.size = size
        self._handle = None  # parent-side SharedMemory keeping the mapping
        self._buf: np.ndarray | None = None
        self._models: list[TrainedModel] | None = None

    def __getstate__(self):
        # Process-local handles never travel to workers (spawn start method).
        state = self.__dict__.copy()
        state["_handle"] = None
        state["_buf"] = None
        state["_models"] = None
        return state

    # -- buffer management ------------------------------------------------
    def _attach_buf(self, writable: bool = False) -> np.ndarray:
        if self._buf is None:
            if self.kind == "shm":
                # The publisher already holds the creating handle: reuse it
                # instead of opening a second mapping of the same segment
                # (which would orphan the creator handle to GC-time close).
                if self._handle is None:
                    self._handle = _shared_memory.SharedMemory(name=self.name)
                self._buf = np.frombuffer(self._handle.buf, dtype=np.uint8)
            else:
                mode = "r+" if writable else "r"
                self._buf = np.memmap(self.name, dtype=np.uint8, mode=mode)
        return self._buf

    def attach(self) -> list[TrainedModel]:
        """Models with parameters viewing the shared block (cached per process)."""
        if self._models is None:
            buf = self._attach_buf()
            self._models = [
                _ParamUnpickler(io.BytesIO(blob), self.spec, buf).load()
                for blob in self.pickles
            ]
        return self._models

    def nbytes_shared(self) -> int:
        """Total parameter bytes placed in the shared block."""
        return sum(
            int(np.prod(shape, dtype=np.int64)) * np.dtype(dt).itemsize
            for _, shape, dt in self.spec.values()
        )

    def unlink(self) -> None:
        """Release the shared block (publisher side; idempotent)."""
        # Views into the block must be dropped before the mapping can close;
        # model graphs contain reference cycles, so force a collection to
        # release any attached views deterministically.
        self._models = None
        self._buf = None
        gc.collect()
        if self.kind == "shm":
            handle, self._handle = self._handle, None
            try:
                if handle is None:
                    handle = _shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError:
                return
            try:
                handle.close()
            except BufferError:  # pragma: no cover - a view outlived us
                pass
            try:
                handle.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        else:
            try:
                os.unlink(self.name)
            except FileNotFoundError:  # pragma: no cover - already removed
                pass


def publish_trained_models(
    trained_models: Iterable[TrainedModel],
    prefer_shared_memory: bool = True,
) -> SharedTrainedModels:
    """Publish the parameter arrays of ``trained_models`` for worker attachment.

    Every array returned by each model's ``state_dict`` (weights, biases,
    batch-norm statistics) is copied once into a single shared block, and
    each :class:`TrainedModel` is pickled with those arrays externalized.
    Workers call :meth:`SharedTrainedModels.attach` to rebuild the models
    with parameters as read-only views — no per-worker copies, no re-pickling
    of parameter data.

    POSIX shared memory is used when available; when it cannot be created
    (or ``prefer_shared_memory`` is false) the block degrades to a
    memory-mapped file in the temp directory, which workers map read-only.
    """
    models = list(trained_models)
    tokens: dict[int, str] = {}
    entries: list[tuple[str, np.ndarray]] = []
    for index, trained in enumerate(models):
        for key, array in trained.model.state_dict().items():
            if id(array) in tokens:  # array shared between models: store once
                continue
            token = f"{index}:{key}"
            tokens[id(array)] = token
            entries.append((token, np.ascontiguousarray(array)))

    spec: dict[str, tuple[int, tuple, str]] = {}
    offset = 0
    for token, array in entries:
        spec[token] = (offset, tuple(array.shape), array.dtype.str)
        offset += -(-array.nbytes // _PARAM_ALIGN) * _PARAM_ALIGN
    total = max(offset, 1)

    kind, name, handle = "memmap", "", None
    if prefer_shared_memory and _shared_memory is not None:
        try:
            handle = _shared_memory.SharedMemory(create=True, size=total)
            kind, name = "shm", handle.name
        except OSError:  # pragma: no cover - /dev/shm unavailable
            handle = None
    if handle is None:
        fd, name = tempfile.mkstemp(prefix="repro-sweep-params-", suffix=".bin")
        with os.fdopen(fd, "wb") as out:
            out.truncate(total)

    store = SharedTrainedModels([], spec, kind, name, total)
    store._handle = handle
    buf = store._attach_buf(writable=True)
    for token, array in entries:
        off, shape, dtype_str = spec[token]
        buf[off : off + array.nbytes].view(array.dtype).reshape(shape)[...] = array
    if kind == "memmap":
        buf.flush()

    for index, trained in enumerate(models):
        sink = io.BytesIO()
        _ParamPickler(sink, tokens).dump(trained)
        store.pickles.append(sink.getvalue())
    # The publisher's own attach() must also see the shared views (serial
    # forced-shared path); drop the writable buffer so attach re-maps.
    if kind == "memmap":
        store._buf = None
    return store


#: Per-process worker state of :func:`parallel_sweep` (set by the pool
#: initializer; also used by the in-process serial path).
_SWEEP_STATE: dict = {}


def _init_sweep_worker(
    trained_models: "list[TrainedModel] | SharedTrainedModels",
    datasets: dict[str, Dataset],
    max_eval_images: int | None,
    calibration_images: int,
    engine_backend: str | None = None,
) -> None:
    if isinstance(trained_models, SharedTrainedModels):
        # Attach to the published parameter block: the models rebuilt here
        # hold read-only views into shared memory, not private copies.
        trained_models = trained_models.attach()
    _SWEEP_STATE.clear()
    _SWEEP_STATE.update(
        models=trained_models,
        datasets=datasets,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        engine_backend=engine_backend,
        executors={},
        executor_builds=0,
    )


def _sweep_executor(model_index: int) -> ApproximateExecutor:
    """Calibrated executor of one trained model, cached per worker process.

    Only the most recent model's executor is kept: cells are grouped by
    model, so this preserves reuse across a model's cells while bounding
    peak memory to one executor (kernel caches, activation buffers and
    quantized weights included) — matching the old serial sweep's profile.
    The executor's own cross-plan activation cache then makes consecutive
    cells of one model skip re-quantizing the first MAC layer's inputs.
    """
    executor = _SWEEP_STATE["executors"].get(model_index)
    if executor is None:
        trained = _SWEEP_STATE["models"][model_index]
        dataset = _SWEEP_STATE["datasets"][trained.dataset_name]
        calib = dataset.train_images[: _SWEEP_STATE["calibration_images"]]
        executor = ApproximateExecutor(
            trained.model, calib, engine_backend=_SWEEP_STATE["engine_backend"]
        )
        _SWEEP_STATE["executors"].clear()
        _SWEEP_STATE["executors"][model_index] = executor
        _SWEEP_STATE["executor_builds"] += 1
    return executor


def _eval_sweep_cell(cell: tuple[int, int | None, bool]) -> tuple[int, int | None, bool, float]:
    """Evaluate one (model, m, cv) cell; ``m is None`` is the accurate baseline."""
    model_index, m, with_cv = cell
    trained = _SWEEP_STATE["models"][model_index]
    dataset = _SWEEP_STATE["datasets"][trained.dataset_name]
    test_images = dataset.test_images
    test_labels = dataset.test_labels
    max_eval = _SWEEP_STATE["max_eval_images"]
    if max_eval is not None:
        test_images = test_images[:max_eval]
        test_labels = test_labels[:max_eval]
    executor = _sweep_executor(model_index)
    if m is None:
        plan = ExecutionPlan.uniform(AccurateProduct())
    else:
        plan = ExecutionPlan.uniform(PerforatedProduct(m, use_control_variate=with_cv))
    acc = accuracy(executor.predict(test_images, plan), test_labels)
    return model_index, m, with_cv, acc


def _assemble_sweep_result(
    models: list[TrainedModel],
    perforations: Sequence[int],
    cell_results: Iterable[tuple[int, int | None, bool, float]],
) -> SweepResult:
    baselines: dict[int, float] = {}
    approx: dict[tuple[int, int, bool], float] = {}
    for model_index, m, with_cv, acc in cell_results:
        if m is None:
            baselines[model_index] = acc
        else:
            approx[(model_index, m, with_cv)] = acc
    result = SweepResult()
    for index, trained in enumerate(models):
        baseline_acc = baselines[index]
        result.baselines[(trained.name, trained.dataset_name)] = baseline_acc
        for m in perforations:
            for with_cv in (True, False):
                result.records.append(
                    AccuracyRecord(
                        model=trained.name,
                        dataset=trained.dataset_name,
                        m=m,
                        with_control_variate=with_cv,
                        baseline_accuracy=baseline_acc,
                        approximate_accuracy=approx[(index, m, with_cv)],
                    )
                )
    return result


def _sweep_cells(
    models: list[TrainedModel], perforations: Sequence[int]
) -> list[tuple[int, int | None, bool]]:
    cells: list[tuple[int, int | None, bool]] = []
    for index in range(len(models)):
        cells.append((index, None, False))
        for m in perforations:
            for with_cv in (True, False):
                cells.append((index, m, with_cv))
    return cells


def parallel_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    max_workers: int | None = None,
    engine_backend: str | None = None,
    use_shared_memory: bool | None = None,
) -> SweepResult:
    """:func:`accuracy_sweep` fanned across worker processes.

    Every (model, m, control-variate) cell — plus one accurate-baseline cell
    per model — is an independent task.  Workers cache one calibrated
    executor per model, so a worker that receives several cells of the same
    model pays calibration and kernel compilation once.  The result is
    bit-identical to the serial sweep; ``max_workers=1`` (or a single CPU)
    degenerates to the in-process serial path with no multiprocessing
    overhead.

    Parameters
    ----------
    trained_models, datasets, perforations, max_eval_images, calibration_images:
        As in :func:`accuracy_sweep`.
    max_workers:
        Worker process count; defaults to ``os.cpu_count()``.
    engine_backend:
        Engine backend name compiled kernels should use in every worker
        (see :mod:`repro.core.backends`); ``None`` uses the default.
    use_shared_memory:
        Publish trained-model parameters once via
        :func:`publish_trained_models` so workers attach read-only views
        instead of receiving per-process copies.  ``None`` (default)
        enables it exactly when worker processes are used; ``True`` forces
        the publish/attach round trip even on the serial path (useful for
        testing), ``False`` ships the models directly.
    """
    models = list(trained_models)
    cells = _sweep_cells(models, perforations)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    serial = max_workers <= 1 or len(cells) <= 1
    share = (not serial) if use_shared_memory is None else bool(use_shared_memory)
    store = publish_trained_models(models) if share else None
    payload: "list[TrainedModel] | SharedTrainedModels" = (
        store if store is not None else models
    )
    try:
        if serial:
            _init_sweep_worker(
                payload, datasets, max_eval_images, calibration_images, engine_backend
            )
            try:
                results = [_eval_sweep_cell(cell) for cell in cells]
            finally:
                _SWEEP_STATE.clear()
        else:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context("fork" if "fork" in methods else None)
            with ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=context,
                initializer=_init_sweep_worker,
                initargs=(
                    payload,
                    datasets,
                    max_eval_images,
                    calibration_images,
                    engine_backend,
                ),
            ) as pool:
                results = list(pool.map(_eval_sweep_cell, cells))
    finally:
        if store is not None:
            store.unlink()
    return _assemble_sweep_result(models, perforations, results)


def accuracy_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    engine_backend: str | None = None,
) -> SweepResult:
    """Evaluate every trained model under every approximation mode (serially).

    Parameters
    ----------
    trained_models:
        Models produced by :func:`train_reference_model` /
        :class:`TrainedModelCache`.
    datasets:
        Mapping from dataset name to dataset (must contain every
        ``TrainedModel.dataset_name``).
    perforations:
        The perforation values ``m`` to sweep (the paper uses 1..3).
    max_eval_images:
        Optional cap on the number of test images (keeps CI-style runs fast).
    calibration_images:
        Number of training images used for activation calibration.

    See :func:`parallel_sweep` for the multi-process variant; both produce
    identical results.
    """
    return parallel_sweep(
        trained_models,
        datasets,
        perforations=perforations,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        max_workers=1,
        engine_backend=engine_backend,
    )
