"""Experiment campaigns: training reference models and sweeping approximations.

This module provides the machinery behind the Table III benchmark:

* :func:`train_reference_model` trains one of the six architectures on a
  CIFAR-like dataset with the numpy engine;
* :class:`TrainedModelCache` stores trained parameters (and their float
  accuracy) on disk so the expensive training step runs once per
  (architecture, dataset, training-settings) combination — the cache stem
  carries a hash of the full :class:`TrainingSettings` and the stored
  metadata is validated on load, so changing any hyper-parameter retrains
  instead of silently reusing a stale model;
* :func:`accuracy_sweep` evaluates the quantized accurate baseline and every
  requested perforation value with and without the control variate,
  producing one :class:`AccuracyRecord` per cell of Table III;
* :func:`parallel_sweep` fans the (model, m, control-variate) cells of the
  sweep across worker processes, each worker building its calibrated
  :class:`~repro.simulation.inference.ApproximateExecutor` (with its
  compiled product kernels) once per model and reusing it for every cell it
  evaluates.  Results are bit-identical to the serial sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.models.zoo import build_model
from repro.nn.graph import Graph
from repro.nn.optimizers import SGD
from repro.nn.serialization import load_params, save_params
from repro.nn.training import Trainer, evaluate_accuracy
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    PerforatedProduct,
)
from repro.simulation.metrics import accuracy, accuracy_loss_percent


def default_cache_dir() -> str:
    """Directory used to cache trained model parameters."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-dac21"),
    )


def experiment_dataset(num_classes: int, train_per_class: int | None = None) -> Dataset:
    """The CIFAR-like dataset configuration used by the paper-reproduction benches.

    The generator parameters are chosen so the trained reference models land
    around 85-95 % clean accuracy — high enough to be meaningful, low enough
    that approximation-induced degradation is measurable and graded (the
    role CIFAR-10/100 play in the paper).  The 100-class variant uses fewer
    samples per class, making it the harder dataset, as in the paper.
    """
    from repro.datasets.cifar import load_cifar_like
    from repro.datasets.synthetic import SyntheticCifarConfig

    if num_classes == 10:
        config = SyntheticCifarConfig(
            num_classes=10,
            train_per_class=train_per_class if train_per_class is not None else 150,
            test_per_class=40,
            noise_std=0.22,
            confusion=0.45,
            seed=10,
        )
    elif num_classes == 100:
        config = SyntheticCifarConfig(
            num_classes=100,
            train_per_class=train_per_class if train_per_class is not None else 24,
            test_per_class=6,
            noise_std=0.20,
            confusion=0.45,
            seed=100,
        )
    else:
        raise ValueError(f"num_classes must be 10 or 100, got {num_classes}")
    return load_cifar_like(num_classes=num_classes, synthetic_config=config)


@dataclass
class TrainedModel:
    """A trained architecture together with its float test accuracy."""

    name: str
    dataset_name: str
    model: Graph
    float_accuracy: float


@dataclass(frozen=True)
class TrainingSettings:
    """Hyper-parameters of the reference training runs."""

    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay: float = 0.85
    seed: int = 0


def train_reference_model(
    model_name: str,
    dataset: Dataset,
    settings: TrainingSettings = TrainingSettings(),
    verbose: bool = False,
) -> TrainedModel:
    """Train one architecture on ``dataset`` and return it with its accuracy."""
    rng = np.random.default_rng(settings.seed)
    model = build_model(model_name, num_classes=dataset.num_classes, rng=rng)
    optimizer = SGD(
        learning_rate=settings.learning_rate,
        momentum=settings.momentum,
        weight_decay=settings.weight_decay,
    )
    trainer = Trainer(model, optimizer, rng=np.random.default_rng(settings.seed + 1))
    trainer.fit(
        dataset.train_images,
        dataset.train_labels,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        validation=(dataset.test_images, dataset.test_labels),
        lr_decay=settings.lr_decay,
        verbose=verbose,
    )
    float_acc = evaluate_accuracy(model, dataset.test_images, dataset.test_labels)
    return TrainedModel(
        name=model_name,
        dataset_name=dataset.name,
        model=model,
        float_accuracy=float_acc,
    )


def settings_fingerprint(settings: TrainingSettings) -> str:
    """Stable short hash of every :class:`TrainingSettings` field.

    Used in the cache file stem so that any hyper-parameter change (epochs,
    learning rate, decay, ...) maps to a distinct cache entry instead of
    silently aliasing an older run.
    """
    payload = json.dumps(dataclasses.asdict(settings), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


class TrainedModelCache:
    """Disk cache of trained models keyed by (model, dataset, training settings).

    The cache stem embeds :func:`settings_fingerprint`, and the stored JSON
    metadata (model, dataset, full settings) is re-validated on load; any
    mismatch retrains and overwrites the entry rather than returning a stale
    model.
    """

    def __init__(self, cache_dir: str | None = None):
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()

    def _paths(
        self, model_name: str, dataset_name: str, settings: TrainingSettings
    ) -> tuple[str, str]:
        stem = (
            f"{model_name}__{dataset_name}__seed{settings.seed}"
            f"__cfg{settings_fingerprint(settings)}"
        )
        return (
            os.path.join(self.cache_dir, f"{stem}.npz"),
            os.path.join(self.cache_dir, f"{stem}.json"),
        )

    def _load_valid_meta(
        self,
        meta_path: str,
        model_name: str,
        dataset_name: str,
        settings: TrainingSettings,
    ) -> dict | None:
        """The stored metadata, or ``None`` when it does not match the request."""
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if meta.get("model") != model_name or meta.get("dataset") != dataset_name:
            return None
        if meta.get("settings") != dataclasses.asdict(settings):
            return None
        if "float_accuracy" not in meta:
            return None
        return meta

    def load_or_train(
        self,
        model_name: str,
        dataset: Dataset,
        settings: TrainingSettings = TrainingSettings(),
        verbose: bool = False,
    ) -> TrainedModel:
        """Return a cached trained model, training and caching it if missing."""
        params_path, meta_path = self._paths(model_name, dataset.name, settings)
        if os.path.exists(params_path) and os.path.exists(meta_path):
            meta = self._load_valid_meta(meta_path, model_name, dataset.name, settings)
            if meta is not None:
                model = build_model(
                    model_name,
                    num_classes=dataset.num_classes,
                    rng=np.random.default_rng(settings.seed),
                )
                load_params(model, params_path)
                return TrainedModel(
                    name=model_name,
                    dataset_name=dataset.name,
                    model=model,
                    float_accuracy=float(meta["float_accuracy"]),
                )
        trained = train_reference_model(model_name, dataset, settings, verbose=verbose)
        os.makedirs(self.cache_dir, exist_ok=True)
        save_params(trained.model, params_path)
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "model": model_name,
                    "dataset": dataset.name,
                    "seed": settings.seed,
                    "settings": dataclasses.asdict(settings),
                    "float_accuracy": trained.float_accuracy,
                },
                handle,
                indent=2,
            )
        return trained


@dataclass(frozen=True)
class AccuracyRecord:
    """One cell of the Table III sweep."""

    model: str
    dataset: str
    m: int
    with_control_variate: bool
    baseline_accuracy: float
    approximate_accuracy: float

    @property
    def accuracy_loss(self) -> float:
        """Accuracy loss in percentage points versus the accurate design."""
        return accuracy_loss_percent(self.baseline_accuracy, self.approximate_accuracy)


@dataclass
class SweepResult:
    """All records of an accuracy sweep plus the quantized baselines."""

    records: list[AccuracyRecord] = field(default_factory=list)
    baselines: dict[tuple[str, str], float] = field(default_factory=dict)

    def lookup(self, model: str, dataset: str, m: int, with_cv: bool) -> AccuracyRecord:
        """Find the record of one (model, dataset, m, method) combination."""
        for record in self.records:
            if (
                record.model == model
                and record.dataset == dataset
                and record.m == m
                and record.with_control_variate == with_cv
            ):
                return record
        raise LookupError(f"no record for {model}/{dataset}/m={m}/cv={with_cv}")

    def average_loss(self, dataset: str, m: int, with_cv: bool) -> float:
        """Average accuracy loss over all models, as in Table III's last row."""
        losses = [
            record.accuracy_loss
            for record in self.records
            if record.dataset == dataset
            and record.m == m
            and record.with_control_variate == with_cv
        ]
        if not losses:
            raise LookupError(f"no records for {dataset}/m={m}/cv={with_cv}")
        return float(np.mean(losses))


#: Per-process worker state of :func:`parallel_sweep` (set by the pool
#: initializer; also used by the in-process serial path).
_SWEEP_STATE: dict = {}


def _init_sweep_worker(
    trained_models: list[TrainedModel],
    datasets: dict[str, Dataset],
    max_eval_images: int | None,
    calibration_images: int,
) -> None:
    _SWEEP_STATE.clear()
    _SWEEP_STATE.update(
        models=trained_models,
        datasets=datasets,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        executors={},
    )


def _sweep_executor(model_index: int) -> ApproximateExecutor:
    """Calibrated executor of one trained model, cached per worker process.

    Only the most recent model's executor is kept: cells are grouped by
    model, so this preserves reuse across a model's cells while bounding
    peak memory to one executor (kernel caches, activation buffers and
    quantized weights included) — matching the old serial sweep's profile.
    """
    executor = _SWEEP_STATE["executors"].get(model_index)
    if executor is None:
        trained = _SWEEP_STATE["models"][model_index]
        dataset = _SWEEP_STATE["datasets"][trained.dataset_name]
        calib = dataset.train_images[: _SWEEP_STATE["calibration_images"]]
        executor = ApproximateExecutor(trained.model, calib)
        _SWEEP_STATE["executors"].clear()
        _SWEEP_STATE["executors"][model_index] = executor
    return executor


def _eval_sweep_cell(cell: tuple[int, int | None, bool]) -> tuple[int, int | None, bool, float]:
    """Evaluate one (model, m, cv) cell; ``m is None`` is the accurate baseline."""
    model_index, m, with_cv = cell
    trained = _SWEEP_STATE["models"][model_index]
    dataset = _SWEEP_STATE["datasets"][trained.dataset_name]
    test_images = dataset.test_images
    test_labels = dataset.test_labels
    max_eval = _SWEEP_STATE["max_eval_images"]
    if max_eval is not None:
        test_images = test_images[:max_eval]
        test_labels = test_labels[:max_eval]
    executor = _sweep_executor(model_index)
    if m is None:
        plan = ExecutionPlan.uniform(AccurateProduct())
    else:
        plan = ExecutionPlan.uniform(PerforatedProduct(m, use_control_variate=with_cv))
    acc = accuracy(executor.predict(test_images, plan), test_labels)
    return model_index, m, with_cv, acc


def _assemble_sweep_result(
    models: list[TrainedModel],
    perforations: Sequence[int],
    cell_results: Iterable[tuple[int, int | None, bool, float]],
) -> SweepResult:
    baselines: dict[int, float] = {}
    approx: dict[tuple[int, int, bool], float] = {}
    for model_index, m, with_cv, acc in cell_results:
        if m is None:
            baselines[model_index] = acc
        else:
            approx[(model_index, m, with_cv)] = acc
    result = SweepResult()
    for index, trained in enumerate(models):
        baseline_acc = baselines[index]
        result.baselines[(trained.name, trained.dataset_name)] = baseline_acc
        for m in perforations:
            for with_cv in (True, False):
                result.records.append(
                    AccuracyRecord(
                        model=trained.name,
                        dataset=trained.dataset_name,
                        m=m,
                        with_control_variate=with_cv,
                        baseline_accuracy=baseline_acc,
                        approximate_accuracy=approx[(index, m, with_cv)],
                    )
                )
    return result


def _sweep_cells(
    models: list[TrainedModel], perforations: Sequence[int]
) -> list[tuple[int, int | None, bool]]:
    cells: list[tuple[int, int | None, bool]] = []
    for index in range(len(models)):
        cells.append((index, None, False))
        for m in perforations:
            for with_cv in (True, False):
                cells.append((index, m, with_cv))
    return cells


def parallel_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    max_workers: int | None = None,
) -> SweepResult:
    """:func:`accuracy_sweep` fanned across worker processes.

    Every (model, m, control-variate) cell — plus one accurate-baseline cell
    per model — is an independent task.  Workers cache one calibrated
    executor per model, so a worker that receives several cells of the same
    model pays calibration and kernel compilation once.  The result is
    bit-identical to the serial sweep; ``max_workers=1`` (or a single CPU)
    degenerates to the in-process serial path with no multiprocessing
    overhead.

    Parameters
    ----------
    trained_models, datasets, perforations, max_eval_images, calibration_images:
        As in :func:`accuracy_sweep`.
    max_workers:
        Worker process count; defaults to ``os.cpu_count()``.
    """
    models = list(trained_models)
    cells = _sweep_cells(models, perforations)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers <= 1 or len(cells) <= 1:
        _init_sweep_worker(models, datasets, max_eval_images, calibration_images)
        try:
            results = [_eval_sweep_cell(cell) for cell in cells]
        finally:
            _SWEEP_STATE.clear()
        return _assemble_sweep_result(models, perforations, results)
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=context,
        initializer=_init_sweep_worker,
        initargs=(models, datasets, max_eval_images, calibration_images),
    ) as pool:
        results = list(pool.map(_eval_sweep_cell, cells))
    return _assemble_sweep_result(models, perforations, results)


def accuracy_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
) -> SweepResult:
    """Evaluate every trained model under every approximation mode (serially).

    Parameters
    ----------
    trained_models:
        Models produced by :func:`train_reference_model` /
        :class:`TrainedModelCache`.
    datasets:
        Mapping from dataset name to dataset (must contain every
        ``TrainedModel.dataset_name``).
    perforations:
        The perforation values ``m`` to sweep (the paper uses 1..3).
    max_eval_images:
        Optional cap on the number of test images (keeps CI-style runs fast).
    calibration_images:
        Number of training images used for activation calibration.

    See :func:`parallel_sweep` for the multi-process variant; both produce
    identical results.
    """
    return parallel_sweep(
        trained_models,
        datasets,
        perforations=perforations,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        max_workers=1,
    )
