"""Experiment campaigns: training reference models and sweeping approximations.

This module provides the machinery behind the Table III benchmark:

* :func:`train_reference_model` trains one of the six architectures on a
  CIFAR-like dataset with the numpy engine;
* :class:`TrainedModelCache` stores trained parameters (and their float
  accuracy) on disk so the expensive training step runs once per
  (architecture, dataset, training-settings) combination — the cache stem
  carries a hash of the full :class:`TrainingSettings` and the stored
  metadata is validated on load, so changing any hyper-parameter retrains
  instead of silently reusing a stale model;
* :func:`accuracy_sweep` evaluates the quantized accurate baseline and every
  requested perforation value with and without the control variate,
  producing one :class:`AccuracyRecord` per cell of Table III;
* :func:`parallel_sweep` fans the (model, m, control-variate) cells of the
  sweep across worker processes; results are bit-identical to the serial
  sweep;
* :func:`plan_sweep` generalizes the cells to arbitrary labeled
  :class:`~repro.simulation.inference.ExecutionPlan` sets (per-layer
  approximation, LUT multipliers, ...).

Execution runtime
-----------------
Both sweeps are thin clients of the unified evaluation runtime
(:mod:`repro.runtime`): a :class:`repro.runtime.service.EvaluationService`
publishes the trained models and datasets once through shared memory
(:mod:`repro.runtime.publishing` — re-exported here for backward
compatibility), spawns a persistent worker pool, orders the submitted
cells with the prefix-aware scheduler
(:func:`repro.runtime.scheduling.order_plan_cells`) and hands each worker
one contiguous chunk of the schedule.  Workers never train — they attach
to already-trained parameters — and the engine backend used to compile
product kernels is forwarded via ``engine_backend``.  The DSE engine's
``run_campaign(workers=N)`` rides the very same service.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.models.zoo import build_model
from repro.nn.graph import Graph
from repro.nn.optimizers import SGD
from repro.nn.serialization import load_params, save_params
from repro.nn.training import Trainer, evaluate_accuracy

# Backward-compatible re-exports: the publishing machinery and the
# prefix-aware scheduler historically lived in this module and are part of
# its public API (``repro.simulation`` re-exports them in turn).
from repro.runtime.publishing import (  # noqa: F401  (re-exported)
    SharedDatasets,
    SharedTrainedModels,
    publish_datasets,
    publish_trained_models,
)
from repro.runtime.scheduling import order_plan_cells  # noqa: F401  (re-exported)
from repro.runtime.service import EvaluationService
from repro.runtime.sizing import resolve_worker_count
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
)
from repro.simulation.metrics import accuracy_loss_percent


def default_cache_dir() -> str:
    """Directory used to cache trained model parameters."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-dac21"),
    )


def experiment_dataset(
    num_classes: int,
    train_per_class: int | None = None,
    seed: int | None = None,
) -> Dataset:
    """The CIFAR-like dataset configuration used by the paper-reproduction benches.

    The generator parameters are chosen so the trained reference models land
    around 85-95 % clean accuracy — high enough to be meaningful, low enough
    that approximation-induced degradation is measurable and graded (the
    role CIFAR-10/100 play in the paper).  The 100-class variant uses fewer
    samples per class, making it the harder dataset, as in the paper.

    ``seed`` overrides the synthetic generator's default seed (the CLI
    threads its single ``--seed`` here through one
    :class:`repro.core.seeding.SeedBank` stream).  A custom-seeded
    synthetic dataset gets a ``-seed<N>`` name suffix so trained-model
    cache entries and DSE ledger tags never alias across seeds; real CIFAR
    data (when locally available) ignores the seed.
    """
    from repro.datasets.cifar import load_cifar_like
    from repro.datasets.synthetic import SyntheticCifarConfig

    if num_classes == 10:
        config = SyntheticCifarConfig(
            num_classes=10,
            train_per_class=train_per_class if train_per_class is not None else 150,
            test_per_class=40,
            noise_std=0.22,
            confusion=0.45,
            seed=10 if seed is None else int(seed),
        )
    elif num_classes == 100:
        config = SyntheticCifarConfig(
            num_classes=100,
            train_per_class=train_per_class if train_per_class is not None else 24,
            test_per_class=6,
            noise_std=0.20,
            confusion=0.45,
            seed=100 if seed is None else int(seed),
        )
    else:
        raise ValueError(f"num_classes must be 10 or 100, got {num_classes}")
    dataset = load_cifar_like(num_classes=num_classes, synthetic_config=config)
    if seed is not None and dataset.name.startswith("synthetic"):
        dataset = dataclasses.replace(dataset, name=f"{dataset.name}-seed{int(seed)}")
    return dataset


@dataclass
class TrainedModel:
    """A trained architecture together with its float test accuracy."""

    name: str
    dataset_name: str
    model: Graph
    float_accuracy: float


@dataclass(frozen=True)
class TrainingSettings:
    """Hyper-parameters of the reference training runs."""

    epochs: int = 8
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay: float = 0.85
    seed: int = 0


def train_reference_model(
    model_name: str,
    dataset: Dataset,
    settings: TrainingSettings = TrainingSettings(),
    verbose: bool = False,
) -> TrainedModel:
    """Train one architecture on ``dataset`` and return it with its accuracy."""
    rng = np.random.default_rng(settings.seed)
    model = build_model(model_name, num_classes=dataset.num_classes, rng=rng)
    optimizer = SGD(
        learning_rate=settings.learning_rate,
        momentum=settings.momentum,
        weight_decay=settings.weight_decay,
    )
    trainer = Trainer(model, optimizer, rng=np.random.default_rng(settings.seed + 1))
    trainer.fit(
        dataset.train_images,
        dataset.train_labels,
        epochs=settings.epochs,
        batch_size=settings.batch_size,
        validation=(dataset.test_images, dataset.test_labels),
        lr_decay=settings.lr_decay,
        verbose=verbose,
    )
    float_acc = evaluate_accuracy(model, dataset.test_images, dataset.test_labels)
    return TrainedModel(
        name=model_name,
        dataset_name=dataset.name,
        model=model,
        float_accuracy=float_acc,
    )


def settings_fingerprint(settings: TrainingSettings) -> str:
    """Stable short hash of every :class:`TrainingSettings` field.

    Used in the cache file stem so that any hyper-parameter change (epochs,
    learning rate, decay, ...) maps to a distinct cache entry instead of
    silently aliasing an older run.
    """
    payload = json.dumps(dataclasses.asdict(settings), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def trained_cache_stem(
    model_name: str, dataset_name: str, settings: TrainingSettings
) -> str:
    """The cache-entry stem of one (model, dataset, training-settings) triple.

    Public so run manifests can state *which* cache entry a result came
    from: the stem a manifest records is byte-identical to the one
    :class:`TrainedModelCache` names its files with.
    """
    return (
        f"{model_name}__{dataset_name}__seed{settings.seed}"
        f"__cfg{settings_fingerprint(settings)}"
    )


class TrainedModelCache:
    """Disk cache of trained models keyed by (model, dataset, training settings).

    The cache stem embeds :func:`settings_fingerprint`, and the stored JSON
    metadata (model, dataset, full settings) is re-validated on load; any
    mismatch retrains and overwrites the entry rather than returning a stale
    model.
    """

    def __init__(self, cache_dir: str | None = None):
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()

    def _paths(
        self, model_name: str, dataset_name: str, settings: TrainingSettings
    ) -> tuple[str, str]:
        stem = trained_cache_stem(model_name, dataset_name, settings)
        return (
            os.path.join(self.cache_dir, f"{stem}.npz"),
            os.path.join(self.cache_dir, f"{stem}.json"),
        )

    def _load_valid_meta(
        self,
        meta_path: str,
        model_name: str,
        dataset_name: str,
        settings: TrainingSettings,
    ) -> dict | None:
        """The stored metadata, or ``None`` when it does not match the request."""
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if meta.get("model") != model_name or meta.get("dataset") != dataset_name:
            return None
        if meta.get("settings") != dataclasses.asdict(settings):
            return None
        if "float_accuracy" not in meta:
            return None
        return meta

    def load_or_train(
        self,
        model_name: str,
        dataset: Dataset,
        settings: TrainingSettings = TrainingSettings(),
        verbose: bool = False,
    ) -> TrainedModel:
        """Return a cached trained model, training and caching it if missing."""
        params_path, meta_path = self._paths(model_name, dataset.name, settings)
        if os.path.exists(params_path) and os.path.exists(meta_path):
            meta = self._load_valid_meta(meta_path, model_name, dataset.name, settings)
            if meta is not None:
                model = build_model(
                    model_name,
                    num_classes=dataset.num_classes,
                    rng=np.random.default_rng(settings.seed),
                )
                load_params(model, params_path)
                return TrainedModel(
                    name=model_name,
                    dataset_name=dataset.name,
                    model=model,
                    float_accuracy=float(meta["float_accuracy"]),
                )
        trained = train_reference_model(model_name, dataset, settings, verbose=verbose)
        os.makedirs(self.cache_dir, exist_ok=True)
        save_params(trained.model, params_path)
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "model": model_name,
                    "dataset": dataset.name,
                    "seed": settings.seed,
                    "settings": dataclasses.asdict(settings),
                    "float_accuracy": trained.float_accuracy,
                },
                handle,
                indent=2,
            )
        return trained


@dataclass(frozen=True)
class AccuracyRecord:
    """One cell of the Table III sweep."""

    model: str
    dataset: str
    m: int
    with_control_variate: bool
    baseline_accuracy: float
    approximate_accuracy: float

    @property
    def accuracy_loss(self) -> float:
        """Accuracy loss in percentage points versus the accurate design."""
        return accuracy_loss_percent(self.baseline_accuracy, self.approximate_accuracy)


@dataclass
class SweepResult:
    """All records of an accuracy sweep plus the quantized baselines."""

    records: list[AccuracyRecord] = field(default_factory=list)
    baselines: dict[tuple[str, str], float] = field(default_factory=dict)

    def lookup(self, model: str, dataset: str, m: int, with_cv: bool) -> AccuracyRecord:
        """Find the record of one (model, dataset, m, method) combination."""
        for record in self.records:
            if (
                record.model == model
                and record.dataset == dataset
                and record.m == m
                and record.with_control_variate == with_cv
            ):
                return record
        raise LookupError(f"no record for {model}/{dataset}/m={m}/cv={with_cv}")

    def average_loss(self, dataset: str, m: int, with_cv: bool) -> float:
        """Average accuracy loss over all models, as in Table III's last row."""
        losses = [
            record.accuracy_loss
            for record in self.records
            if record.dataset == dataset
            and record.m == m
            and record.with_control_variate == with_cv
        ]
        if not losses:
            raise LookupError(f"no records for {dataset}/m={m}/cv={with_cv}")
        return float(np.mean(losses))


@dataclass(frozen=True)
class PlanAccuracyRecord:
    """One cell of a :func:`plan_sweep`: one model evaluated under one plan."""

    model: str
    dataset: str
    plan_label: str
    accuracy: float


def _sweep_service(
    models: list[TrainedModel],
    datasets: dict[str, Dataset],
    num_cells: int,
    max_eval_images: int | None,
    calibration_images: int,
    max_workers: int | None,
    engine_backend: str | None,
    use_shared_memory: bool | None,
    reuse_prefix: bool,
    fuse_plans: bool = True,
) -> EvaluationService:
    """One ephemeral :class:`EvaluationService` sized for a sweep's cells."""
    # Affinity/load-aware sizing and the degrade-to-serial clamp: a request
    # beyond the schedulable CPUs (cgroup cpusets, taskset) can only lose to
    # the serial path, so it is clamped rather than oversubscribed.  Never
    # spawn more workers than there are cells to score, either.
    max_workers = resolve_worker_count(max_workers, num_cells=num_cells)
    return EvaluationService(
        models,
        datasets,
        max_workers=max_workers,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        engine_backend=engine_backend,
        reuse_prefix=reuse_prefix,
        use_shared_memory=use_shared_memory,
        fuse_plans=fuse_plans,
    )


def plan_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: "dict[str, Dataset]",
    plans: Sequence[tuple[str, ExecutionPlan]],
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    max_workers: int | None = None,
    engine_backend: str | None = None,
    use_shared_memory: bool | None = None,
    reuse_prefix: bool = True,
    fuse_plans: bool = True,
) -> list[PlanAccuracyRecord]:
    """Evaluate every trained model under every labeled execution plan.

    The generalization of :func:`parallel_sweep` behind per-layer
    approximation studies, now a thin client of the evaluation runtime:
    each ``(label, plan)`` pair is one cell per model, the service orders
    cells with the prefix-aware scheduler (so consecutive cells share the
    deepest possible prefix, armed as each worker executor's plan context)
    and publishes trained parameters and datasets once through shared
    memory instead of copying them per worker.  Results are returned in
    ``(model, plan)`` input order and are bit-identical to evaluating each
    plan on a fresh executor with reuse disabled.

    Parameters not shared with :func:`parallel_sweep`:

    plans:
        Labeled :class:`~repro.simulation.inference.ExecutionPlan` objects;
        labels key the returned records.
    reuse_prefix:
        Arm cross-plan reuse (activation codes and the plan-invariant
        layer prefix) in every worker executor.  Disable to force full
        re-execution per cell — the escape hatch the CLI exposes as
        ``--no-prefix-reuse``.
    fuse_plans:
        Evaluate plan groups through the fused multi-plan backend path
        (one batched launch per layer instead of a Python loop over
        plans); see :class:`~repro.runtime.service.EvaluationService`.
        Bit-exact either way.
    """
    models = list(trained_models)
    plans = list(plans)
    if not plans:
        raise ValueError("plan_sweep requires at least one plan")
    cells = [
        (model_index, plan)
        for model_index in range(len(models))
        for _, plan in plans
    ]
    service = _sweep_service(
        models,
        datasets,
        len(cells),
        max_eval_images,
        calibration_images,
        max_workers,
        engine_backend,
        use_shared_memory,
        reuse_prefix,
        fuse_plans=fuse_plans,
    )
    with service:
        accuracies = service.evaluate_cells(cells)
    return [
        PlanAccuracyRecord(
            model=models[model_index].name,
            dataset=models[model_index].dataset_name,
            plan_label=plans[plan_index][0],
            accuracy=accuracies[model_index * len(plans) + plan_index],
        )
        for model_index in range(len(models))
        for plan_index in range(len(plans))
    ]


def _sweep_cell_specs(
    models: list[TrainedModel], perforations: Sequence[int]
) -> list[tuple[int, int | None, bool]]:
    """The (model, m, cv) cells of a Table III sweep; ``m is None`` = baseline."""
    specs: list[tuple[int, int | None, bool]] = []
    for index in range(len(models)):
        specs.append((index, None, False))
        for m in perforations:
            for with_cv in (True, False):
                specs.append((index, m, with_cv))
    return specs


def _spec_plan(m: int | None, with_cv: bool) -> ExecutionPlan:
    """The uniform execution plan of one (m, cv) sweep cell."""
    if m is None:
        return ExecutionPlan.uniform(AccurateProduct())
    return ExecutionPlan.uniform(PerforatedProduct(m, use_control_variate=with_cv))


def _assemble_sweep_result(
    models: list[TrainedModel],
    perforations: Sequence[int],
    cell_results: Iterable[tuple[int, int | None, bool, float]],
) -> SweepResult:
    baselines: dict[int, float] = {}
    approx: dict[tuple[int, int, bool], float] = {}
    for model_index, m, with_cv, acc in cell_results:
        if m is None:
            baselines[model_index] = acc
        else:
            approx[(model_index, m, with_cv)] = acc
    result = SweepResult()
    for index, trained in enumerate(models):
        baseline_acc = baselines[index]
        result.baselines[(trained.name, trained.dataset_name)] = baseline_acc
        for m in perforations:
            for with_cv in (True, False):
                result.records.append(
                    AccuracyRecord(
                        model=trained.name,
                        dataset=trained.dataset_name,
                        m=m,
                        with_control_variate=with_cv,
                        baseline_accuracy=baseline_acc,
                        approximate_accuracy=approx[(index, m, with_cv)],
                    )
                )
    return result


def parallel_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    max_workers: int | None = None,
    engine_backend: str | None = None,
    use_shared_memory: bool | None = None,
    reuse_prefix: bool = True,
    fuse_plans: bool = True,
) -> SweepResult:
    """:func:`accuracy_sweep` fanned across the evaluation runtime's workers.

    Every (model, m, control-variate) cell — plus one accurate-baseline cell
    per model — is one plan cell submitted to an
    :class:`~repro.runtime.service.EvaluationService`.  Workers cache one
    calibrated executor per model, so a worker that receives several cells
    of the same model pays calibration and kernel compilation once.  The
    result is bit-identical to the serial sweep; ``max_workers=1`` (or a
    single CPU) degenerates to the in-process serial path with no
    multiprocessing overhead.

    Parameters
    ----------
    trained_models, datasets, perforations, max_eval_images, calibration_images:
        As in :func:`accuracy_sweep`.
    max_workers:
        Worker process count; ``None`` auto-sizes from the schedulable-CPU
        count and host load, and explicit requests are clamped to the
        schedulable CPUs (:func:`repro.runtime.sizing.resolve_worker_count`
        — ``--workers 4`` on a 1-CPU box runs the serial path at 1.0x
        serial instead of 4 contending processes).
    engine_backend:
        Engine backend name compiled kernels should use in every worker
        (see :mod:`repro.core.backends`); ``None`` uses the default.
    use_shared_memory:
        Publish trained-model parameters (:func:`publish_trained_models`)
        and the evaluation datasets (:func:`publish_datasets`) once so
        workers attach read-only views instead of receiving per-process
        copies.  ``None`` (default) enables it exactly when worker
        processes are used; ``True`` forces the publish/attach round trip
        even on the serial path (useful for testing), ``False`` ships
        models and datasets directly.
    reuse_prefix:
        Arm the worker executors' cross-plan reuse (plan-invariant
        activation codes and layer prefix).  Disable (the CLI's
        ``--no-prefix-reuse``) to force full re-execution per cell.
    fuse_plans:
        Ride the fused multi-plan backend path for plan groups (see
        :class:`~repro.runtime.service.EvaluationService`); bit-exact
        either way.
    """
    models = list(trained_models)
    specs = _sweep_cell_specs(models, perforations)
    cells = [
        (model_index, _spec_plan(m, with_cv)) for model_index, m, with_cv in specs
    ]
    service = _sweep_service(
        models,
        datasets,
        len(cells),
        max_eval_images,
        calibration_images,
        max_workers,
        engine_backend,
        use_shared_memory,
        reuse_prefix,
        fuse_plans=fuse_plans,
    )
    with service:
        accuracies = service.evaluate_cells(cells)
    results = [
        (model_index, m, with_cv, acc)
        for (model_index, m, with_cv), acc in zip(specs, accuracies)
    ]
    return _assemble_sweep_result(models, perforations, results)


def accuracy_sweep(
    trained_models: Iterable[TrainedModel],
    datasets: dict[str, Dataset],
    perforations: Sequence[int] = (1, 2, 3),
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    engine_backend: str | None = None,
    reuse_prefix: bool = True,
) -> SweepResult:
    """Evaluate every trained model under every approximation mode (serially).

    Parameters
    ----------
    trained_models:
        Models produced by :func:`train_reference_model` /
        :class:`TrainedModelCache`.
    datasets:
        Mapping from dataset name to dataset (must contain every
        ``TrainedModel.dataset_name``).
    perforations:
        The perforation values ``m`` to sweep (the paper uses 1..3).
    max_eval_images:
        Optional cap on the number of test images (keeps CI-style runs fast).
    calibration_images:
        Number of training images used for activation calibration.

    See :func:`parallel_sweep` for the multi-process variant; both produce
    identical results.
    """
    return parallel_sweep(
        trained_models,
        datasets,
        perforations=perforations,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        max_workers=1,
        engine_backend=engine_backend,
        reuse_prefix=reuse_prefix,
    )
