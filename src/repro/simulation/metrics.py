"""Accuracy and error metrics for the approximate-inference experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in ``[0, 1]``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    return float((predictions == labels).mean())


def accuracy_loss_percent(baseline_accuracy: float, approximate_accuracy: float) -> float:
    """Accuracy loss in percentage points, as reported in Table III.

    Negative values mean the approximation *improved* accuracy (the paper
    observes this occasionally and attributes it to a regularization-like
    effect of the injected error).
    """
    return 100.0 * (baseline_accuracy - approximate_accuracy)


@dataclass(frozen=True)
class OutputErrorStats:
    """Error statistics between accurate and approximate layer/logit outputs."""

    mean: float
    std: float
    mean_absolute: float
    max_absolute: float
    rmse: float

    @property
    def variance(self) -> float:
        return self.std**2


def output_error_stats(reference: np.ndarray, approximate: np.ndarray) -> OutputErrorStats:
    """Summary statistics of ``reference - approximate`` (any matching shapes)."""
    reference = np.asarray(reference, dtype=np.float64)
    approximate = np.asarray(approximate, dtype=np.float64)
    if reference.shape != approximate.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {approximate.shape}"
        )
    err = reference - approximate
    return OutputErrorStats(
        mean=float(err.mean()),
        std=float(err.std()),
        mean_absolute=float(np.abs(err).mean()),
        max_absolute=float(np.abs(err).max()),
        rmse=float(np.sqrt((err**2).mean())),
    )
