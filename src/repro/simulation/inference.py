"""Approximate quantized inference executor (the TFApprox substitute).

The executor re-runs a trained float :class:`repro.nn.graph.Graph` with its
convolution and dense layers executed in the quantized integer domain.  The
per-element products of those integer accumulations — the operations the
MAC array performs — are produced by a pluggable :class:`ProductModel`:

* :class:`AccurateProduct` — the accurate array (quantization error only);
* :class:`PerforatedProduct` — the paper's perforated multiplier, with or
  without the control-variate MAC+ column;
* :class:`LUTProduct` — an arbitrary library multiplier (used by the
  state-of-the-art baselines), optionally with ALWANN-style weight tuning.

An :class:`ExecutionPlan` assigns one product model per MAC layer, which is
how layer-wise techniques (ALWANN [7], the reconfigurable approach [8]) are
expressed.  Everything that is not a convolution or dense layer (batch-norm,
ReLU, pooling, merges) runs in float exactly as during training, matching
the fake-quantization methodology of the TFApprox flow the paper uses.

Kernel compilation
------------------
Every :class:`ProductModel` can be *compiled* against one layer's quantized
weights via :meth:`ProductModel.compile`, yielding a
:class:`repro.core.product_kernels.ProductKernel` that hoists all
weight-dependent work (int64 weight conversion, LUT error-matrix
construction, control constants) out of the per-batch hot loop.  The
executor compiles each (layer, group, product model) combination once,
caches the kernel for the lifetime of the product-model instance, and reuses
persistent uint8 activation buffers across batches, so a sweep that runs the
same plan over a full test set performs only the unavoidable per-batch work.
The legacy uncompiled path is kept behind ``use_compiled=False`` and the
``pytest -m engine`` parity suite pins both paths bit-exact.

Engine backends
---------------
*How* kernels are compiled is pluggable: the executor's ``engine_backend``
parameter selects an :class:`repro.core.backends.EngineBackend` by name —
``numpy`` (default BLAS kernels), ``numba`` (JIT per-tap loops, available
only when numba is installed) or ``lowmem`` (capped LUT error matrix plus
chunked evaluation).  All backends are bit-exact; they trade speed and
memory only.  Selection is exposed end to end::

    executor = ApproximateExecutor(model, calib, engine_backend="lowmem")
    parallel_sweep(models, datasets, engine_backend="numba")  # falls back
    # CLI: python -m repro accuracy --model vgg13 --engine-backend lowmem
    # CLI: python -m repro backends   # list backends + availability

An unavailable backend (e.g. ``numba`` without the package) resolves to the
numpy backend with a warning, so scripts stay portable.

Cross-plan activation reuse
---------------------------
Within a sweep the quantized input codes of the *first* MAC layer depend
only on the images, not on the execution plan, so the executor caches them
per input batch (keyed by the identity of the underlying buffer) and skips
re-quantization when consecutive ``forward`` calls — one per plan — see the
same batch.  Disable with ``reuse_plan_invariant_acts=False`` if the caller
mutates input arrays in place between calls.
"""

from __future__ import annotations

import abc
import weakref
from dataclasses import dataclass

import numpy as np

from repro.core.accelerator_model import AcceleratorConfig
from repro.core.backends import EngineBackend, resolve_backend
from repro.core.approx_conv import (
    accurate_product_sums,
    lut_product_sums,
    perforated_product_sums,
)
from repro.core.control_variate import ControlVariate
from repro.core.product_kernels import (
    AccurateKernel,
    CallbackKernel,
    KernelOptions,
    LUTKernel,
    PerforatedKernel,
    ProductKernel,
)
from repro.multipliers.base import Multiplier
from repro.nn.graph import Graph
from repro.nn.im2col import im2col
from repro.nn.layers import Conv2D, Dense
from repro.quantization.qlayers import QuantizedLinearOp
from repro.quantization.quantize import calibrate_minmax, calibrate_percentile, quantize
from repro.quantization.schemes import QuantParams


class ProductModel(abc.ABC):
    """Strategy producing the raw product sums of one quantized linear op."""

    @abc.abstractmethod
    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        """Return ``sum_j product(wq_j, aq_j)`` of shape ``(patches, filters)``."""

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        """Compile this model against one layer's weights (run once per plan).

        The default implementation wraps :meth:`product_sums`; subclasses
        with an exploitable structure return a specialized kernel instead.
        ``options`` carries backend-tunable knobs (see
        :class:`~repro.core.product_kernels.KernelOptions`); models honor
        the knobs that apply to them and ignore the rest.
        """
        return CallbackKernel(self, weight_codes, control_variate)

    @property
    def name(self) -> str:
        return type(self).__name__


class AccurateProduct(ProductModel):
    """Exact integer products — the accurate MAC array."""

    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        return accurate_product_sums(act_codes, weight_codes)

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        return AccurateKernel(weight_codes)


class PerforatedProduct(ProductModel):
    """Perforated multiplier, optionally corrected by the control variate.

    ``m = 0`` is the degenerate accurate array: products are identical to
    :class:`AccurateProduct` and the control-variate correction is exactly
    zero, matching :func:`repro.core.approx_conv.perforated_product_sums`.
    """

    def __init__(self, m: int, use_control_variate: bool = True):
        if not 0 <= int(m) < 8:
            raise ValueError(f"m must be within [0, 7], got {m}")
        self.m = int(m)
        self.use_control_variate = bool(use_control_variate)

    @classmethod
    def from_config(cls, config: AcceleratorConfig) -> "ProductModel":
        """Product model implied by an accelerator configuration."""
        if not config.is_approximate:
            return AccurateProduct()
        return cls(config.perforation, config.use_control_variate)

    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        cv = control_variate if self.use_control_variate else None
        return perforated_product_sums(act_codes, weight_codes, self.m, cv)

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        cv = control_variate if self.use_control_variate else None
        return PerforatedKernel(weight_codes, self.m, cv)

    @property
    def name(self) -> str:
        suffix = "+V" if self.use_control_variate else ""
        return f"perforated_m{self.m}{suffix}"


class LUTProduct(ProductModel):
    """Arbitrary approximate multiplier evaluated through its 256x256 LUT."""

    def __init__(self, multiplier: Multiplier, chunk_patches: int = 256):
        self.multiplier = multiplier
        self._lut = multiplier.build_lut()
        self.chunk_patches = int(chunk_patches)

    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        return lut_product_sums(
            act_codes, weight_codes, self._lut, chunk_patches=self.chunk_patches
        )

    @property
    def lut(self) -> np.ndarray:
        """The precomputed 256x256 product table (shared by all backends)."""
        return self._lut

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        if options is None:
            options = KernelOptions()
        return LUTKernel(
            weight_codes,
            self._lut,
            max_error_matrix_bytes=options.max_error_matrix_bytes,
        )

    @property
    def name(self) -> str:
        return f"lut[{self.multiplier.name}]"


@dataclass
class ExecutionPlan:
    """Assignment of a product model to every MAC (conv/dense) node."""

    default: ProductModel
    per_layer: dict[str, ProductModel]

    @classmethod
    def uniform(cls, model: ProductModel) -> "ExecutionPlan":
        """Use the same product model for every layer."""
        return cls(default=model, per_layer={})

    @classmethod
    def from_config(cls, config: AcceleratorConfig) -> "ExecutionPlan":
        """Plan implied by a single accelerator configuration."""
        return cls.uniform(PerforatedProduct.from_config(config))

    def model_for(self, layer_name: str) -> ProductModel:
        return self.per_layer.get(layer_name, self.default)

    def with_layer(self, layer_name: str, model: ProductModel) -> "ExecutionPlan":
        """Return a copy of the plan with one layer overridden."""
        per_layer = dict(self.per_layer)
        per_layer[layer_name] = model
        return ExecutionPlan(default=self.default, per_layer=per_layer)


@dataclass
class _QuantizedMacNode:
    """Pre-quantized data of one conv/dense node (one entry per group)."""

    node_name: str
    ops: list[QuantizedLinearOp]
    weight_overrides: list[np.ndarray | None]
    control_variates: list[ControlVariate]
    act_params: QuantParams


class ApproximateExecutor:
    """Runs a trained model with quantized, possibly approximate, MAC layers.

    Parameters
    ----------
    model:
        The trained float model.
    calibration_images:
        A batch of representative inputs used to calibrate the activation
        quantizers of every MAC layer (post-training quantization).
    activation_percentile:
        Percentile used for activation calibration; 100 gives min/max.
    use_compiled:
        Run each MAC layer through its compiled
        :class:`~repro.core.product_kernels.ProductKernel` (compiled once
        per (layer, group, product model) and cached).  Disable to force
        the legacy per-batch ``ProductModel.product_sums`` path; both paths
        are bit-exact.
    engine_backend:
        Name (or instance) of the :class:`~repro.core.backends.EngineBackend`
        that compiles the kernels — ``"numpy"`` (default), ``"numba"`` or
        ``"lowmem"``.  An unavailable backend falls back to numpy with a
        warning; all backends are bit-exact.
    reuse_plan_invariant_acts:
        Cache the quantized activation codes of the first MAC layer per
        input batch and reuse them across execution plans (they are
        plan-invariant).  The cache is keyed by the identity of the input
        buffer — disable when input arrays are mutated in place between
        ``forward`` calls.
    act_cache_batches:
        How many distinct batches the plan-invariant cache retains per
        layer (LRU).  A multi-plan sweep over an eval set of up to
        ``act_cache_batches`` batches quantizes each batch once; each entry
        costs one uint8 copy of the first MAC layer's input.
    """

    def __init__(
        self,
        model: Graph,
        calibration_images: np.ndarray,
        activation_percentile: float = 99.9,
        use_compiled: bool = True,
        engine_backend: str | EngineBackend | None = None,
        reuse_plan_invariant_acts: bool = True,
        act_cache_batches: int = 16,
    ):
        self.model = model
        self.use_compiled = bool(use_compiled)
        self.engine_backend = resolve_backend(engine_backend)
        self._nodes: dict[str, _QuantizedMacNode] = {}
        # Compiled kernels, keyed by product-model instance (weakly, so plans
        # can be discarded) then by (layer, group).
        self._kernel_cache: "weakref.WeakKeyDictionary[ProductModel, dict[tuple[str, int], ProductKernel]]" = (
            weakref.WeakKeyDictionary()
        )
        # Batch-persistent uint8 activation-code buffers per (layer, group).
        self._act_buffers: dict[tuple[str, int], np.ndarray] = {}
        # Cross-plan reuse of the first MAC layer's quantized activations:
        # its input is plan-invariant, so forward calls under different
        # plans that see a batch already quantized reuse the cached codes.
        # Per layer key, a small LRU of (identity token, codes) pairs keeps
        # reuse alive for batched eval sets, not just single-batch calls.
        self.reuse_plan_invariant_acts = bool(reuse_plan_invariant_acts)
        self.act_cache_batches = int(act_cache_batches)
        mac_nodes = model.conv_dense_nodes()
        self._first_mac_name = mac_nodes[0].name if mac_nodes else None
        self._act_cache: dict[tuple[str, int], list[tuple[tuple, np.ndarray]]] = {}
        self.act_cache_hits = 0
        self.act_cache_misses = 0
        self._calibrate(calibration_images, activation_percentile)

    @classmethod
    def from_config(
        cls,
        model: Graph,
        calibration_images: np.ndarray,
        config: AcceleratorConfig,
        **kwargs,
    ) -> "ApproximateExecutor":
        """Executor honoring ``config.engine_backend``.

        Pair with :meth:`ExecutionPlan.from_config` on the same config to
        run the product model the accelerator configuration implies::

            executor = ApproximateExecutor.from_config(model, calib, config)
            logits = executor.forward(images, ExecutionPlan.from_config(config))
        """
        return cls(
            model,
            calibration_images,
            engine_backend=config.engine_backend,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def _calibrate(self, images: np.ndarray, percentile: float) -> None:
        _, activations = self.model.forward(images, training=False, return_activations=True)
        for node in self.model.conv_dense_nodes():
            layer = node.layer
            parent_output = activations[node.inputs[0]]
            if percentile >= 100.0:
                act_params = calibrate_minmax(parent_output)
            else:
                act_params = calibrate_percentile(parent_output, percentile)
            ops: list[QuantizedLinearOp] = []
            cvs: list[ControlVariate] = []
            for weight_matrix, bias in _group_weight_matrices(layer):
                weight_params = calibrate_minmax(weight_matrix)
                weight_codes = quantize(weight_matrix, weight_params)
                ops.append(QuantizedLinearOp(weight_codes, weight_params, bias))
                cvs.append(ControlVariate.from_weight_matrix(weight_codes))
            self._nodes[node.name] = _QuantizedMacNode(
                node_name=node.name,
                ops=ops,
                weight_overrides=[None] * len(ops),
                control_variates=cvs,
                act_params=act_params,
            )

    # ------------------------------------------------------------------
    def mac_layer_names(self) -> list[str]:
        """Names of the quantized MAC layers, in execution order."""
        return [node.name for node in self.model.conv_dense_nodes()]

    def quantized_weights(self, layer_name: str) -> list[np.ndarray]:
        """The uint8 weight matrices (one per group) of a MAC layer."""
        return [op.weight_codes for op in self._nodes[layer_name].ops]

    def set_weight_override(self, layer_name: str, codes_per_group: list[np.ndarray]) -> None:
        """Replace the weight codes used at inference time (ALWANN weight tuning).

        The override only affects the products sent to the MAC array; the
        dequantization, zero-point corrections and control variates keep
        using the original weights, mirroring how ALWANN retunes the stored
        weights without retraining.
        """
        node = self._nodes[layer_name]
        if len(codes_per_group) != len(node.ops):
            raise ValueError(
                f"expected {len(node.ops)} weight matrices for layer {layer_name!r}"
            )
        overrides: list[np.ndarray | None] = []
        for op, codes in zip(node.ops, codes_per_group):
            codes = np.asarray(codes, dtype=np.uint8)
            if codes.shape != op.weight_codes.shape:
                raise ValueError("override shape mismatch")
            overrides.append(codes)
        node.weight_overrides = overrides
        self._kernel_cache = weakref.WeakKeyDictionary()

    def clear_weight_overrides(self) -> None:
        """Remove all inference-time weight overrides."""
        for node in self._nodes.values():
            node.weight_overrides = [None] * len(node.ops)
        self._kernel_cache = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    def forward(self, images: np.ndarray, plan: ExecutionPlan) -> np.ndarray:
        """Run quantized inference on ``images`` under ``plan``."""
        activations: dict[str, np.ndarray] = {"input": images}
        for node in self.model.nodes:
            inputs = [activations[name] for name in node.inputs]
            if node.name in self._nodes:
                activations[node.name] = self._run_mac_node(
                    node.name, node.layer, inputs[0], plan.model_for(node.name)
                )
            else:
                activations[node.name] = node.layer.forward(*inputs, training=False)
        return activations[self.model.output_name]

    def logits(self, images: np.ndarray, plan: ExecutionPlan, batch_size: int = 256) -> np.ndarray:
        """Batched forward pass returning the concatenated logits."""
        outputs = []
        for start in range(0, images.shape[0], batch_size):
            outputs.append(self.forward(images[start : start + batch_size], plan))
        return np.concatenate(outputs, axis=0)

    def predict(self, images: np.ndarray, plan: ExecutionPlan, batch_size: int = 256) -> np.ndarray:
        """Predicted class labels."""
        return self.logits(images, plan, batch_size=batch_size).argmax(axis=1)

    # ------------------------------------------------------------------
    def _run_mac_node(
        self,
        name: str,
        layer: Conv2D | Dense,
        x: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        qnode = self._nodes[name]
        if isinstance(layer, Conv2D):
            return self._run_conv(layer, qnode, x, product_model)
        return self._run_dense(layer, qnode, x, product_model)

    def _run_conv(
        self,
        layer: Conv2D,
        qnode: _QuantizedMacNode,
        x: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        batch = x.shape[0]
        cin_per_group = layer.in_channels // layer.groups
        cout_per_group = layer.out_channels // layer.groups
        outputs = []
        if self.use_compiled:
            # Quantize once on the compact NHWC input, then unfold the uint8
            # codes (padding with the zero-point code, i.e. quantize(0)) —
            # elementwise identical to unfold-then-quantize, but the im2col
            # gather duplicates every pixel ~k^2 times, so this quantizes up
            # to k^2 x less data and gathers uint8 instead of float64.
            codes = self._quantize_acts(qnode, -1, x)
            pad_code = int(np.clip(qnode.act_params.zero_point, 0, 255))
            for g in range(layer.groups):
                codes_g = codes[..., g * cin_per_group : (g + 1) * cin_per_group]
                act_codes, out_h, out_w = im2col(
                    codes_g,
                    layer.kernel_size,
                    layer.kernel_size,
                    layer.stride,
                    layer.pad,
                    pad_value=pad_code,
                )
                out_flat = self._run_group(qnode, g, act_codes, product_model)
                outputs.append(out_flat.reshape(batch, out_h, out_w, cout_per_group))
            return np.concatenate(outputs, axis=-1) if layer.groups > 1 else outputs[0]
        for g in range(layer.groups):
            x_g = x[..., g * cin_per_group : (g + 1) * cin_per_group]
            cols, out_h, out_w = im2col(
                x_g, layer.kernel_size, layer.kernel_size, layer.stride, layer.pad
            )
            act_codes = self._quantize_acts(qnode, g, cols)
            out_flat = self._run_group(qnode, g, act_codes, product_model)
            outputs.append(out_flat.reshape(batch, out_h, out_w, cout_per_group))
        return np.concatenate(outputs, axis=-1) if layer.groups > 1 else outputs[0]

    def _run_dense(
        self,
        layer: Dense,
        qnode: _QuantizedMacNode,
        x: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        act_codes = self._quantize_acts(qnode, 0, x)
        return self._run_group(qnode, 0, act_codes, product_model)

    def _quantize_acts(self, qnode: _QuantizedMacNode, group: int, cols: np.ndarray) -> np.ndarray:
        """Quantize activations into a per-(layer, group) persistent buffer.

        The buffer grows along the leading (batch/patch) axis only; group
        ``-1`` holds the whole NHWC input of a conv node (compiled path).
        For the first MAC layer the input is plan-invariant, so when a batch
        (same underlying buffer, offset and shape) arrives again — e.g. the
        next plan of a sweep re-running the same eval set — its previous
        quantization is returned from a per-layer LRU of up to
        ``act_cache_batches`` batches instead of being recomputed.
        """
        key = (qnode.node_name, group)
        if self.reuse_plan_invariant_acts and qnode.node_name == self._first_mac_name:
            token = _array_identity_token(cols)
            entries = self._act_cache.setdefault(key, [])
            for index, (cached_token, codes) in enumerate(entries):
                if _tokens_match(cached_token, token):
                    self.act_cache_hits += 1
                    if index:
                        entries.insert(0, entries.pop(index))
                    return codes
            # Cached batches get private arrays (not the shared buffer, which
            # the next batch would overwrite).
            codes = quantize(cols, qnode.act_params)
            self.act_cache_misses += 1
            entries.insert(0, (token, codes))
            del entries[self.act_cache_batches :]
            return codes
        buffer = self._act_buffers.get(key)
        if buffer is None or buffer.shape[0] < cols.shape[0] or buffer.shape[1:] != cols.shape[1:]:
            buffer = np.empty(cols.shape, dtype=np.uint8)
            self._act_buffers[key] = buffer
        return quantize(cols, qnode.act_params, out=buffer[: cols.shape[0]])

    def _kernel_for(
        self, qnode: _QuantizedMacNode, group: int, product_model: ProductModel
    ) -> ProductKernel:
        per_model = self._kernel_cache.get(product_model)
        if per_model is None:
            per_model = {}
            self._kernel_cache[product_model] = per_model
        key = (qnode.node_name, group)
        kernel = per_model.get(key)
        if kernel is None:
            override = qnode.weight_overrides[group]
            weight_codes = (
                override if override is not None else qnode.ops[group].weight_codes
            )
            kernel = self.engine_backend.compile(
                product_model, weight_codes, qnode.control_variates[group]
            )
            per_model[key] = kernel
        return kernel

    def _run_group(
        self,
        qnode: _QuantizedMacNode,
        group: int,
        act_codes: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        op = qnode.ops[group]
        if self.use_compiled:
            sums = self._kernel_for(qnode, group, product_model)(act_codes)
        else:
            override = qnode.weight_overrides[group]
            weight_codes = override if override is not None else op.weight_codes
            sums = product_model.product_sums(
                act_codes, weight_codes, qnode.control_variates[group]
            )
        return op.output_real(act_codes, qnode.act_params, product_sum=sums)


def _array_identity_token(arr: np.ndarray) -> tuple:
    """Identity token of the memory window an array views.

    Two arrays get equal tokens iff they view the same window (same owning
    buffer, data pointer, shape and dtype) of a buffer that is still alive.
    The owning buffer is anchored by a weak reference, so a token can never
    collide with a later array that merely reuses a freed object's ``id()``
    — a dead weakref only compares equal to itself.  Slices of one base
    array (``images[a:b]``) therefore match across calls, which is what the
    executor's cross-plan activation cache keys on.
    """
    base = arr
    while isinstance(base.base, np.ndarray):
        base = base.base
    return (
        weakref.ref(base),
        arr.__array_interface__["data"][0],
        arr.shape,
        arr.dtype.str,
    )


def _tokens_match(cached: tuple | None, current: tuple) -> bool:
    """Whether two identity tokens denote the same live memory window.

    The weakref element is dereferenced and compared by *identity* — never
    with ``==``, which for live ndarray referents would broadcast into an
    element-wise comparison.  A dead referent never matches.
    """
    if cached is None or cached[1:] != current[1:]:
        return False
    referent = cached[0]()
    return referent is not None and referent is current[0]()


def _group_weight_matrices(layer: Conv2D | Dense):
    """Yield ``(weight_matrix, bias)`` per group with the (taps, filters) layout."""
    if isinstance(layer, Conv2D):
        cout_per_group = layer.out_channels // layer.groups
        for g in range(layer.groups):
            bias = None
            if layer.use_bias:
                bias = layer.bias[g * cout_per_group : (g + 1) * cout_per_group]
            yield layer.weight_matrix(g), bias
    elif isinstance(layer, Dense):
        yield layer.weight, (layer.bias if layer.use_bias else None)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported MAC layer type: {type(layer).__name__}")
