"""Approximate quantized inference executor (the TFApprox substitute).

The executor re-runs a trained float :class:`repro.nn.graph.Graph` with its
convolution and dense layers executed in the quantized integer domain.  The
per-element products of those integer accumulations — the operations the
MAC array performs — are produced by a pluggable :class:`ProductModel`:

* :class:`AccurateProduct` — the accurate array (quantization error only);
* :class:`PerforatedProduct` — the paper's perforated multiplier, with or
  without the control-variate MAC+ column;
* :class:`LUTProduct` — an arbitrary library multiplier (used by the
  state-of-the-art baselines), optionally with ALWANN-style weight tuning.

An :class:`ExecutionPlan` assigns one product model per MAC layer, which is
how layer-wise techniques (ALWANN [7], the reconfigurable approach [8]) are
expressed.  Everything that is not a convolution or dense layer (batch-norm,
ReLU, pooling, merges) runs in float exactly as during training, matching
the fake-quantization methodology of the TFApprox flow the paper uses.

Kernel compilation
------------------
Every :class:`ProductModel` can be *compiled* against one layer's quantized
weights via :meth:`ProductModel.compile`, yielding a
:class:`repro.core.product_kernels.ProductKernel` that hoists all
weight-dependent work (int64 weight conversion, LUT error-matrix
construction, control constants) out of the per-batch hot loop.  The
executor compiles each (layer, group, product model) combination once,
caches the kernel for the lifetime of the product-model instance, and reuses
persistent uint8 activation buffers across batches, so a sweep that runs the
same plan over a full test set performs only the unavoidable per-batch work.
The legacy uncompiled path is kept behind ``use_compiled=False`` and the
``pytest -m engine`` parity suite pins both paths bit-exact.

Engine backends
---------------
*How* kernels are compiled is pluggable: the executor's ``engine_backend``
parameter selects an :class:`repro.core.backends.EngineBackend` by name —
``numpy`` (default BLAS kernels), ``numba`` (JIT per-tap loops, available
only when numba is installed) or ``lowmem`` (capped LUT error matrix plus
chunked evaluation).  All backends are bit-exact; they trade speed and
memory only.  Selection is exposed end to end::

    executor = ApproximateExecutor(model, calib, engine_backend="lowmem")
    parallel_sweep(models, datasets, engine_backend="numba")  # falls back
    # CLI: python -m repro accuracy --model vgg13 --engine-backend lowmem
    # CLI: python -m repro backends   # list backends + availability

An unavailable backend (e.g. ``numba`` without the package) resolves to the
numpy backend with a warning, so scripts stay portable.

Cross-plan reuse
----------------
A Table III-style sweep re-runs the *same* trained network and the *same*
eval batches under many execution plans, so most of the simulated work is
plan-invariant and the executor reuses it at two levels:

* **Activation codes** — the quantized input codes of the first MAC layer
  depend only on the images, so they are cached per input batch (keyed by
  the identity of the underlying buffer) and reused across plans.  Disable
  with ``reuse_plan_invariant_acts=False`` if the caller mutates input
  arrays in place between calls.
* **Plan-invariant prefix** — per-layer plans usually leave the early
  layers exact, so whole leading chunks of the network compute identical
  outputs under several plans of a sweep.  :meth:`ApproximateExecutor.\
set_plan_context` takes the sweep's plan set and resolves its sharing
  structure (via :meth:`ProductModel.fingerprint`): at every depth where
  two or more plans stop agreeing, ``forward`` records the shared
  prefix's boundary activations per input batch, and later calls under a
  plan matching a recorded prefix resume at the deepest such checkpoint —
  the classical "deepest prefix all plans agree on" is the shallowest of
  these levels.  The quantized input codes of each checkpoint layer are
  plan-invariant among the sharing plans and join the activation-code
  cache above.  Each checkpoint costs one float copy of the boundary
  activations the remaining layers consume (typically a single
  ``(batch, H, W, C)`` array); ``prefix_cache_batches`` bounds the number
  of retained batches per depth.  Pair with
  :func:`repro.simulation.campaign.order_plan_cells`, which orders sweep
  cells so prefix-sharing plans run back to back.  Disable with
  ``reuse_plan_invariant_prefix=False`` (the CLI exposes this as
  ``--no-prefix-reuse``).

Both reuse levels are bit-exact: a cached value is only ever substituted
for a recomputation that would have produced the identical array.
"""

from __future__ import annotations

import abc
import hashlib
import weakref
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.accelerator_model import AcceleratorConfig
from repro.core.backends import EngineBackend, resolve_backend
from repro.core.approx_conv import (
    accurate_product_sums,
    lut_product_sums,
    perforated_product_sums,
)
from repro.core.control_variate import ControlVariate
from repro.core.product_kernels import (
    AccurateKernel,
    CallbackKernel,
    KernelOptions,
    LUTKernel,
    PerforatedKernel,
    ProductKernel,
)
from repro.multipliers.base import Multiplier
from repro.nn.graph import Graph
from repro.nn.im2col import im2col
from repro.nn.layers import Conv2D, Dense
from repro.quantization.qlayers import QuantizedLinearOp
from repro.quantization.quantize import calibrate_minmax, calibrate_percentile, quantize
from repro.quantization.schemes import QuantParams


class ProductModel(abc.ABC):
    """Strategy producing the raw product sums of one quantized linear op."""

    @abc.abstractmethod
    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        """Return ``sum_j product(wq_j, aq_j)`` of shape ``(patches, filters)``."""

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        """Compile this model against one layer's weights (run once per plan).

        The default implementation wraps :meth:`product_sums`; subclasses
        with an exploitable structure return a specialized kernel instead.
        ``options`` carries backend-tunable knobs (see
        :class:`~repro.core.product_kernels.KernelOptions`); models honor
        the knobs that apply to them and ignore the rest.
        """
        return CallbackKernel(self, weight_codes, control_variate)

    def fingerprint(self) -> tuple:
        """Hashable token identifying the *numerical behavior* of this model.

        Two product models with equal fingerprints produce bit-identical
        product sums for every input, which is what the cross-plan prefix
        reuse keys on.  The default is instance identity — conservative but
        never wrong; subclasses whose behavior is fully determined by their
        configuration return a structural token instead.  The instance is
        anchored by a weak reference (never a raw ``id()``): fingerprints
        outlive the plan objects inside cached checkpoints, and a recycled
        id must not let a new, different model match an old checkpoint.  A
        dead weakref only compares equal to itself.
        """
        return (type(self).__qualname__, weakref.ref(self))

    @property
    def name(self) -> str:
        return type(self).__name__


class AccurateProduct(ProductModel):
    """Exact integer products — the accurate MAC array."""

    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        return accurate_product_sums(act_codes, weight_codes)

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        return AccurateKernel(weight_codes)

    def fingerprint(self) -> tuple:
        return ("accurate",)


class PerforatedProduct(ProductModel):
    """Perforated multiplier, optionally corrected by the control variate.

    ``m = 0`` is the degenerate accurate array: products are identical to
    :class:`AccurateProduct` and the control-variate correction is exactly
    zero, matching :func:`repro.core.approx_conv.perforated_product_sums`.
    """

    def __init__(self, m: int, use_control_variate: bool = True):
        if not 0 <= int(m) < 8:
            raise ValueError(f"m must be within [0, 7], got {m}")
        self.m = int(m)
        self.use_control_variate = bool(use_control_variate)

    @classmethod
    def from_config(cls, config: AcceleratorConfig) -> "ProductModel":
        """Product model implied by an accelerator configuration."""
        if not config.is_approximate:
            return AccurateProduct()
        return cls(config.perforation, config.use_control_variate)

    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        cv = control_variate if self.use_control_variate else None
        return perforated_product_sums(act_codes, weight_codes, self.m, cv)

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        cv = control_variate if self.use_control_variate else None
        return PerforatedKernel(weight_codes, self.m, cv)

    def fingerprint(self) -> tuple:
        # m=0 is bit-identical to the accurate array (the control-variate
        # correction is exactly zero), so it shares the accurate fingerprint.
        if self.m == 0:
            return ("accurate",)
        return ("perforated", self.m, self.use_control_variate)

    @property
    def name(self) -> str:
        suffix = "+V" if self.use_control_variate else ""
        return f"perforated_m{self.m}{suffix}"


class LUTProduct(ProductModel):
    """Arbitrary approximate multiplier evaluated through its 256x256 LUT."""

    def __init__(self, multiplier: Multiplier, chunk_patches: int = 256):
        self.multiplier = multiplier
        self._lut = multiplier.build_lut()
        self.chunk_patches = int(chunk_patches)
        # Products are fully determined by the table contents, so the
        # fingerprint digests the table — two LUT products over equal tables
        # are interchangeable regardless of the multiplier's name.
        self._lut_digest = hashlib.sha1(
            np.ascontiguousarray(self._lut).tobytes()
        ).hexdigest()

    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        return lut_product_sums(
            act_codes, weight_codes, self._lut, chunk_patches=self.chunk_patches
        )

    @property
    def lut(self) -> np.ndarray:
        """The precomputed 256x256 product table (shared by all backends)."""
        return self._lut

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options: KernelOptions | None = None,
    ) -> ProductKernel:
        if options is None:
            options = KernelOptions()
        return LUTKernel(
            weight_codes,
            self._lut,
            max_error_matrix_bytes=options.max_error_matrix_bytes,
        )

    def fingerprint(self) -> tuple:
        return ("lut", self._lut_digest)

    @property
    def name(self) -> str:
        return f"lut[{self.multiplier.name}]"


@dataclass
class ExecutionPlan:
    """Assignment of a product model to every MAC (conv/dense) node."""

    default: ProductModel
    per_layer: dict[str, ProductModel]

    @classmethod
    def uniform(cls, model: ProductModel) -> "ExecutionPlan":
        """Use the same product model for every layer."""
        return cls(default=model, per_layer={})

    @classmethod
    def from_config(cls, config: AcceleratorConfig) -> "ExecutionPlan":
        """Plan implied by a single accelerator configuration."""
        return cls.uniform(PerforatedProduct.from_config(config))

    def model_for(self, layer_name: str) -> ProductModel:
        return self.per_layer.get(layer_name, self.default)

    def with_layer(self, layer_name: str, model: ProductModel) -> "ExecutionPlan":
        """Return a copy of the plan with one layer overridden."""
        per_layer = dict(self.per_layer)
        per_layer[layer_name] = model
        return ExecutionPlan(default=self.default, per_layer=per_layer)

    def fingerprints(self, layer_names: "Sequence[str]") -> tuple:
        """Per-layer :meth:`ProductModel.fingerprint` tokens of this plan.

        Two plans with equal fingerprints over the same layer names compute
        bit-identical outputs through those layers — the invariant behind
        cross-plan prefix reuse and the prefix-aware sweep scheduler.
        """
        return tuple(self.model_for(name).fingerprint() for name in layer_names)


def plan_fingerprint_sort_key(fingerprints: Sequence[tuple]) -> tuple[str, ...]:
    """Lexicographic sort key of one plan's per-layer fingerprint sequence.

    Fingerprint elements are heterogeneous tuples (strings, ints, weakrefs),
    so sequences are compared by element ``repr`` to avoid cross-type
    comparisons.  Equal prefixes sort adjacent — the property both the
    executor's checkpoint-depth computation and the sweep scheduler
    (:func:`repro.simulation.campaign.order_plan_cells`) rely on; they must
    share this key so schedule adjacency matches checkpoint structure.
    """
    return tuple(repr(fp) for fp in fingerprints)


@dataclass
class _QuantizedMacNode:
    """Pre-quantized data of one conv/dense node (one entry per group)."""

    node_name: str
    ops: list[QuantizedLinearOp]
    weight_overrides: list[np.ndarray | None]
    control_variates: list[ControlVariate]
    act_params: QuantParams


@dataclass(frozen=True)
class _PlanContext:
    """Resolved plan-invariant structure of one sweep's plan set.

    Built by :meth:`ApproximateExecutor.set_plan_context`.  ``depths`` are
    the checkpoint depths — the MAC-layer counts at which at least two
    plans of the set stop agreeing (every pairwise longest-common-prefix
    length).  For each depth ``d``: ``boundary_index[d]`` is the node index
    of MAC layer ``d`` (``len(nodes)`` when ``d`` covers the whole net),
    ``needed[d]`` names the activations the remaining nodes consume, and
    ``shared[d]`` holds the fingerprint prefixes of length ``d`` assigned
    by two or more plans — the only prefixes worth checkpointing.
    ``global_depth`` is the deepest prefix on which *all* plans agree.
    ``checkpoint_macs`` maps each checkpoint MAC layer name to its depth.
    """

    mac_names: tuple[str, ...]
    depths: tuple[int, ...]
    max_depth: int
    global_depth: int
    boundary_index: dict[int, int]
    needed: dict[int, tuple[str, ...]]
    shared: dict[int, frozenset]
    checkpoint_macs: dict[str, int]


#: Row budget of one stacked suffix launch (images per chunk scale as
#: target // lines).  Tuned empirically: far below it the chunked walk
#: degenerates into the per-plan loop's call counts; far above it the
#: stacked activations (and every astype/matmul temp behind them) fall out
#: of cache into allocation churn.
_STACKED_ROWS_TARGET = 256

class ApproximateExecutor:
    """Runs a trained model with quantized, possibly approximate, MAC layers.

    Parameters
    ----------
    model:
        The trained float model.
    calibration_images:
        A batch of representative inputs used to calibrate the activation
        quantizers of every MAC layer (post-training quantization).
    activation_percentile:
        Percentile used for activation calibration; 100 gives min/max.
    use_compiled:
        Run each MAC layer through its compiled
        :class:`~repro.core.product_kernels.ProductKernel` (compiled once
        per (layer, group, product model) and cached).  Disable to force
        the legacy per-batch ``ProductModel.product_sums`` path; both paths
        are bit-exact.
    engine_backend:
        Name (or instance) of the :class:`~repro.core.backends.EngineBackend`
        that compiles the kernels — ``"numpy"`` (default), ``"numba"`` or
        ``"lowmem"``.  An unavailable backend falls back to numpy with a
        warning; all backends are bit-exact.
    reuse_plan_invariant_acts:
        Cache the quantized activation codes of the first MAC layer (and,
        under an active plan context, of every checkpoint-depth MAC layer —
        their inputs are cached prefix boundaries) per input batch and
        reuse them across execution plans.  The cache is keyed by the
        identity of the input buffer — disable when input arrays are
        mutated in place between ``forward`` calls.
    act_cache_batches:
        How many distinct batches the plan-invariant cache retains per
        layer (LRU).  A multi-plan sweep over an eval set of up to
        ``act_cache_batches`` batches quantizes each batch once; each entry
        costs one uint8 copy of the first MAC layer's input.
    reuse_plan_invariant_prefix:
        Under an active plan context (:meth:`set_plan_context`), checkpoint
        the boundary activations of plan-shared layer prefixes per input
        batch and resume ``forward`` at the deepest checkpoint matching
        the plan.  A sweep cell then re-runs only the layers past its last
        shared prefix.  Bit-exact; disable to force full re-execution (the
        CLI exposes this as ``--no-prefix-reuse``).
    prefix_cache_batches:
        How many distinct batches the prefix cache retains per checkpoint
        depth (LRU); defaults to ``act_cache_batches``.  Each entry costs
        one float copy of the boundary activations the remaining layers
        consume — typically a single ``(batch, H, W, C)`` array, so sized
        like one input batch of the checkpoint layer.
    """

    def __init__(
        self,
        model: Graph,
        calibration_images: np.ndarray,
        activation_percentile: float = 99.9,
        use_compiled: bool = True,
        engine_backend: str | EngineBackend | None = None,
        reuse_plan_invariant_acts: bool = True,
        act_cache_batches: int = 16,
        reuse_plan_invariant_prefix: bool = True,
        prefix_cache_batches: int | None = None,
    ):
        self.model = model
        self.use_compiled = bool(use_compiled)
        self.engine_backend = resolve_backend(engine_backend)
        self._nodes: dict[str, _QuantizedMacNode] = {}
        # Compiled kernels, keyed by product-model instance (weakly, so plans
        # can be discarded) then by (layer, group).
        self._kernel_cache: "weakref.WeakKeyDictionary[ProductModel, dict[tuple[str, int], ProductKernel]]" = (
            weakref.WeakKeyDictionary()
        )
        # Batch-persistent uint8 activation-code buffers per (layer, group).
        self._act_buffers: dict[tuple[str, int], np.ndarray] = {}
        # Cross-plan reuse of plan-invariant quantized activations: the
        # first MAC layer's input never depends on the plan, and the first
        # *divergent* MAC layer's input is plan-invariant within a plan
        # context.  Per layer key, a small LRU of (identity token, codes)
        # pairs keeps reuse alive for batched eval sets, not just
        # single-batch calls.
        self.reuse_plan_invariant_acts = bool(reuse_plan_invariant_acts)
        self.act_cache_batches = int(act_cache_batches)
        mac_nodes = model.conv_dense_nodes()
        self._first_mac_name = mac_nodes[0].name if mac_nodes else None
        self._act_cache: dict[tuple[str, int], list[tuple[tuple, np.ndarray]]] = {}
        self.act_cache_hits = 0
        self.act_cache_misses = 0
        # Cross-plan reuse of plan-invariant layer prefixes: under an active
        # plan context, per-depth LRUs of (identity token, fingerprint
        # prefix, boundary activations) checkpoints let forward calls
        # resume at the deepest layer whose prefix matches the plan.
        self.reuse_plan_invariant_prefix = bool(reuse_plan_invariant_prefix)
        self.prefix_cache_batches = int(
            act_cache_batches if prefix_cache_batches is None else prefix_cache_batches
        )
        self._plan_context: _PlanContext | None = None
        self._prefix_cache: dict[int, list[tuple[tuple, tuple, dict[str, np.ndarray]]]] = {}
        # Set by logits() while an eval set cycles through more batches than
        # the LRU can hold: storing checkpoints would then evict every entry
        # before its batch comes around again — maximum memory, zero hits.
        self._suppress_prefix_stores = False
        self.prefix_cache_hits = 0
        self.prefix_cache_misses = 0
        # Fused multi-plan launches: compiled MultiPlanKernels keyed by
        # (layer, group, per-block fingerprints), plus the observability
        # counters surfaced through EvaluationService.stats().
        self._multi_kernel_cache: dict[tuple, object] = {}
        self.fused_launches = 0
        self.fused_plans_total = 0
        self._calibrate(calibration_images, activation_percentile)

    @classmethod
    def from_config(
        cls,
        model: Graph,
        calibration_images: np.ndarray,
        config: AcceleratorConfig,
        **kwargs,
    ) -> "ApproximateExecutor":
        """Executor honoring ``config.engine_backend``.

        Pair with :meth:`ExecutionPlan.from_config` on the same config to
        run the product model the accelerator configuration implies::

            executor = ApproximateExecutor.from_config(model, calib, config)
            logits = executor.forward(images, ExecutionPlan.from_config(config))
        """
        return cls(
            model,
            calibration_images,
            engine_backend=config.engine_backend,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def _calibrate(self, images: np.ndarray, percentile: float) -> None:
        _, activations = self.model.forward(images, training=False, return_activations=True)
        for node in self.model.conv_dense_nodes():
            layer = node.layer
            parent_output = activations[node.inputs[0]]
            if percentile >= 100.0:
                act_params = calibrate_minmax(parent_output)
            else:
                act_params = calibrate_percentile(parent_output, percentile)
            ops: list[QuantizedLinearOp] = []
            cvs: list[ControlVariate] = []
            for weight_matrix, bias in _group_weight_matrices(layer):
                weight_params = calibrate_minmax(weight_matrix)
                weight_codes = quantize(weight_matrix, weight_params)
                ops.append(QuantizedLinearOp(weight_codes, weight_params, bias))
                cvs.append(ControlVariate.from_weight_matrix(weight_codes))
            self._nodes[node.name] = _QuantizedMacNode(
                node_name=node.name,
                ops=ops,
                weight_overrides=[None] * len(ops),
                control_variates=cvs,
                act_params=act_params,
            )

    # ------------------------------------------------------------------
    def mac_layer_names(self) -> list[str]:
        """Names of the quantized MAC layers, in execution order."""
        return [node.name for node in self.model.conv_dense_nodes()]

    def quantized_weights(self, layer_name: str) -> list[np.ndarray]:
        """The uint8 weight matrices (one per group) of a MAC layer."""
        return [op.weight_codes for op in self._nodes[layer_name].ops]

    def set_weight_override(self, layer_name: str, codes_per_group: list[np.ndarray]) -> None:
        """Replace the weight codes used at inference time (ALWANN weight tuning).

        The override only affects the products sent to the MAC array; the
        dequantization, zero-point corrections and control variates keep
        using the original weights, mirroring how ALWANN retunes the stored
        weights without retraining.
        """
        node = self._nodes[layer_name]
        if len(codes_per_group) != len(node.ops):
            raise ValueError(
                f"expected {len(node.ops)} weight matrices for layer {layer_name!r}"
            )
        overrides: list[np.ndarray | None] = []
        for op, codes in zip(node.ops, codes_per_group):
            codes = np.asarray(codes, dtype=np.uint8)
            if codes.shape != op.weight_codes.shape:
                raise ValueError("override shape mismatch")
            overrides.append(codes)
        node.weight_overrides = overrides
        self._kernel_cache = weakref.WeakKeyDictionary()
        self._multi_kernel_cache = {}
        # Prefix checkpoints embed the (old) weights of prefix MAC layers.
        self._prefix_cache = {}

    def clear_weight_overrides(self) -> None:
        """Remove all inference-time weight overrides."""
        for node in self._nodes.values():
            node.weight_overrides = [None] * len(node.ops)
        self._kernel_cache = weakref.WeakKeyDictionary()
        self._multi_kernel_cache = {}
        self._prefix_cache = {}

    # ------------------------------------------------------------------
    # Plan-invariant prefix reuse
    # ------------------------------------------------------------------
    def plan_invariant_prefix(self, plans: Iterable[ExecutionPlan]) -> int:
        """Number of leading MAC layers on which all ``plans`` agree.

        Agreement is by :meth:`ProductModel.fingerprint`: the returned depth
        is the largest ``k`` such that every plan assigns a behaviorally
        identical product model to each of the first ``k`` MAC layers.
        """
        plans = list(plans)
        depth = 0
        for name in self.mac_layer_names():
            first = None
            for plan in plans:
                fp = plan.model_for(name).fingerprint()
                if first is None:
                    first = fp
                elif fp != first:
                    return depth
            depth += 1
        return depth

    def _prefix_boundary(self, depth: int) -> tuple[int, tuple[str, ...]]:
        """Node index of MAC layer ``depth`` and the activations needed past it."""
        mac_names = self.mac_layer_names()
        if depth < len(mac_names):
            boundary_index = next(
                i
                for i, node in enumerate(self.model.nodes)
                if node.name == mac_names[depth]
            )
        else:
            boundary_index = len(self.model.nodes)
        prefix_names = {node.name for node in self.model.nodes[:boundary_index]}
        needed = set()
        for node in self.model.nodes[boundary_index:]:
            for parent in node.inputs:
                if parent == "input" or parent in prefix_names:
                    needed.add(parent)
        if boundary_index == len(self.model.nodes):
            # The checkpoint covers the whole network: it *is* the output.
            needed.add(self.model.output_name)
        return boundary_index, tuple(sorted(needed))

    def set_plan_context(self, plans: Iterable[ExecutionPlan]) -> int:
        """Declare the plan set of an upcoming sweep; returns the global depth.

        Resolves the plan set's sharing structure and arms the prefix
        checkpoint cache: for every depth at which two or more plans stop
        agreeing, :meth:`forward` records the boundary activations of the
        shared prefix per input batch, and later calls under a plan
        matching a recorded prefix resume at the deepest such checkpoint
        instead of re-running the prefix.  Pair with a schedule that keeps
        prefix-sharing plans adjacent (see
        :func:`repro.simulation.campaign.order_plan_cells`) for maximal
        reuse.  Plans outside the declared set are still executed
        correctly — checkpoints are only substituted on an exact
        fingerprint-prefix match — so the context is always safe to leave
        armed.  Any previous context's checkpoints are dropped.

        Returns the deepest prefix on which *all* plans agree (the
        classical plan-invariant prefix).
        """
        plans = list(plans)
        if not plans:
            raise ValueError("plan context requires at least one plan")
        mac_names = tuple(self.mac_layer_names())
        global_depth = self.plan_invariant_prefix(plans)
        fp_seqs = [plan.fingerprints(mac_names) for plan in plans]
        # Checkpoint depths: every pairwise longest-common-prefix length.
        # Adjacent pairs of the lexicographically sorted sequences realize
        # every pairwise LCP, so sorting keeps this O(n log n).
        sorted_seqs = sorted(fp_seqs, key=plan_fingerprint_sort_key)
        depths: set[int] = set()
        for left, right in zip(sorted_seqs, sorted_seqs[1:]):
            lcp = 0
            while lcp < len(left) and left[lcp] == right[lcp]:
                lcp += 1
            if lcp > 0:
                depths.add(lcp)
        boundary_index: dict[int, int] = {}
        needed: dict[int, tuple[str, ...]] = {}
        shared: dict[int, frozenset] = {}
        for depth in depths:
            boundary_index[depth], needed[depth] = self._prefix_boundary(depth)
            # Only prefixes assigned by >= 2 plans can ever be re-used; a
            # singleton plan's checkpoint would just burn memory.
            counts: dict[tuple, int] = {}
            for seq in fp_seqs:
                counts[seq[:depth]] = counts.get(seq[:depth], 0) + 1
            shared[depth] = frozenset(fp for fp, n in counts.items() if n >= 2)
        ordered = tuple(sorted(depths))
        self._plan_context = _PlanContext(
            mac_names=mac_names,
            depths=ordered,
            max_depth=max(ordered) if ordered else 0,
            global_depth=global_depth,
            boundary_index=boundary_index,
            needed=needed,
            shared=shared,
            checkpoint_macs={
                mac_names[d]: d for d in ordered if d < len(mac_names)
            },
        )
        self._prefix_cache = {}
        return global_depth

    def clear_plan_context(self) -> None:
        """Drop the plan context and every prefix checkpoint."""
        self._plan_context = None
        self._prefix_cache = {}

    @property
    def plan_context(self) -> _PlanContext | None:
        """The active plan context, if any (read-only)."""
        return self._plan_context

    def reuse_stats(self) -> dict[str, int]:
        """Hit/miss counters of both cross-plan caches (cumulative)."""
        return {
            "act_cache_hits": self.act_cache_hits,
            "act_cache_misses": self.act_cache_misses,
            "prefix_cache_hits": self.prefix_cache_hits,
            "prefix_cache_misses": self.prefix_cache_misses,
        }

    def fused_stats(self) -> dict[str, int]:
        """Fused multi-plan launch counters (cumulative)."""
        return {
            "fused_launches": self.fused_launches,
            "fused_plans_total": self.fused_plans_total,
        }

    @property
    def fused_multi_plan(self) -> bool:
        """Whether :meth:`forward_many` can take the fused multi-plan path.

        Requires the compiled engine and a backend advertising the
        ``fused_multi_plan`` capability flag; otherwise ``forward_many``
        degrades to the bit-exact per-plan loop.
        """
        return self.use_compiled and self.engine_backend.fused_multi_plan

    # ------------------------------------------------------------------
    def forward(self, images: np.ndarray, plan: ExecutionPlan) -> np.ndarray:
        """Run quantized inference on ``images`` under ``plan``.

        With an armed plan context (:meth:`set_plan_context`), execution
        resumes at the deepest cached checkpoint whose fingerprint prefix
        matches ``plan`` for this batch, and records checkpoints at every
        context depth it passes whose prefix is shared with other plans of
        the set — bit-exact with full execution.
        """
        ctx = self._plan_context
        if ctx is not None and self.reuse_plan_invariant_prefix and ctx.depths:
            return self._forward_with_context(images, plan, ctx)
        return self._run_nodes({"input": images}, 0, plan)

    def _run_nodes(
        self,
        activations: dict[str, np.ndarray],
        start_index: int,
        plan: ExecutionPlan,
        checkpoints: "list[tuple[int, int, tuple, tuple]] | None" = None,
        token: tuple | None = None,
    ) -> np.ndarray:
        """Execute nodes from ``start_index`` on top of seeded ``activations``.

        ``checkpoints`` is an ascending list of pending snapshot points
        ``(node index, depth, fingerprint prefix, needed names)``: when
        execution reaches one, the named activations are recorded into the
        prefix cache under ``(token, fingerprint prefix)``.
        """
        pending = list(checkpoints) if checkpoints else []
        for index, node in enumerate(self.model.nodes[start_index:], start=start_index):
            while pending and pending[0][0] == index:
                self._store_checkpoint(activations, pending.pop(0), token)
            inputs = [activations[name] for name in node.inputs]
            if node.name in self._nodes:
                activations[node.name] = self._run_mac_node(
                    node.name, node.layer, inputs[0], plan.model_for(node.name)
                )
            else:
                activations[node.name] = node.layer.forward(*inputs, training=False)
        while pending:  # checkpoints at the very end of the network
            self._store_checkpoint(activations, pending.pop(0), token)
        return activations[self.model.output_name]

    def _store_checkpoint(
        self,
        activations: dict[str, np.ndarray],
        checkpoint: tuple[int, int, tuple, tuple],
        token: tuple,
    ) -> None:
        if self._suppress_prefix_stores:
            return
        _, depth, fp_prefix, needed = checkpoint
        # The boundary holds *references*, not copies.  This is safe because
        # every Layer.forward and ProductKernel allocates a fresh output
        # array per call (nothing upstream reuses a persistent output
        # buffer), and it is what lets the activation-code cache recognize
        # a resumed boundary array by identity.  If a prefix layer ever
        # gains a persistent output buffer, these entries must copy.
        boundary = {name: activations[name] for name in needed}
        entries = self._prefix_cache.setdefault(depth, [])
        entries.insert(0, (token, fp_prefix, boundary))
        del entries[self.prefix_cache_batches :]

    def _forward_with_context(
        self, images: np.ndarray, plan: ExecutionPlan, ctx: _PlanContext
    ) -> np.ndarray:
        """Forward pass resuming at the deepest matching prefix checkpoint."""
        fps = plan.fingerprints(ctx.mac_names[: ctx.max_depth])
        token = _array_identity_token(images)
        activations: dict[str, np.ndarray] | None = None
        start_index = 0
        resumed_depth = 0
        for depth in reversed(ctx.depths):
            entries = self._prefix_cache.get(depth)
            if not entries:
                continue
            fp_prefix = fps[:depth]
            for index, (cached_token, cached_fp, boundary) in enumerate(entries):
                if cached_fp == fp_prefix and _tokens_match(cached_token, token):
                    if index:
                        entries.insert(0, entries.pop(index))
                    activations = dict(boundary)
                    start_index = ctx.boundary_index[depth]
                    resumed_depth = depth
                    break
            if activations is not None:
                break
        if activations is None:
            self.prefix_cache_misses += 1
            activations = {"input": images}
        else:
            self.prefix_cache_hits += 1
            if start_index == len(self.model.nodes):
                return activations[self.model.output_name]
        # Snapshot points still ahead of the resume point whose prefix at
        # least one *other* plan of the context shares.
        checkpoints = [
            (ctx.boundary_index[depth], depth, fps[:depth], ctx.needed[depth])
            for depth in ctx.depths
            if depth > resumed_depth and fps[:depth] in ctx.shared[depth]
        ]
        return self._run_nodes(activations, start_index, plan, checkpoints, token)

    def logits(self, images: np.ndarray, plan: ExecutionPlan, batch_size: int = 256) -> np.ndarray:
        """Batched forward pass returning the concatenated logits.

        When the eval set spans more batches than ``prefix_cache_batches``,
        a plan-major sweep would evict every prefix checkpoint before its
        batch is revisited under the next plan — paying peak checkpoint
        memory for zero hits.  Checkpoint *stores* are therefore suppressed
        from batch ``prefix_cache_batches`` onward: the first cap-many
        batches stay pinned (same peak memory, never evicted in plan-major
        order), so every later plan still resumes on them; lookups and the
        activation-code cache work for all batches.
        """
        outputs = []
        previous = self._suppress_prefix_stores
        try:
            for batch_index, start in enumerate(range(0, images.shape[0], batch_size)):
                self._suppress_prefix_stores = (
                    previous or batch_index >= self.prefix_cache_batches
                )
                outputs.append(self.forward(images[start : start + batch_size], plan))
        finally:
            self._suppress_prefix_stores = previous
        return np.concatenate(outputs, axis=0)

    def predict(self, images: np.ndarray, plan: ExecutionPlan, batch_size: int = 256) -> np.ndarray:
        """Predicted class labels."""
        return self.logits(images, plan, batch_size=batch_size).argmax(axis=1)

    # ------------------------------------------------------------------
    # Fused multi-plan evaluation
    def forward_many(
        self, images: np.ndarray, plans: Sequence[ExecutionPlan]
    ) -> list[np.ndarray]:
        """Run quantized inference under every plan of ``plans`` at once.

        Bit-exact with ``[self.forward(images, p) for p in plans]``, but the
        shared plan-invariant prefix is walked once (resuming from PR 3
        checkpoints when the plan context is armed) and, from each divergence
        depth on, all diverging plans ride a single stacked backend launch
        per MAC layer (:meth:`EngineBackend.compile_multi`) instead of one
        launch per plan.  Falls back to the per-plan loop when the backend
        lacks the ``fused_multi_plan`` capability, the legacy (non-compiled)
        engine is selected, or only one distinct plan is present.
        """
        plans = list(plans)
        if not plans:
            return []
        if len(plans) == 1 or not self.fused_multi_plan:
            return [self.forward(images, plan) for plan in plans]
        mac_names = tuple(self.mac_layer_names())
        fp_seqs = [plan.fingerprints(mac_names) for plan in plans]
        # Dedupe plans by their full fingerprint sequence: identical plans
        # (even distinct objects) share one evaluation line.
        line_of: dict[tuple, int] = {}
        reps: list[ExecutionPlan] = []
        seqs: list[tuple] = []
        for plan, seq in zip(plans, fp_seqs):
            if seq not in line_of:
                line_of[seq] = len(reps)
                reps.append(plan)
                seqs.append(seq)
        if len(reps) == 1 or not mac_names:
            out = self.forward(images, reps[0])
            return [out] * len(plans)
        # Sort lines so prefix-sharing plans are adjacent: splits then form
        # contiguous runs and every divergence is a cut between neighbours.
        order = sorted(range(len(reps)), key=lambda i: plan_fingerprint_sort_key(seqs[i]))
        lines = [seqs[i] for i in order]
        line_plans = [reps[i] for i in order]
        position = {seq: pos for pos, seq in enumerate(lines)}
        stacked = self._forward_many_lines(images, lines, line_plans)
        batch = images.shape[0]
        return [
            stacked[position[seq] * batch : (position[seq] + 1) * batch]
            for seq in fp_seqs
        ]

    def _forward_many_lines(
        self,
        images: np.ndarray,
        lines: list[tuple],
        line_plans: list[ExecutionPlan],
    ) -> np.ndarray:
        """Stacked walk over deduped, sorted plan "lines"; returns the
        ``(lines * batch, ...)`` output stack in line order."""
        num_lines = len(lines)
        batch = images.shape[0]
        mac_names = tuple(self.mac_layer_names())
        mac_depth = {name: d for d, name in enumerate(mac_names)}
        depth_count = len(mac_names)
        # Adjacent LCPs of the sorted lines; splits[d] holds the boundary
        # positions (between line i and i+1) that open at MAC depth d.
        splits: dict[int, list[int]] = {}
        first_split = depth_count
        for i in range(num_lines - 1):
            left, right = lines[i], lines[i + 1]
            lcp = 0
            while lcp < depth_count and left[lcp] == right[lcp]:
                lcp += 1
            splits.setdefault(lcp, []).append(i)
            first_split = min(first_split, lcp)
        token = _array_identity_token(images)
        fps = lines[0]
        ctx = self._plan_context
        activations: dict[str, np.ndarray] | None = None
        start_index = 0
        resumed_depth = 0
        pending: list[tuple[int, int, tuple, tuple]] = []
        if ctx is not None and self.reuse_plan_invariant_prefix and ctx.depths:
            # Resume from the deepest checkpoint within the single-block
            # region (depth <= first_split: beyond it the walk is stacked
            # and checkpoint boundaries would no longer be per-plan arrays).
            for depth in reversed(ctx.depths):
                if depth > first_split:
                    continue
                entries = self._prefix_cache.get(depth)
                if not entries:
                    continue
                fp_prefix = fps[:depth]
                for index, (cached_token, cached_fp, boundary) in enumerate(entries):
                    if cached_fp == fp_prefix and _tokens_match(cached_token, token):
                        if index:
                            entries.insert(0, entries.pop(index))
                        activations = dict(boundary)
                        start_index = ctx.boundary_index[depth]
                        resumed_depth = depth
                        break
                if activations is not None:
                    break
            if activations is None:
                self.prefix_cache_misses += 1
            else:
                self.prefix_cache_hits += 1
            pending = sorted(
                (ctx.boundary_index[depth], depth, fps[:depth], ctx.needed[depth])
                for depth in ctx.depths
                if resumed_depth < depth <= first_split
                and fps[:depth] in ctx.shared[depth]
            )
        if activations is None:
            activations = {"input": images}
        nodes = self.model.nodes
        # The walk is two-phase.  Phase 1 runs the single-block shared
        # prefix at the FULL image batch — exactly like the per-plan path,
        # so checkpoint/activation-cache tokens line up with it and reuse
        # carries across groups.  Phase 2 (from the first splitting MAC on)
        # is the stacked walk, chunked over images so each launch carries
        # ~batch rows: feeding it lines * batch rows at once would blow the
        # arrays (and every astype/matmul behind them) past cache into
        # allocation churn — measurably slower than the loop it replaces.
        split_index = len(nodes)
        for index, node in enumerate(nodes):
            depth = mac_depth.get(node.name)
            if depth is not None and depth in splits:
                split_index = index
                break
        for index in range(start_index, split_index):
            node = nodes[index]
            while pending and pending[0][0] == index:
                self._store_checkpoint(activations, pending.pop(0), token)
            depth = mac_depth.get(node.name)
            if depth is not None:
                activations[node.name] = self._run_mac_node(
                    node.name,
                    node.layer,
                    activations[node.inputs[0]],
                    line_plans[0].model_for(node.name),
                )
            else:
                inputs = [activations[name] for name in node.inputs]
                activations[node.name] = node.layer.forward(*inputs, training=False)
        while pending:  # boundaries at or before the first splitting MAC
            self._store_checkpoint(activations, pending.pop(0), token)
        if split_index >= len(nodes):  # pragma: no cover - lines must differ
            out = activations[self.model.output_name]
            return np.concatenate([out] * num_lines, axis=0)
        needed = self._names_needed_from(split_index)
        live = {name: arr for name, arr in activations.items() if name in needed}
        chunk_rows = max(16, _STACKED_ROWS_TARGET // num_lines)
        if chunk_rows >= batch:
            return self._stacked_suffix(
                live, batch, split_index, line_plans, splits, mac_depth
            )
        num_chunks = -(-batch // chunk_rows)
        bounds = [(i * batch) // num_chunks for i in range(num_chunks + 1)]
        chunks: list[np.ndarray] = []
        sizes: list[int] = []
        for start, stop in zip(bounds, bounds[1:]):
            sliced = {name: arr[start:stop] for name, arr in live.items()}
            chunks.append(
                self._stacked_suffix(
                    sliced, stop - start, split_index, line_plans, splits, mac_depth
                )
            )
            sizes.append(stop - start)
        return np.concatenate(
            [
                chunk[line * size : (line + 1) * size]
                for line in range(num_lines)
                for chunk, size in zip(chunks, sizes)
            ],
            axis=0,
        )

    def _stacked_suffix(
        self,
        activations: dict[str, np.ndarray],
        batch: int,
        start_index: int,
        line_plans: list[ExecutionPlan],
        splits: dict[int, list[int]],
        mac_depth: dict[str, int],
    ) -> np.ndarray:
        """Stacked walk from the first splitting MAC to the output.

        ``activations`` holds single-block arrays of ``batch`` rows;
        returns the ``(lines * batch, ...)`` line-major output stack."""
        num_lines = len(line_plans)
        runs: list[tuple[int, int]] = [(0, num_lines)]
        nodes = self.model.nodes
        for index in range(start_index, len(nodes)):
            node = nodes[index]
            depth = mac_depth.get(node.name)
            shared_split = False
            if depth is not None and depth in splits:
                cuts = splits[depth]
                new_runs: list[tuple[int, int]] = []
                counts: list[int] = []
                for s, e in runs:
                    inner = [i for i in cuts if s <= i < e - 1]
                    bounds = [s] + [i + 1 for i in inner] + [e]
                    counts.append(len(bounds) - 1)
                    new_runs.extend(zip(bounds, bounds[1:]))
                shared_split = len(runs) == 1 and counts[0] > 1
                mac_input = node.inputs[0]
                raw_input = activations[mac_input]
                needed = self._names_needed_from(index)
                needed_after = self._names_needed_from(index + 1)
                expanded: dict[str, np.ndarray] = {}
                for name, arr in activations.items():
                    if name not in needed:
                        continue
                    if shared_split and name == mac_input and name not in needed_after:
                        # Consumed only by the fused shared-input launch;
                        # skip the blockwise copy entirely.
                        continue
                    expanded[name] = _expand_line_blocks(arr, batch, counts)
                activations = expanded
                runs = new_runs
                x = raw_input if shared_split else activations[node.inputs[0]]
            elif depth is not None:
                x = activations[node.inputs[0]]
            if depth is not None:
                models = [line_plans[s].model_for(node.name) for s, _ in runs]
                if len(runs) == 1 or len({m.fingerprint() for m in models}) == 1:
                    activations[node.name] = self._run_mac_node(
                        node.name, node.layer, x, models[0]
                    )
                else:
                    activations[node.name] = self._run_mac_node_multi(
                        node.name, node.layer, x, models, shared_split
                    )
            else:
                inputs = [activations[name] for name in node.inputs]
                activations[node.name] = node.layer.forward(*inputs, training=False)
        return activations[self.model.output_name]

    def _names_needed_from(self, index: int) -> set[str]:
        """Activation names any node from ``index`` on still consumes."""
        needed = {self.model.output_name}
        for node in self.model.nodes[index:]:
            needed.update(node.inputs)
        return needed

    def logits_many(
        self,
        images: np.ndarray,
        plans: Sequence[ExecutionPlan],
        batch_size: int = 256,
    ) -> list[np.ndarray]:
        """Batched :meth:`forward_many`; one concatenated logits array per plan.

        Applies the same checkpoint-store suppression policy as
        :meth:`logits` from batch ``prefix_cache_batches`` onward.
        """
        plans = list(plans)
        if not plans:
            return []
        outputs: list[list[np.ndarray]] = [[] for _ in plans]
        previous = self._suppress_prefix_stores
        try:
            for batch_index, start in enumerate(range(0, images.shape[0], batch_size)):
                self._suppress_prefix_stores = (
                    previous or batch_index >= self.prefix_cache_batches
                )
                batch_out = self.forward_many(images[start : start + batch_size], plans)
                for chunks, out in zip(outputs, batch_out):
                    chunks.append(out)
        finally:
            self._suppress_prefix_stores = previous
        return [np.concatenate(chunks, axis=0) for chunks in outputs]

    def predict_many(
        self,
        images: np.ndarray,
        plans: Sequence[ExecutionPlan],
        batch_size: int = 256,
    ) -> list[np.ndarray]:
        """Predicted class labels per plan, via the fused multi-plan path."""
        return [
            logits.argmax(axis=1)
            for logits in self.logits_many(images, plans, batch_size=batch_size)
        ]

    def _run_mac_node_multi(
        self,
        name: str,
        layer: Conv2D | Dense,
        x: np.ndarray,
        models: list[ProductModel],
        shared: bool,
    ) -> np.ndarray:
        """One fused launch evaluating ``len(models)`` plan blocks of a MAC.

        ``shared=False``: ``x`` is the block-stacked input (``blocks *
        batch`` leading rows).  ``shared=True``: ``x`` is a single shared
        block and the output fans out to ``len(models)`` stacked blocks.
        """
        qnode = self._nodes[name]
        if isinstance(layer, Conv2D):
            return self._run_conv_multi(layer, qnode, x, models, shared)
        return self._run_dense_multi(qnode, x, models, shared)

    def _run_conv_multi(
        self,
        layer: Conv2D,
        qnode: _QuantizedMacNode,
        x: np.ndarray,
        models: list[ProductModel],
        shared: bool,
    ) -> np.ndarray:
        out_images = x.shape[0] * (len(models) if shared else 1)
        cin_per_group = layer.in_channels // layer.groups
        cout_per_group = layer.out_channels // layer.groups
        codes = self._quantize_acts(qnode, -1, x)
        pad_code = int(np.clip(qnode.act_params.zero_point, 0, 255))
        outputs = []
        for g in range(layer.groups):
            codes_g = codes[..., g * cin_per_group : (g + 1) * cin_per_group]
            act_codes, out_h, out_w = im2col(
                codes_g,
                layer.kernel_size,
                layer.kernel_size,
                layer.stride,
                layer.pad,
                pad_value=pad_code,
            )
            out_flat = self._run_group_multi(qnode, g, act_codes, models, shared)
            outputs.append(out_flat.reshape(out_images, out_h, out_w, cout_per_group))
        return np.concatenate(outputs, axis=-1) if layer.groups > 1 else outputs[0]

    def _run_dense_multi(
        self,
        qnode: _QuantizedMacNode,
        x: np.ndarray,
        models: list[ProductModel],
        shared: bool,
    ) -> np.ndarray:
        act_codes = self._quantize_acts(qnode, 0, x)
        return self._run_group_multi(qnode, 0, act_codes, models, shared)

    _MULTI_KERNEL_CACHE_CAP = 256

    def _multi_kernel_for(
        self, qnode: _QuantizedMacNode, group: int, models: list[ProductModel]
    ):
        """Compiled fused kernel for one per-block model assignment."""
        fps = tuple(model.fingerprint() for model in models)
        key = (qnode.node_name, group, fps)
        kernel = self._multi_kernel_cache.get(key)
        if kernel is None:
            # Per-block kernels deduped by fingerprint: blocks repeating a
            # model reuse one compiled kernel (and its LUT error matrix).
            by_fp: dict[tuple, ProductKernel] = {}
            kernels = []
            for model, fp in zip(models, fps):
                block_kernel = by_fp.get(fp)
                if block_kernel is None:
                    block_kernel = self._kernel_for(qnode, group, model)
                    by_fp[fp] = block_kernel
                kernels.append(block_kernel)
            override = qnode.weight_overrides[group]
            weight_codes = (
                override if override is not None else qnode.ops[group].weight_codes
            )
            kernel = self.engine_backend.compile_multi(
                models, weight_codes, qnode.control_variates[group], kernels=kernels
            )
            if len(self._multi_kernel_cache) >= self._MULTI_KERNEL_CACHE_CAP:
                self._multi_kernel_cache.pop(next(iter(self._multi_kernel_cache)))
            self._multi_kernel_cache[key] = kernel
        return kernel

    def _run_group_multi(
        self,
        qnode: _QuantizedMacNode,
        group: int,
        act_codes: np.ndarray,
        models: list[ProductModel],
        shared: bool,
    ) -> np.ndarray:
        op = qnode.ops[group]
        kernel = self._multi_kernel_for(qnode, group, models)
        sums = kernel.product_sums_multi(act_codes, shared=shared)
        self.fused_launches += 1
        self.fused_plans_total += len(models)
        if shared:
            # Every correction is per-patch, so the stacked variant (act
            # terms computed once, broadcast across blocks) reproduces the
            # per-block output_real calls bit-exactly without tiling.
            return op.output_real_stacked(
                act_codes, qnode.act_params, sums, len(models)
            )
        return op.output_real(act_codes, qnode.act_params, product_sum=sums)

    # ------------------------------------------------------------------
    def _run_mac_node(
        self,
        name: str,
        layer: Conv2D | Dense,
        x: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        qnode = self._nodes[name]
        if isinstance(layer, Conv2D):
            return self._run_conv(layer, qnode, x, product_model)
        return self._run_dense(layer, qnode, x, product_model)

    def _run_conv(
        self,
        layer: Conv2D,
        qnode: _QuantizedMacNode,
        x: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        batch = x.shape[0]
        cin_per_group = layer.in_channels // layer.groups
        cout_per_group = layer.out_channels // layer.groups
        outputs = []
        if self.use_compiled:
            # Quantize once on the compact NHWC input, then unfold the uint8
            # codes (padding with the zero-point code, i.e. quantize(0)) —
            # elementwise identical to unfold-then-quantize, but the im2col
            # gather duplicates every pixel ~k^2 times, so this quantizes up
            # to k^2 x less data and gathers uint8 instead of float64.
            codes = self._quantize_acts(qnode, -1, x)
            pad_code = int(np.clip(qnode.act_params.zero_point, 0, 255))
            for g in range(layer.groups):
                codes_g = codes[..., g * cin_per_group : (g + 1) * cin_per_group]
                act_codes, out_h, out_w = im2col(
                    codes_g,
                    layer.kernel_size,
                    layer.kernel_size,
                    layer.stride,
                    layer.pad,
                    pad_value=pad_code,
                )
                out_flat = self._run_group(qnode, g, act_codes, product_model)
                outputs.append(out_flat.reshape(batch, out_h, out_w, cout_per_group))
            return np.concatenate(outputs, axis=-1) if layer.groups > 1 else outputs[0]
        for g in range(layer.groups):
            x_g = x[..., g * cin_per_group : (g + 1) * cin_per_group]
            cols, out_h, out_w = im2col(
                x_g, layer.kernel_size, layer.kernel_size, layer.stride, layer.pad
            )
            act_codes = self._quantize_acts(qnode, g, cols)
            out_flat = self._run_group(qnode, g, act_codes, product_model)
            outputs.append(out_flat.reshape(batch, out_h, out_w, cout_per_group))
        return np.concatenate(outputs, axis=-1) if layer.groups > 1 else outputs[0]

    def _run_dense(
        self,
        layer: Dense,
        qnode: _QuantizedMacNode,
        x: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        act_codes = self._quantize_acts(qnode, 0, x)
        return self._run_group(qnode, 0, act_codes, product_model)

    def _quantize_acts(self, qnode: _QuantizedMacNode, group: int, cols: np.ndarray) -> np.ndarray:
        """Quantize activations into a per-(layer, group) persistent buffer.

        The buffer is reallocated whenever an incoming batch is larger than
        the current buffer or differs in any trailing (patch/feature) shape;
        smaller batches reuse a leading slice of it, so a batch-size change
        between calls can never write into (or return) a stale-shaped
        window.  Group ``-1`` holds the whole NHWC input of a conv node
        (compiled path).  For the first MAC layer — and, under an active
        plan context, the first plan-*divergent* MAC layer, whose input is
        the plan-invariant prefix's cached output — the input does not
        depend on the plan, so when a batch (same underlying buffer, offset
        and shape) arrives again — e.g. the next plan of a sweep re-running
        the same eval set — its previous quantization is returned from a
        per-layer LRU of up to ``act_cache_batches`` batches instead of
        being recomputed.
        """
        key = (qnode.node_name, group)
        if self.reuse_plan_invariant_acts and self._is_act_reuse_input(
            qnode.node_name, cols
        ):
            token = _array_identity_token(cols)
            entries = self._act_cache.setdefault(key, [])
            for index, (cached_token, codes) in enumerate(entries):
                if _tokens_match(cached_token, token):
                    self.act_cache_hits += 1
                    if index:
                        entries.insert(0, entries.pop(index))
                    return codes
            # Cached batches get private arrays (not the shared buffer, which
            # the next batch would overwrite).
            codes = quantize(cols, qnode.act_params)
            self.act_cache_misses += 1
            entries.insert(0, (token, codes))
            del entries[self.act_cache_batches :]
            return codes
        buffer = self._act_buffers.get(key)
        if buffer is None or buffer.shape[0] < cols.shape[0] or buffer.shape[1:] != cols.shape[1:]:
            buffer = np.empty(cols.shape, dtype=np.uint8)
            self._act_buffers[key] = buffer
        return quantize(cols, qnode.act_params, out=buffer[: cols.shape[0]])

    def _is_act_reuse_input(self, node_name: str, cols: np.ndarray) -> bool:
        """Whether ``cols`` is a plan-invariant input worth caching codes for.

        The first MAC layer always qualifies (its input is the raw image
        pipeline).  Under an active plan context a checkpoint-depth MAC
        layer qualifies when its input *is* a boundary array currently held
        by the prefix cache at that depth — the only arrays that will ever
        arrive again under another plan.  A transient activation computed
        by a plan that shares no prefix there would leave a permanently
        dead (never-matching) cache entry, so it stays on the persistent
        reusable buffer path instead.
        """
        if node_name == self._first_mac_name:
            return True
        ctx = self._plan_context
        if ctx is None or not self.reuse_plan_invariant_prefix:
            return False
        depth = ctx.checkpoint_macs.get(node_name)
        if depth is None:
            return False
        return any(
            cols is arr
            for _, _, boundary in self._prefix_cache.get(depth, ())
            for arr in boundary.values()
        )

    def _kernel_for(
        self, qnode: _QuantizedMacNode, group: int, product_model: ProductModel
    ) -> ProductKernel:
        per_model = self._kernel_cache.get(product_model)
        if per_model is None:
            per_model = {}
            self._kernel_cache[product_model] = per_model
        key = (qnode.node_name, group)
        kernel = per_model.get(key)
        if kernel is None:
            override = qnode.weight_overrides[group]
            weight_codes = (
                override if override is not None else qnode.ops[group].weight_codes
            )
            kernel = self.engine_backend.compile(
                product_model, weight_codes, qnode.control_variates[group]
            )
            per_model[key] = kernel
        return kernel

    def _run_group(
        self,
        qnode: _QuantizedMacNode,
        group: int,
        act_codes: np.ndarray,
        product_model: ProductModel,
    ) -> np.ndarray:
        op = qnode.ops[group]
        if self.use_compiled:
            sums = self._kernel_for(qnode, group, product_model)(act_codes)
        else:
            override = qnode.weight_overrides[group]
            weight_codes = override if override is not None else op.weight_codes
            sums = product_model.product_sums(
                act_codes, weight_codes, qnode.control_variates[group]
            )
        return op.output_real(act_codes, qnode.act_params, product_sum=sums)


def _expand_line_blocks(arr: np.ndarray, rows: int, counts: Sequence[int]) -> np.ndarray:
    """Repeat each ``rows``-sized leading block of ``arr`` blockwise.

    Block ``i`` (rows ``i*rows:(i+1)*rows``) appears ``counts[i]`` times in
    the result, in order — the layout change a run split applies to every
    live activation of the stacked multi-plan walk.
    """
    if all(count == 1 for count in counts):
        return arr
    blocks: list[np.ndarray] = []
    for i, count in enumerate(counts):
        block = arr[i * rows : (i + 1) * rows]
        blocks.extend([block] * count)
    return np.concatenate(blocks, axis=0)


def _array_identity_token(arr: np.ndarray) -> tuple:
    """Identity token of the memory window an array views.

    Two arrays get equal tokens iff they view the same window (same owning
    buffer, data pointer, shape and dtype) of a buffer that is still alive.
    The owning buffer is anchored by a weak reference, so a token can never
    collide with a later array that merely reuses a freed object's ``id()``
    — a dead weakref only compares equal to itself.  Slices of one base
    array (``images[a:b]``) therefore match across calls, which is what the
    executor's cross-plan activation cache keys on.
    """
    base = arr
    while isinstance(base.base, np.ndarray):
        base = base.base
    return (
        weakref.ref(base),
        arr.__array_interface__["data"][0],
        arr.shape,
        arr.dtype.str,
    )


def _tokens_match(cached: tuple | None, current: tuple) -> bool:
    """Whether two identity tokens denote the same live memory window.

    The weakref element is dereferenced and compared by *identity* — never
    with ``==``, which for live ndarray referents would broadcast into an
    element-wise comparison.  A dead referent never matches.
    """
    if cached is None or cached[1:] != current[1:]:
        return False
    referent = cached[0]()
    return referent is not None and referent is current[0]()


def _group_weight_matrices(layer: Conv2D | Dense):
    """Yield ``(weight_matrix, bias)`` per group with the (taps, filters) layout."""
    if isinstance(layer, Conv2D):
        cout_per_group = layer.out_channels // layer.groups
        for g in range(layer.groups):
            bias = None
            if layer.use_bias:
                bias = layer.bias[g * cout_per_group : (g + 1) * cout_per_group]
            yield layer.weight_matrix(g), bias
    elif isinstance(layer, Dense):
        yield layer.weight, (layer.bias if layer.use_bias else None)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported MAC layer type: {type(layer).__name__}")
