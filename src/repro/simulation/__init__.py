"""Experiment machinery: approximate inference and experiment campaigns.

* :mod:`~repro.simulation.inference` — the TFApprox-equivalent executor: runs
  a trained float model with quantized convolution / dense layers whose
  product model can be the accurate multiplier, the perforated multiplier
  with or without the control variate, or any LUT multiplier (per layer).
  Each product model is *compiled* once per layer into a
  :class:`repro.core.product_kernels.ProductKernel` (cached by the
  executor), so the per-batch hot path is free of weight-side work — the
  LUT path in particular runs as two matrix products instead of a 3-D
  gather.
* :mod:`~repro.simulation.metrics` — accuracy and error metrics.
* :mod:`~repro.simulation.campaign` — the Table III sweep (six networks, two
  datasets, m = 1..3, with/without V), its multi-process variant
  :func:`~repro.simulation.campaign.parallel_sweep`, and the trained-model
  cache (keyed by the full training settings) that keeps benches fast and
  deterministic.  Both sweeps execute through the unified evaluation
  runtime (:mod:`repro.runtime`): one
  :class:`~repro.runtime.service.EvaluationService` publishes models and
  datasets once through shared memory and schedules cells prefix-aware
  across persistent workers.
"""

from repro.simulation.inference import (
    ProductModel,
    AccurateProduct,
    PerforatedProduct,
    LUTProduct,
    ExecutionPlan,
    ApproximateExecutor,
)
from repro.simulation.metrics import (
    accuracy,
    accuracy_loss_percent,
    output_error_stats,
    OutputErrorStats,
)
from repro.simulation.campaign import (
    TrainedModel,
    TrainedModelCache,
    TrainingSettings,
    AccuracyRecord,
    PlanAccuracyRecord,
    SharedDatasets,
    SharedTrainedModels,
    SweepResult,
    accuracy_sweep,
    order_plan_cells,
    parallel_sweep,
    plan_sweep,
    publish_datasets,
    publish_trained_models,
    settings_fingerprint,
    train_reference_model,
    experiment_dataset,
)

__all__ = [
    "ProductModel",
    "AccurateProduct",
    "PerforatedProduct",
    "LUTProduct",
    "ExecutionPlan",
    "ApproximateExecutor",
    "accuracy",
    "accuracy_loss_percent",
    "output_error_stats",
    "OutputErrorStats",
    "TrainedModel",
    "TrainedModelCache",
    "TrainingSettings",
    "AccuracyRecord",
    "PlanAccuracyRecord",
    "SharedDatasets",
    "SharedTrainedModels",
    "SweepResult",
    "accuracy_sweep",
    "order_plan_cells",
    "parallel_sweep",
    "plan_sweep",
    "publish_datasets",
    "publish_trained_models",
    "settings_fingerprint",
    "train_reference_model",
    "experiment_dataset",
]
