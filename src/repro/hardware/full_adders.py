"""Closed-form reproduction of Table I (theoretical full-adder reduction).

The paper derives, for an ``N x N`` array with perforation ``m``:

* every MAC* unit saves ``9 m - ceil(log2(N (2^m - 1))) + 0.5`` full adders
  (``8 m`` from the multiplier, ``m`` from the narrower accumulator, minus
  the small ``sumX`` ripple accumulator it gains);
* every MAC+ unit costs its ``p x 8`` multiplier plus a full-width adder,
  ``7 p + ceil(log2(N (2^16 - 1))) - 0.5`` full adders with
  ``p = ceil(log2(N (2^m - 1)))``.

These per-unit expressions are exactly the decomposition used in
:mod:`repro.hardware.components`; Table I follows by multiplying by the
``N^2`` MAC* and ``N`` MAC+ instances.  The unit tests check both the
closed forms and the reproduction of every number in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.components import (
    mac_plus_full_adders,
    mac_star_full_adders,
    mac_unit_full_adders,
)

#: The (N, m) grid reported in Table I of the paper.
TABLE_I_ARRAY_SIZES = (16, 32, 48, 64)
TABLE_I_PERFORATIONS = (1, 2)


def mac_star_fa_decrease(array_size: int, m: int) -> float:
    """Total full-adder decrease contributed by the ``N^2`` MAC* units."""
    per_unit = mac_unit_full_adders(array_size) - mac_star_full_adders(array_size, m)
    return array_size * array_size * per_unit


def mac_plus_fa_increase(array_size: int, m: int) -> float:
    """Total full-adder increase contributed by the ``N`` extra MAC+ units."""
    return array_size * mac_plus_full_adders(array_size, m)


def total_fa_decrease(array_size: int, m: int) -> float:
    """Net full-adder decrease of the approximate array versus the accurate one."""
    return mac_star_fa_decrease(array_size, m) - mac_plus_fa_increase(array_size, m)


@dataclass(frozen=True)
class FullAdderRow:
    """One row of Table I."""

    m: int
    array_size: int
    mac_star_decrease: float
    mac_plus_increase: float
    total_decrease: float


def table_i(
    array_sizes: tuple[int, ...] = TABLE_I_ARRAY_SIZES,
    perforations: tuple[int, ...] = TABLE_I_PERFORATIONS,
) -> list[FullAdderRow]:
    """Regenerate Table I for the requested (m, N) grid."""
    rows = []
    for m in perforations:
        for n in array_sizes:
            rows.append(
                FullAdderRow(
                    m=m,
                    array_size=n,
                    mac_star_decrease=mac_star_fa_decrease(n, m),
                    mac_plus_increase=mac_plus_fa_increase(n, m),
                    total_decrease=total_fa_decrease(n, m),
                )
            )
    return rows
