"""Area and power models of MAC units and MAC arrays (Fig. 4, Table II).

The model combines

* structural gate/register counts from :mod:`repro.hardware.components`
  (these set the absolute scale and every width-dependent ratio), and
* the calibrated relative cost of the perforated multiplier and the MAC
  component decomposition from :mod:`repro.hardware.technology` (these stand
  in for the commercial synthesis flow — see the module docstring there).

Every reported figure of the paper's hardware evaluation is then *derived*:

* ``normalized_array_power`` / ``normalized_array_area`` reproduce Fig. 4;
* ``macplus_power_share`` / ``macplus_area_share`` reproduce Table II;
* ``array_cost_from_multiplier`` prices arrays built from arbitrary library
  multipliers and is used for the Fig. 5 energy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.components import (
    OPERAND_BITS,
    accumulator_bits,
    array_multiplier_full_adders,
    mac_plus_register_bits,
    mac_register_bits,
    mac_star_register_bits,
    mac_unit_full_adders,
    sumx_accumulator_bits,
)
from repro.hardware.technology import GENERIC_14NM, TechnologyModel


@dataclass(frozen=True)
class ArrayCost:
    """Power / area / delay of one hardware block."""

    power_uw: float
    area_um2: float
    delay_ns: float

    @property
    def power_mw(self) -> float:
        return self.power_uw / 1e3

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    def scaled(self, count: float) -> "ArrayCost":
        """Cost of ``count`` identical copies of this block."""
        return ArrayCost(
            power_uw=self.power_uw * count,
            area_um2=self.area_um2 * count,
            delay_ns=self.delay_ns,
        )

    def __add__(self, other: "ArrayCost") -> "ArrayCost":
        return ArrayCost(
            power_uw=self.power_uw + other.power_uw,
            area_um2=self.area_um2 + other.area_um2,
            delay_ns=max(self.delay_ns, other.delay_ns),
        )


# ----------------------------------------------------------------------
# Per-unit models
# ----------------------------------------------------------------------
def mac_unit_cost(array_size: int, tech: TechnologyModel = GENERIC_14NM) -> ArrayCost:
    """Absolute cost of one accurate MAC unit (anchors the absolute scale)."""
    fa = mac_unit_full_adders(array_size)
    regs = mac_register_bits(array_size)
    and_gates = OPERAND_BITS * OPERAND_BITS
    power = (
        fa * tech.full_adder_power_uw
        + regs * tech.register_bit_power_uw
        + and_gates * tech.and_gate_power_uw
    )
    area = (
        fa * tech.full_adder_area_um2
        + regs * tech.register_bit_area_um2
        + and_gates * tech.and_gate_area_um2
    )
    # Critical path: the multiplier tree plus the accumulator — both scale
    # with the full-adder delay; the constant 10 approximates the number of
    # cascaded FA stages of an optimized 8x8 multiply-accumulate at 14 nm.
    delay = 10.0 * tech.full_adder_delay_ps / 1e3
    return ArrayCost(power_uw=power, area_um2=area, delay_ns=delay)


def _mac_star_relative(array_size: int, m: int, tech: TechnologyModel) -> tuple[float, float]:
    """Relative (power, area) of a MAC* unit versus the accurate MAC."""
    s_mult_p, s_add_p, s_reg_p = tech.mac_power_shares
    s_mult_a, s_add_a, s_reg_a = tech.mac_area_shares
    acc_bits = accumulator_bits(array_size)
    sumx_bits = sumx_accumulator_bits(array_size, m)
    reg_ratio = mac_star_register_bits(array_size, m) / mac_register_bits(array_size)
    adder_power_ratio = (acc_bits - m) / acc_bits + (
        sumx_bits / acc_bits
    ) * tech.ripple_adder_power_factor
    adder_area_ratio = (acc_bits - m + sumx_bits) / acc_bits
    rel_power = (
        s_mult_p * tech.perforated_power_factor(m)
        + s_add_p * adder_power_ratio
        + s_reg_p * reg_ratio
    )
    rel_area = (
        s_mult_a * tech.perforated_area_factor(m)
        + s_add_a * adder_area_ratio
        + s_reg_a * reg_ratio
    )
    return rel_power, rel_area


def mac_star_cost(
    array_size: int, m: int, tech: TechnologyModel = GENERIC_14NM
) -> ArrayCost:
    """Absolute cost of one MAC* unit (perforation ``m``)."""
    if m < 1:
        raise ValueError(f"MAC* requires m >= 1, got {m}")
    base = mac_unit_cost(array_size, tech)
    rel_power, rel_area = _mac_star_relative(array_size, m, tech)
    # The MAC* datapath is shorter (fewer partial products, narrower adder);
    # since the array is synthesized at the accurate clock, its delay slack
    # is already folded into the calibrated power factor.
    delay = base.delay_ns * tech.perforated_delay_factor(m)
    return ArrayCost(
        power_uw=base.power_uw * rel_power,
        area_um2=base.area_um2 * rel_area,
        delay_ns=delay,
    )


def mac_plus_cost(
    array_size: int, m: int, tech: TechnologyModel = GENERIC_14NM
) -> ArrayCost:
    """Absolute cost of one MAC+ unit (the control-variate column)."""
    if m < 1:
        raise ValueError(f"MAC+ requires m >= 1, got {m}")
    base = mac_unit_cost(array_size, tech)
    s_mult_p, s_add_p, s_reg_p = tech.mac_power_shares
    s_mult_a, s_add_a, s_reg_a = tech.mac_area_shares
    p = sumx_accumulator_bits(array_size, m)
    mult_ratio = array_multiplier_full_adders(p, OPERAND_BITS) / array_multiplier_full_adders(
        OPERAND_BITS, OPERAND_BITS
    )
    reg_ratio = mac_plus_register_bits(array_size, m) / mac_register_bits(array_size)
    rel = s_mult_p * mult_ratio + s_add_p + s_reg_p * reg_ratio
    rel_area = s_mult_a * mult_ratio + s_add_a + s_reg_a * reg_ratio
    power = base.power_uw * rel * tech.macplus_activity_factor
    area = base.area_um2 * rel_area * tech.macplus_sizing_factor
    # The MAC+ may be pipelined, so it never constrains the array clock.
    return ArrayCost(power_uw=power, area_um2=area, delay_ns=base.delay_ns)


# ----------------------------------------------------------------------
# Array-level models
# ----------------------------------------------------------------------
def array_cost(
    config: AcceleratorConfig, tech: TechnologyModel = GENERIC_14NM
) -> ArrayCost:
    """Cost of the full MAC array described by ``config``."""
    n = config.array_size
    if not config.is_approximate:
        return mac_unit_cost(n, tech).scaled(n * n)
    star = mac_star_cost(n, config.perforation, tech).scaled(n * n)
    if not config.use_control_variate:
        return star
    plus = mac_plus_cost(n, config.perforation, tech).scaled(n)
    return star + plus


def normalized_array_power(
    config: AcceleratorConfig, tech: TechnologyModel = GENERIC_14NM
) -> float:
    """Array power normalized to the accurate array of the same size (Fig. 4a)."""
    accurate = AcceleratorConfig.accurate(config.array_size)
    return array_cost(config, tech).power_uw / array_cost(accurate, tech).power_uw


def normalized_array_area(
    config: AcceleratorConfig, tech: TechnologyModel = GENERIC_14NM
) -> float:
    """Array area normalized to the accurate array of the same size (Fig. 4b)."""
    accurate = AcceleratorConfig.accurate(config.array_size)
    return array_cost(config, tech).area_um2 / array_cost(accurate, tech).area_um2


def macplus_power_share(
    config: AcceleratorConfig, tech: TechnologyModel = GENERIC_14NM
) -> float:
    """Fraction of the approximate array's power consumed by the MAC+ column."""
    _require_cv(config)
    n = config.array_size
    plus = mac_plus_cost(n, config.perforation, tech).scaled(n)
    total = array_cost(config, tech)
    return plus.power_uw / total.power_uw


def macplus_area_share(
    config: AcceleratorConfig, tech: TechnologyModel = GENERIC_14NM
) -> float:
    """Fraction of the approximate array's area occupied by the MAC+ column."""
    _require_cv(config)
    n = config.array_size
    plus = mac_plus_cost(n, config.perforation, tech).scaled(n)
    total = array_cost(config, tech)
    return plus.area_um2 / total.area_um2


def array_cost_from_multiplier(
    relative_power: float,
    relative_area: float,
    array_size: int,
    tech: TechnologyModel = GENERIC_14NM,
    multiplier_overhead: float = 1.0,
    relative_delay: float = 1.0,
) -> ArrayCost:
    """Cost of an ``N x N`` array whose MACs use an arbitrary library multiplier.

    Used by the Fig. 5 comparison: the state-of-the-art baselines build their
    arrays from (possibly runtime-reconfigurable) approximate multipliers of
    the shared library.  ``multiplier_overhead`` models the extra
    configuration logic of reconfigurable designs ([6], [8]), applied to the
    multiplier's contribution.

    Parameters
    ----------
    relative_power / relative_area / relative_delay:
        The library multiplier's cost relative to the accurate 8x8 one.
    array_size:
        ``N``.
    multiplier_overhead:
        Multiplicative penalty (>= 1) on the multiplier cost.
    """
    if multiplier_overhead < 1.0:
        raise ValueError("multiplier_overhead must be >= 1")
    base = mac_unit_cost(array_size, tech)
    s_mult_p, s_add_p, s_reg_p = tech.mac_power_shares
    s_mult_a, s_add_a, s_reg_a = tech.mac_area_shares
    rel_power = s_mult_p * relative_power * multiplier_overhead + s_add_p + s_reg_p
    rel_area = s_mult_a * relative_area * multiplier_overhead + s_add_a + s_reg_a
    unit = ArrayCost(
        power_uw=base.power_uw * rel_power,
        area_um2=base.area_um2 * rel_area,
        delay_ns=base.delay_ns * max(relative_delay, 1.0),
    )
    return unit.scaled(array_size * array_size)


def _require_cv(config: AcceleratorConfig) -> None:
    if not (config.is_approximate and config.use_control_variate):
        raise ValueError(
            "MAC+ shares are only defined for approximate configurations "
            "with the control variate enabled"
        )
