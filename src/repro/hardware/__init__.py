"""Hardware cost models (the synthesis-flow substitute).

The paper synthesizes its MAC arrays with Synopsys Design Compiler on a
commercial 14 nm library and measures power with PrimeTime on post-synthesis
switching activity.  Neither tool nor library is available here, so this
package provides an analytical substitute (see DESIGN.md for the fidelity
argument):

* :mod:`~repro.hardware.components` — full-adder / register / gate counts of
  multipliers, adders and the three MAC unit types, following the counting
  rules of the paper's Section IV (and of [13]).
* :mod:`~repro.hardware.full_adders` — the closed-form Table I model.
* :mod:`~repro.hardware.technology` — a generic 14 nm-class characterization:
  absolute per-cell figures plus the calibrated relative cost of perforated
  multipliers (the calibration data standing in for the DesignWare mapping).
* :mod:`~repro.hardware.area_power` — area/power of MAC, MAC*, MAC+ units and
  of complete arrays (Fig. 4, Table II), plus arrays built from arbitrary
  library multipliers (used by the Fig. 5 baselines).
* :mod:`~repro.hardware.activity` — switching-activity estimation from
  operand traffic, justifying the activity-weighted power of perforation.
"""

from repro.hardware.components import (
    accumulator_bits,
    sumx_accumulator_bits,
    array_multiplier_full_adders,
    perforated_multiplier_full_adders,
    adder_full_adders,
    mac_unit_full_adders,
    mac_star_full_adders,
    mac_plus_full_adders,
)
from repro.hardware.full_adders import (
    FullAdderRow,
    mac_star_fa_decrease,
    mac_plus_fa_increase,
    total_fa_decrease,
    table_i,
)
from repro.hardware.technology import TechnologyModel, GENERIC_14NM
from repro.hardware.area_power import (
    ArrayCost,
    mac_unit_cost,
    mac_star_cost,
    mac_plus_cost,
    array_cost,
    normalized_array_power,
    normalized_array_area,
    macplus_power_share,
    macplus_area_share,
    array_cost_from_multiplier,
)
from repro.hardware.activity import (
    bit_toggle_rates,
    partial_product_activity,
    activity_weighted_multiplier_power,
)

__all__ = [
    "accumulator_bits",
    "sumx_accumulator_bits",
    "array_multiplier_full_adders",
    "perforated_multiplier_full_adders",
    "adder_full_adders",
    "mac_unit_full_adders",
    "mac_star_full_adders",
    "mac_plus_full_adders",
    "FullAdderRow",
    "mac_star_fa_decrease",
    "mac_plus_fa_increase",
    "total_fa_decrease",
    "table_i",
    "TechnologyModel",
    "GENERIC_14NM",
    "ArrayCost",
    "mac_unit_cost",
    "mac_star_cost",
    "mac_plus_cost",
    "array_cost",
    "normalized_array_power",
    "normalized_array_area",
    "macplus_power_share",
    "macplus_area_share",
    "array_cost_from_multiplier",
    "bit_toggle_rates",
    "partial_product_activity",
    "activity_weighted_multiplier_power",
]
