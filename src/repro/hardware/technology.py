"""Technology characterization used by the area/power models.

The paper maps its designs onto a commercial 14 nm standard-cell library with
the optimized Synopsys DesignWare arithmetic components, and synthesizes the
approximate arrays at the accurate array's critical-path delay so that the
delay slack of the shorter perforated datapaths is converted into additional
area/power savings through gate downsizing.  That flow cannot run here, so
this module captures its *outcome* as calibration data:

* absolute per-cell figures of a generic 14 nm-class library (full adder,
  half adder, register bit, AND gate) — these set the absolute scale only;
* the relative power/area of the perforated 8x8 multiplier versus the
  accurate DesignWare multiplier for each perforation value ``m``.  These
  relative factors fold together the partial-product count reduction, the
  higher switching activity of the low-significance columns that perforation
  removes, and the iso-delay downsizing benefit, and are calibrated to the
  multiplier-level characterization published for partial product
  perforation (Zervakis et al., TVLSI 2016) and to the array-level ranges
  reported by the DAC'21 paper;
* the power/area decomposition of a MAC unit between multiplier, accumulator
  and pipeline registers (the multiplier dominating, as the paper states).

Everything downstream (Fig. 4, Table II, the energy numbers of Fig. 5) is
*derived* from these constants plus structural gate counts — no per-result
tuning happens outside this file.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Relative dynamic power of the perforated 8x8 multiplier vs the accurate one,
#: at the accurate design's clock (iso-delay synthesis, activity-weighted).
PERFORATED_MULTIPLIER_RELATIVE_POWER: dict[int, float] = {
    0: 1.00,
    1: 0.660,
    2: 0.500,
    3: 0.260,
    4: 0.200,
    5: 0.150,
    6: 0.110,
    7: 0.080,
}

#: Relative cell area of the perforated 8x8 multiplier vs the accurate one.
PERFORATED_MULTIPLIER_RELATIVE_AREA: dict[int, float] = {
    0: 1.00,
    1: 0.880,
    2: 0.720,
    3: 0.545,
    4: 0.450,
    5: 0.370,
    6: 0.300,
    7: 0.240,
}

#: Relative critical-path delay of the perforated multiplier (before downsizing).
PERFORATED_MULTIPLIER_RELATIVE_DELAY: dict[int, float] = {
    0: 1.00,
    1: 0.95,
    2: 0.90,
    3: 0.84,
    4: 0.78,
    5: 0.72,
    6: 0.66,
    7: 0.60,
}


@dataclass(frozen=True)
class TechnologyModel:
    """A 14 nm-class standard-cell characterization.

    Absolute figures are representative of published 14/16 nm FinFET data
    (sub-micron cell heights, sub-microwatt per-gate dynamic power at
    ~1 GHz); only ratios matter for every reproduced figure.

    Attributes
    ----------
    full_adder_area_um2 / half_adder_area_um2 / register_bit_area_um2 /
    and_gate_area_um2:
        Cell areas.
    full_adder_power_uw / register_bit_power_uw / and_gate_power_uw:
        Dynamic power per cell at the nominal clock and a reference
        switching activity.
    full_adder_delay_ps:
        Propagation delay of one full-adder stage (sets the absolute clock).
    mac_power_shares / mac_area_shares:
        Fraction of a MAC unit's power/area attributed to (multiplier,
        accumulator adder, pipeline registers).  The multiplier dominates
        the power, as the paper states.
    macplus_activity_factor:
        Relative switching activity of the MAC+ unit versus a MAC* unit.
        The MAC+ operands (the slowly-varying ``sumX`` stream and the
        per-filter constant) toggle far less than the streaming weights and
        activations; calibrated against Table II of the paper.
    macplus_sizing_factor:
        Relative cell sizing of the MAC+ unit: it sits off the array's
        critical path (it can be pipelined, Section IV), so it is synthesized
        with minimum-size cells; calibrated against the area share of
        Table II.
    ripple_adder_power_factor:
        Relative power of the slow ripple-carry ``sumX`` accumulator versus a
        performance-optimized adder of the same width (Section IV argues this
        adder is off the critical path and can be slow to save power).
    reconfigurable_gating_efficiency:
        How much of a fixed perforated multiplier's power saving a *runtime
        reconfigurable* multiplier retains when operating at the same
        accuracy level.  Reconfigurable designs ([6], [8] in the paper) must
        keep the full datapath and gate parts of it off, so they recover only
        a fraction of the saving — the reason the paper gives for their
        limited energy gains.
    """

    name: str = "generic-14nm"
    full_adder_area_um2: float = 0.95
    half_adder_area_um2: float = 0.55
    register_bit_area_um2: float = 1.25
    and_gate_area_um2: float = 0.25
    full_adder_power_uw: float = 0.55
    half_adder_power_uw: float = 0.30
    register_bit_power_uw: float = 0.85
    and_gate_power_uw: float = 0.08
    full_adder_delay_ps: float = 18.0
    clock_ghz: float = 1.0
    mac_power_shares: tuple[float, float, float] = (0.75, 0.12, 0.13)
    mac_area_shares: tuple[float, float, float] = (0.60, 0.15, 0.25)
    macplus_activity_factor: float = 0.16
    macplus_sizing_factor: float = 0.20
    ripple_adder_power_factor: float = 0.40
    reconfigurable_gating_efficiency: float = 0.45
    multiplier_relative_power: dict[int, float] = field(
        default_factory=lambda: dict(PERFORATED_MULTIPLIER_RELATIVE_POWER)
    )
    multiplier_relative_area: dict[int, float] = field(
        default_factory=lambda: dict(PERFORATED_MULTIPLIER_RELATIVE_AREA)
    )
    multiplier_relative_delay: dict[int, float] = field(
        default_factory=lambda: dict(PERFORATED_MULTIPLIER_RELATIVE_DELAY)
    )

    def __post_init__(self) -> None:
        for label, shares in (
            ("mac_power_shares", self.mac_power_shares),
            ("mac_area_shares", self.mac_area_shares),
        ):
            if len(shares) != 3 or abs(sum(shares) - 1.0) > 1e-9:
                raise ValueError(f"{label} must be three fractions summing to 1")
        if not 0 < self.macplus_activity_factor <= 1:
            raise ValueError("macplus_activity_factor must be in (0, 1]")
        if not 0 < self.macplus_sizing_factor <= 1:
            raise ValueError("macplus_sizing_factor must be in (0, 1]")
        if not 0 < self.ripple_adder_power_factor <= 1:
            raise ValueError("ripple_adder_power_factor must be in (0, 1]")
        if not 0 < self.reconfigurable_gating_efficiency <= 1:
            raise ValueError("reconfigurable_gating_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    def perforated_power_factor(self, m: int) -> float:
        """Relative power of the perforated multiplier for perforation ``m``."""
        try:
            return self.multiplier_relative_power[int(m)]
        except KeyError:
            raise ValueError(f"unsupported perforation value m={m}") from None

    def perforated_area_factor(self, m: int) -> float:
        """Relative area of the perforated multiplier for perforation ``m``."""
        try:
            return self.multiplier_relative_area[int(m)]
        except KeyError:
            raise ValueError(f"unsupported perforation value m={m}") from None

    def perforated_delay_factor(self, m: int) -> float:
        """Relative delay of the perforated multiplier for perforation ``m``."""
        try:
            return self.multiplier_relative_delay[int(m)]
        except KeyError:
            raise ValueError(f"unsupported perforation value m={m}") from None

    def reconfigurable_power_factor(self, m: int) -> float:
        """Relative power of a *runtime-reconfigurable* multiplier at level ``m``.

        The design keeps the accurate datapath and clock/operand-gates the
        perforated part, so it only recovers ``reconfigurable_gating_efficiency``
        of the fixed perforated multiplier's saving.
        """
        fixed = self.perforated_power_factor(m)
        efficiency = self.reconfigurable_gating_efficiency
        return efficiency * fixed + (1.0 - efficiency) * 1.0

    @property
    def clock_ns(self) -> float:
        """Clock period implied by the nominal frequency."""
        return 1.0 / self.clock_ghz


#: Default technology instance used throughout the benches.
GENERIC_14NM = TechnologyModel()
