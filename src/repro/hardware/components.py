"""Gate-level component counts of the MAC datapaths.

All counts follow the conventions of Section IV of the paper (which in turn
follows the counting rules of Leon et al. [13]):

* an unsigned ``rows x cols`` array multiplier needs ``rows * cols - rows``
  full adders to reduce its partial products (56 for the 8x8 case);
* perforating ``m`` partial products of the 8x8 multiplier removes
  ``8 * m`` full adders;
* a ``b``-bit carry-propagate adder costs ``b`` full adders; a ``b``-bit
  ripple adder whose LSB stage is a half adder costs ``b - 1`` full adders
  plus one half adder (counted as 0.5 full-adder equivalents).

All functions therefore return *full-adder equivalents* as floats.
"""

from __future__ import annotations

import numpy as np

#: Operand width of the MAC multipliers.
OPERAND_BITS = 8

#: Width of the accurate product.
PRODUCT_BITS = 16

#: Full-adder equivalent weight of a half adder.
HALF_ADDER_EQUIV = 0.5


def accumulator_bits(array_size: int, product_bits: int = PRODUCT_BITS) -> int:
    """Accumulator width avoiding overflow: ``ceil(log2(N * (2^bits - 1)))``."""
    if array_size < 1:
        raise ValueError(f"array_size must be positive, got {array_size}")
    return int(np.ceil(np.log2(array_size * ((1 << product_bits) - 1))))


def sumx_accumulator_bits(array_size: int, m: int) -> int:
    """Width of the perforated-bit accumulator: ``ceil(log2(N * (2^m - 1)))``."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if array_size < 1:
        raise ValueError(f"array_size must be positive, got {array_size}")
    return int(np.ceil(np.log2(array_size * ((1 << m) - 1))))


def array_multiplier_full_adders(rows_bits: int, cols_bits: int = OPERAND_BITS) -> float:
    """Full adders of an unsigned ``rows x cols`` array multiplier."""
    if rows_bits < 1 or cols_bits < 1:
        raise ValueError("operand widths must be positive")
    return float(rows_bits * cols_bits - rows_bits)


def perforated_multiplier_full_adders(m: int) -> float:
    """Full adders of the 8x8 multiplier with ``m`` perforated partial products."""
    if not 0 <= m < OPERAND_BITS:
        raise ValueError(f"m must be within [0, {OPERAND_BITS - 1}], got {m}")
    return array_multiplier_full_adders(OPERAND_BITS, OPERAND_BITS) - OPERAND_BITS * m


def adder_full_adders(bits: int, ripple_with_half_adder: bool = False) -> float:
    """Full-adder equivalents of a ``bits``-wide adder."""
    if bits < 1:
        raise ValueError(f"bits must be positive, got {bits}")
    if ripple_with_half_adder:
        return (bits - 1) + HALF_ADDER_EQUIV
    return float(bits)


def mac_unit_full_adders(array_size: int) -> float:
    """Full-adder equivalents of one accurate MAC unit (multiplier + accumulator)."""
    return array_multiplier_full_adders(OPERAND_BITS, OPERAND_BITS) + adder_full_adders(
        accumulator_bits(array_size)
    )


def mac_star_full_adders(array_size: int, m: int) -> float:
    """Full-adder equivalents of one MAC* unit.

    The MAC* contains the perforated multiplier, an accumulator that is ``m``
    bits narrower than the accurate one, and the small ripple ``sumX``
    accumulator for the perforated activation bits.
    """
    if m < 1:
        raise ValueError(f"MAC* requires m >= 1, got {m}")
    multiplier = perforated_multiplier_full_adders(m)
    accumulator = adder_full_adders(accumulator_bits(array_size) - m)
    sumx = adder_full_adders(sumx_accumulator_bits(array_size, m), ripple_with_half_adder=True)
    return multiplier + accumulator + sumx


def mac_plus_full_adders(array_size: int, m: int) -> float:
    """Full-adder equivalents of one MAC+ unit.

    The MAC+ contains an accurate ``p x 8`` multiplier (``p`` the sumX width)
    computing ``C * sumX`` and a full-width final adder, whose LSB stage is a
    half adder.
    """
    p = sumx_accumulator_bits(array_size, m)
    multiplier = array_multiplier_full_adders(p, OPERAND_BITS)
    final_adder = adder_full_adders(accumulator_bits(array_size), ripple_with_half_adder=True)
    return multiplier + final_adder


def mac_register_bits(array_size: int) -> int:
    """Register bits of the accurate MAC: weight, activation and partial sum."""
    return OPERAND_BITS + OPERAND_BITS + accumulator_bits(array_size)


def mac_star_register_bits(array_size: int, m: int) -> int:
    """Register bits of the MAC*: narrower partial sum plus the sumX register."""
    return (
        OPERAND_BITS
        + OPERAND_BITS
        + (accumulator_bits(array_size) - m)
        + sumx_accumulator_bits(array_size, m)
    )


def mac_plus_register_bits(array_size: int, m: int) -> int:
    """Register bits of the MAC+: constant, sumX input and full-width output."""
    return OPERAND_BITS + sumx_accumulator_bits(array_size, m) + accumulator_bits(array_size)
