"""Switching-activity estimation from operand traffic.

The paper measures power with PrimeTime on switching activity recorded from
10,000 post-synthesis inference cycles.  The analytical model here plays the
same role at a coarser granularity: it estimates per-bit toggle rates of the
operand streams and weights each partial-product column of the multiplier by
the activity of the activation bit that drives it.  Two facts relevant to
the paper fall out of this model and are asserted by the tests:

* the low-significance activation bits toggle the most (they are nearly
  uniform), so perforating the ``m`` least partial products removes *more*
  switched capacitance than its share of gates — the reason the calibrated
  power factors in :mod:`repro.hardware.technology` drop faster than the
  gate counts;
* the ``sumX`` stream feeding the MAC+ unit has a much lower toggle rate
  than the activation stream, supporting the small measured MAC+ power share
  of Table II.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.components import OPERAND_BITS


def bit_toggle_rates(codes: np.ndarray, bits: int = OPERAND_BITS) -> np.ndarray:
    """Per-bit toggle probability of a stream of integer codes.

    Parameters
    ----------
    codes:
        1-D array representing the sequence of values observed on a bus.
    bits:
        Bus width.

    Returns
    -------
    numpy.ndarray
        ``(bits,)`` array; entry ``i`` is the probability that bit ``i``
        differs between consecutive stream elements.
    """
    stream = np.asarray(codes, dtype=np.int64).reshape(-1)
    if stream.size < 2:
        raise ValueError("need at least two samples to estimate toggle rates")
    transitions = stream[:-1] ^ stream[1:]
    rates = np.empty(bits, dtype=np.float64)
    for bit in range(bits):
        rates[bit] = float(((transitions >> bit) & 1).mean())
    return rates


def partial_product_activity(
    weight_codes: np.ndarray, activation_codes: np.ndarray, bits: int = OPERAND_BITS
) -> np.ndarray:
    """Average switched activity of each partial-product row.

    Row ``j`` of the 8x8 array multiplier is driven by activation bit ``j``;
    its switched capacitance is proportional to the toggle rate of that bit
    times the average density of the weight operand (the AND plane only
    switches where weight bits are one).
    """
    act_rates = bit_toggle_rates(activation_codes, bits)
    weights = np.asarray(weight_codes, dtype=np.int64).reshape(-1)
    weight_density = np.array(
        [float(((weights >> bit) & 1).mean()) for bit in range(bits)]
    ).mean()
    return act_rates * weight_density


def activity_weighted_multiplier_power(
    weight_codes: np.ndarray,
    activation_codes: np.ndarray,
    m: int,
    bits: int = OPERAND_BITS,
) -> float:
    """Relative multiplier power after perforating ``m`` rows, activity-weighted.

    Returns the fraction of switched capacitance remaining when the ``m``
    least-significant partial-product rows are removed, under the observed
    operand traffic.  This is a lower-level cross-check of the calibrated
    ``PERFORATED_MULTIPLIER_RELATIVE_POWER`` table (it captures the activity
    part of the saving but not the iso-delay downsizing part, so it sits
    between the gate-count share and the calibrated factor).
    """
    if not 0 <= m < bits:
        raise ValueError(f"m must be within [0, {bits - 1}], got {m}")
    row_activity = partial_product_activity(weight_codes, activation_codes, bits)
    total = float(row_activity.sum())
    if total == 0.0:
        return 1.0
    remaining = float(row_activity[m:].sum())
    return remaining / total
