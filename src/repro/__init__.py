"""Reproduction of *Control Variate Approximation for DNN Accelerators* (DAC 2021).

The package is organized in layers (see DESIGN.md for the full inventory):

* substrates: :mod:`repro.nn` (numpy DNN engine), :mod:`repro.quantization`,
  :mod:`repro.multipliers`, :mod:`repro.datasets`, :mod:`repro.models`,
  :mod:`repro.accelerator`, :mod:`repro.hardware`;
* the paper's contribution: :mod:`repro.core`;
* experiment machinery: :mod:`repro.simulation`, :mod:`repro.baselines`,
  :mod:`repro.analysis`.

Quick start::

    from repro.core import ControlVariate, perforated_product_sums
    from repro.simulation import ApproximateExecutor

see ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "0.3.0"

__all__ = ["__version__"]
