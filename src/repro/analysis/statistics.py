"""Weight-distribution statistics (Fig. 1) and variance-reduction analysis.

Fig. 1 of the paper shows that the 8-bit weight codes of trained filters are
tightly concentrated around their mean, which is exactly the property that
makes the control variate effective (eq. (10): the corrected variance is
proportional to ``sum_j (W_j - E[W])^2``).  This module extracts those
distributions from trained models and computes the implied variance-reduction
factors per filter and per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.error_model import variance_reduction_factor
from repro.nn.graph import Graph
from repro.nn.layers import Conv2D, Dense
from repro.quantization.quantize import calibrate_minmax, quantize


@dataclass(frozen=True)
class WeightDistribution:
    """Summary of one filter's quantized-weight distribution (one Fig. 1 panel)."""

    layer: str
    filter_index: int
    codes: np.ndarray
    histogram: np.ndarray
    bin_edges: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.codes.mean())

    @property
    def std(self) -> float:
        return float(self.codes.std())

    @property
    def concentration(self) -> float:
        """Fraction of weights within one standard deviation of the mean."""
        lo, hi = self.mean - self.std, self.mean + self.std
        return float(((self.codes >= lo) & (self.codes <= hi)).mean())

    def pdf(self) -> np.ndarray:
        """Normalized histogram (sums to one) — the PDF plotted in Fig. 1."""
        total = self.histogram.sum()
        if total == 0:
            return self.histogram.astype(np.float64)
        return self.histogram / total


def _quantized_filter_codes(layer: Conv2D | Dense) -> np.ndarray:
    """uint8 codes of all weights, shaped ``(taps, filters)``."""
    if isinstance(layer, Conv2D):
        matrices = [layer.weight_matrix(g) for g in range(layer.groups)]
        weights = np.concatenate(matrices, axis=1)
    else:
        weights = layer.weight
    params = calibrate_minmax(weights)
    return quantize(weights, params)


def filter_weight_distribution(
    model: Graph, layer_name: str, filter_index: int, bins: int = 64
) -> WeightDistribution:
    """Quantized-weight distribution of one filter of one layer."""
    layer = model.layers().get(layer_name)
    if layer is None or not isinstance(layer, (Conv2D, Dense)):
        raise KeyError(f"{layer_name!r} is not a convolution or dense layer of the model")
    codes = _quantized_filter_codes(layer)
    if not 0 <= filter_index < codes.shape[1]:
        raise IndexError(
            f"filter_index {filter_index} out of range for layer {layer_name!r} "
            f"with {codes.shape[1]} filters"
        )
    column = codes[:, filter_index].astype(np.float64)
    histogram, edges = np.histogram(column, bins=bins, range=(0, 255))
    return WeightDistribution(
        layer=layer_name,
        filter_index=filter_index,
        codes=column,
        histogram=histogram,
        bin_edges=edges,
    )


def model_weight_distributions(
    model: Graph,
    n_filters: int = 4,
    rng: np.random.Generator | None = None,
    bins: int = 64,
) -> list[WeightDistribution]:
    """Randomly sample filter weight distributions from a model (Fig. 1 style)."""
    if rng is None:
        rng = np.random.default_rng(1)
    mac_nodes = model.conv_dense_nodes()
    if not mac_nodes:
        raise ValueError("model has no convolution or dense layers")
    out = []
    for _ in range(n_filters):
        node = mac_nodes[int(rng.integers(len(mac_nodes)))]
        codes = _quantized_filter_codes(node.layer)
        filter_index = int(rng.integers(codes.shape[1]))
        out.append(filter_weight_distribution(model, node.name, filter_index, bins=bins))
    return out


def model_variance_reduction(model: Graph, m: int = 2) -> dict[str, float]:
    """Median per-filter variance-reduction factor of every MAC layer."""
    out: dict[str, float] = {}
    for node in model.conv_dense_nodes():
        codes = _quantized_filter_codes(node.layer).astype(np.float64)
        factors = []
        for f in range(codes.shape[1]):
            factor = variance_reduction_factor(codes[:, f], m)
            if np.isfinite(factor):
                factors.append(factor)
        out[node.name] = float(np.median(factors)) if factors else float("inf")
    return out
