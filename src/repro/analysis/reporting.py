"""Plain-text table formatting for the benchmark reports.

The benches regenerate the paper's tables and figure series as text tables
(and CSV strings) so they can be diffed against the paper and archived in
EXPERIMENTS.md without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """A small column-aligned text table."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)

    def render(self, float_format: str = "{:.2f}") -> str:
        """Render the table as aligned plain text."""
        return format_table(self.title, self.columns, self.rows, float_format=float_format)

    def to_csv(self, float_format: str = "{:.4f}") -> str:
        """Render the table as CSV (header + rows)."""
        lines = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(_format_cell(v, float_format) for v in row))
        return "\n".join(lines)


def _format_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def pareto_front_table(
    points: "Iterable[object]",
    baseline_energy_nj: float | None = None,
    title: str = "Energy / accuracy Pareto front",
) -> Table:
    """Tabulate DSE Pareto points (ascending energy).

    ``points`` are :class:`repro.dse.pareto.ParetoPoint`-shaped objects
    (``label``, ``energy_nj``, ``accuracy``, ``accuracy_loss``).  When
    ``baseline_energy_nj`` is given, a relative-energy column is added so
    the table reads like the paper's savings figures.
    """
    columns = ["plan", "energy (nJ)", "accuracy", "loss %"]
    if baseline_energy_nj is not None:
        columns.append("energy vs accurate")
    table = Table(title=title, columns=columns)
    ordered = sorted(points, key=lambda p: p.energy_nj)
    for point in ordered:
        row: list[object] = [
            point.label,
            point.energy_nj,
            point.accuracy,
            point.accuracy_loss,
        ]
        if baseline_energy_nj is not None:
            ratio = (
                point.energy_nj / baseline_energy_nj if baseline_energy_nj else 0.0
            )
            row.append(f"{100.0 * ratio:.1f}%")
        table.add_row(*row)
    return table


def regression_report_table(
    findings: "Iterable[object]",
    title: str = "Regression verification findings",
) -> Table:
    """Tabulate regression findings for ``repro verify-results``.

    ``findings`` are :class:`repro.provenance.regression.Finding`-shaped
    objects (``severity``, ``section``, ``path``, ``kind``, ``message``);
    failures sort before warnings so the actionable rows lead.
    """
    table = Table(
        title=title,
        columns=["severity", "section", "path", "kind", "detail"],
    )
    ordered = sorted(
        findings, key=lambda f: (f.severity != "fail", f.section, f.path)
    )
    for finding in ordered:
        table.add_row(
            finding.severity,
            finding.section,
            finding.path or "-",
            finding.kind,
            finding.message,
        )
    return table


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Format rows into an aligned text table with a title line."""
    str_rows = [[_format_cell(v, float_format) for v in row] for row in rows]
    widths = [len(str(col)) for col in columns]
    for row in str_rows:
        if len(row) != len(columns):
            raise ValueError("row length does not match column count")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    lines = [title, header, separator]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
