"""Analysis helpers: weight statistics (Fig. 1) and report formatting."""

from repro.analysis.statistics import (
    WeightDistribution,
    filter_weight_distribution,
    model_weight_distributions,
    model_variance_reduction,
)
from repro.analysis.reporting import format_table, pareto_front_table, Table

__all__ = [
    "WeightDistribution",
    "filter_weight_distribution",
    "model_weight_distributions",
    "model_variance_reduction",
    "format_table",
    "pareto_front_table",
    "Table",
]
