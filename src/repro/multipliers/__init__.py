"""Approximate multiplier substrate.

The paper replaces the accurate unsigned 8x8 multipliers of the MAC array
with *partial product perforated* multipliers (Zervakis et al., TVLSI 2016)
and, for the state-of-the-art comparison of Fig. 5, builds every technique on
a shared library of approximate multipliers (EvoApprox8b in the paper; a
synthetic equivalent here).

Public API
----------
* :class:`~repro.multipliers.base.Multiplier` — the behavioural interface.
* :class:`~repro.multipliers.accurate.AccurateMultiplier`
* :class:`~repro.multipliers.perforated.PerforatedMultiplier` — the paper's
  approximate multiplier; error ``eps = W * (A mod 2^m)``.
* :class:`~repro.multipliers.truncated.TruncatedMultiplier`
* :class:`~repro.multipliers.compensated.CompensatedMultiplier`
* :class:`~repro.multipliers.lut.LUTMultiplier` and LUT helpers.
* :class:`~repro.multipliers.library.MultiplierLibrary` — a synthetic
  EvoApprox-like library with power/area/delay metadata.
* :mod:`~repro.multipliers.error_stats` — empirical and analytical error
  statistics of a multiplier.
"""

from repro.multipliers.base import Multiplier, OPERAND_BITS, OPERAND_LEVELS
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.perforated import PerforatedMultiplier
from repro.multipliers.truncated import TruncatedMultiplier
from repro.multipliers.compensated import CompensatedMultiplier
from repro.multipliers.lut import LUTMultiplier, build_lut, apply_lut
from repro.multipliers.library import LibraryEntry, MultiplierLibrary
from repro.multipliers.error_stats import (
    ErrorStats,
    empirical_error_stats,
    perforation_error_stats,
)

__all__ = [
    "Multiplier",
    "OPERAND_BITS",
    "OPERAND_LEVELS",
    "AccurateMultiplier",
    "PerforatedMultiplier",
    "TruncatedMultiplier",
    "CompensatedMultiplier",
    "LUTMultiplier",
    "build_lut",
    "apply_lut",
    "LibraryEntry",
    "MultiplierLibrary",
    "ErrorStats",
    "empirical_error_stats",
    "perforation_error_stats",
]
