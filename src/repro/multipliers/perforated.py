"""Partial product perforation multiplier (Zervakis et al., TVLSI 2016).

Perforating the ``m`` least-significant partial products of an unsigned
``W x A`` array multiplier removes the contribution of the ``m`` low bits of
the second operand.  The approximate product is therefore

    W * A|approx = W * (A - (A mod 2^m))

and the multiplication error is *exactly*

    eps = W * x    with   x = A mod 2^m = A & (2^m - 1)

(eq. (5) of the DAC'21 paper).  This is a functional approximation: the
error depends only on the operand values, never on carries, which is what
makes the closed-form control-variate analysis possible.
"""

from __future__ import annotations

import numpy as np

from repro.multipliers.base import Multiplier, OPERAND_BITS, _validate_operands


class PerforatedMultiplier(Multiplier):
    """Unsigned 8x8 multiplier with the ``m`` least partial products perforated.

    Parameters
    ----------
    m:
        Number of perforated partial products, ``0 <= m < 8``.  ``m = 0``
        degenerates to the accurate multiplier.
    """

    def __init__(self, m: int):
        if not 0 <= int(m) < OPERAND_BITS:
            raise ValueError(f"m must be within [0, {OPERAND_BITS - 1}], got {m}")
        self.m = int(m)
        self.name = f"perforated_m{self.m}"

    @property
    def perforation_mask(self) -> int:
        """Bit mask selecting the perforated low bits of the activation."""
        return (1 << self.m) - 1

    def multiply(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        w, a = _validate_operands(w, a)
        return w * (a & ~np.int64(self.perforation_mask))

    def perforated_bits(self, a: np.ndarray) -> np.ndarray:
        """The dropped low bits ``x = A mod 2^m`` (eq. (5))."""
        a = np.asarray(a, dtype=np.int64)
        return a & np.int64(self.perforation_mask)

    # ------------------------------------------------------------------
    # Analytical error model under uniformly distributed activations
    # ------------------------------------------------------------------
    @property
    def x_mean(self) -> float:
        """``E[x]`` for ``x`` uniform on ``[0, 2^m - 1]`` (used in eq. (12))."""
        return ((1 << self.m) - 1) / 2.0

    @property
    def x_variance(self) -> float:
        """``Var(x)`` for ``x`` uniform on ``[0, 2^m - 1]`` (used in eq. (10))."""
        levels = 1 << self.m
        return (levels - 1) * (levels + 1) / 12.0

    def error_mean(self, w_mean: float) -> float:
        """Mean multiplication error ``E[eps] = E[W] * E[x]``.

        Valid when the activation low bits are independent of the weight,
        which holds because the weights are constants of the filter.
        """
        return float(w_mean) * self.x_mean

    def error_variance(self, w_second_moment: float, w_mean: float) -> float:
        """Variance of ``eps = W * x`` for a random weight ``W`` independent of ``x``.

        ``Var(W x) = E[W^2] E[x^2] - E[W]^2 E[x]^2``.
        """
        x_second_moment = self.x_variance + self.x_mean**2
        return float(w_second_moment) * x_second_moment - (
            float(w_mean) * self.x_mean
        ) ** 2
