"""Behavioural interface of an unsigned 8x8 (approximate) multiplier."""

from __future__ import annotations

import abc

import numpy as np

#: Operand width in bits of the MAC-array multipliers (Section IV).
OPERAND_BITS = 8

#: Number of representable operand values.
OPERAND_LEVELS = 1 << OPERAND_BITS


def _validate_operands(w: np.ndarray, a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Coerce operands to int64 and check they fit in ``OPERAND_BITS`` bits."""
    w = np.asarray(w, dtype=np.int64)
    a = np.asarray(a, dtype=np.int64)
    for name, arr in (("w", w), ("a", a)):
        if arr.size and (arr.min() < 0 or arr.max() >= OPERAND_LEVELS):
            raise ValueError(
                f"operand '{name}' out of range [0, {OPERAND_LEVELS - 1}]"
            )
    return w, a


class Multiplier(abc.ABC):
    """An unsigned ``OPERAND_BITS x OPERAND_BITS`` behavioural multiplier.

    Sub-classes implement :meth:`multiply`, a vectorized elementwise product
    of uint8 operands.  Everything downstream (quantized layers, the MAC
    array simulator, the hardware cost models, the baselines) talks to this
    interface, so exchanging the accurate multiplier for an approximate one
    is a one-line change for the user.
    """

    #: Short, unique identifier used in reports and library lookups.
    name: str = "multiplier"

    @abc.abstractmethod
    def multiply(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        """Elementwise (possibly approximate) product of ``w`` and ``a``.

        Parameters
        ----------
        w, a:
            Arrays of unsigned 8-bit operand values (any integer dtype whose
            values fit ``[0, 255]``).  Broadcasting follows numpy rules.

        Returns
        -------
        numpy.ndarray
            int64 array of products.
        """

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def error(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        """Multiplication error ``w*a - multiply(w, a)`` (paper's definition)."""
        w, a = _validate_operands(w, a)
        return w * a - self.multiply(w, a)

    def build_lut(self) -> np.ndarray:
        """Exhaustive 256x256 lookup table ``lut[w, a] = multiply(w, a)``."""
        w = np.arange(OPERAND_LEVELS, dtype=np.int64)[:, None]
        a = np.arange(OPERAND_LEVELS, dtype=np.int64)[None, :]
        return np.asarray(self.multiply(w, a), dtype=np.int64)

    def error_table(self) -> np.ndarray:
        """Exhaustive error table ``err[w, a] = w*a - multiply(w, a)``."""
        w = np.arange(OPERAND_LEVELS, dtype=np.int64)[:, None]
        a = np.arange(OPERAND_LEVELS, dtype=np.int64)[None, :]
        return w * a - self.build_lut()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
