"""Mean-compensated approximate multipliers.

Section III of the paper contrasts the control-variate correction with the
simpler *constant correction* used by prior work ([6] and the minimally
biased multipliers of [3]): add a constant equal to the negated mean error
so the multiplier becomes unbiased, but leave its variance untouched.  The
wrapper below implements that scheme for any base multiplier so the two
correction styles can be compared head-to-head (tests and ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.multipliers.base import Multiplier, OPERAND_LEVELS, _validate_operands


class CompensatedMultiplier(Multiplier):
    """Wrap a multiplier and add a constant offset cancelling its mean error.

    Parameters
    ----------
    base:
        The approximate multiplier to compensate.
    offset:
        Constant added to every product.  When ``None`` the offset is the
        rounded mean error of ``base`` over uniformly distributed operands,
        i.e. the scheme of the systematic-error multipliers used by [6].
    """

    def __init__(self, base: Multiplier, offset: int | None = None):
        self.base = base
        if offset is None:
            offset = int(round(float(base.error_table().mean())))
        self.offset = int(offset)
        self.name = f"compensated[{base.name}]"

    def multiply(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        w, a = _validate_operands(w, a)
        return self.base.multiply(w, a) + np.int64(self.offset)

    @property
    def compensation(self) -> int:
        """The constant added to every product."""
        return self.offset

    @staticmethod
    def mean_error_of(base: Multiplier) -> float:
        """Mean error of ``base`` over all ``256 x 256`` operand pairs."""
        return float(base.error_table().sum()) / float(OPERAND_LEVELS * OPERAND_LEVELS)
