"""Empirical and analytical error statistics of approximate multipliers.

The paper's analysis (Section III) treats the multiplication error as a
random variable characterized by its mean ``mu_AM`` and variance
``sigma2_AM``.  These statistics drive both the convolution error model
(eq. (3)) and the multiplier-library metadata used by the Fig. 5 baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.multipliers.base import Multiplier, OPERAND_LEVELS
from repro.multipliers.perforated import PerforatedMultiplier


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of a multiplier's error distribution.

    Attributes
    ----------
    mean:
        Mean error ``E[w*a - approx(w, a)]``.
    variance:
        Variance of the error.
    mean_absolute:
        Mean absolute error.
    max_absolute:
        Worst-case absolute error.
    mean_relative:
        Mean relative error ``E[|err| / max(1, w*a)]`` (the MRE figure
        commonly reported for approximate multipliers).
    """

    mean: float
    variance: float
    mean_absolute: float
    max_absolute: float
    mean_relative: float

    @property
    def std(self) -> float:
        """Standard deviation of the error."""
        return float(np.sqrt(self.variance))


def _stats_from_samples(errors: np.ndarray, exact: np.ndarray) -> ErrorStats:
    errors = np.asarray(errors, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    abs_err = np.abs(errors)
    rel = abs_err / np.maximum(exact, 1.0)
    return ErrorStats(
        mean=float(errors.mean()),
        variance=float(errors.var()),
        mean_absolute=float(abs_err.mean()),
        max_absolute=float(abs_err.max()),
        mean_relative=float(rel.mean()),
    )


def empirical_error_stats(
    multiplier: Multiplier,
    weights: np.ndarray | None = None,
    activations: np.ndarray | None = None,
) -> ErrorStats:
    """Error statistics of ``multiplier`` over a given operand distribution.

    When ``weights``/``activations`` are omitted, the statistics are taken
    exhaustively over all ``256 x 256`` operand pairs (uniform operands),
    which is how approximate-multiplier libraries characterize their
    entries.  When provided, the statistics are computed over the empirical
    joint distribution formed by all pairs of the two sample vectors —
    this is the workload-aware characterization used by the baselines.
    """
    if (weights is None) != (activations is None):
        raise ValueError("provide both weights and activations, or neither")
    if weights is None:
        w = np.arange(OPERAND_LEVELS, dtype=np.int64)[:, None]
        a = np.arange(OPERAND_LEVELS, dtype=np.int64)[None, :]
    else:
        w = np.asarray(weights, dtype=np.int64).reshape(-1)[:, None]
        a = np.asarray(activations, dtype=np.int64).reshape(-1)[None, :]
    exact = w * a
    errors = exact - multiplier.multiply(w, a)
    return _stats_from_samples(errors, exact)


def perforation_error_stats(m: int, weights: np.ndarray) -> ErrorStats:
    """Closed-form error statistics of the perforated multiplier.

    For perforation parameter ``m`` and a given empirical weight
    distribution, with activation low bits ``x`` assumed uniform on
    ``[0, 2^m - 1]`` and independent of the weights:

    * ``E[eps] = E[W] * E[x]``
    * ``Var(eps) = E[W^2] E[x^2] - (E[W] E[x])^2``

    The absolute and relative metrics are computed by exact enumeration
    (the error only takes ``|W x|`` with ``x`` spanning ``2^m`` values, and
    the relative denominator spans the 256 activation levels), so for
    integer-valued weights every field agrees with
    :func:`empirical_error_stats` of the same perforated multiplier — a
    property pinned by the tests.
    """
    mult = PerforatedMultiplier(m)
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    w_mean = float(w.mean())
    w_second = float((w**2).mean())
    x_mean = mult.x_mean
    x_var = mult.x_variance
    x_second = x_var + x_mean**2
    mean = w_mean * x_mean
    variance = w_second * x_second - (w_mean * x_mean) ** 2
    # Exact enumerations over x for the absolute metrics (x is only 2^m wide).
    x = np.arange(1 << m, dtype=np.float64)
    abs_err = np.abs(np.outer(w, x))
    max_abs = float(abs_err.max()) if abs_err.size else 0.0
    mean_abs = float(abs_err.mean())
    # The relative error |W x| / max(1, W a) depends on the full activation
    # value a = t 2^m + x, not just its low bits, so enumerate all operand
    # levels — deduplicated through the empirical weight histogram so the
    # cost is O(distinct weights x 256) regardless of the sample count.
    # This matches the definition used by ``empirical_error_stats`` exactly.
    unique_w, counts = np.unique(w, return_counts=True)
    a = np.arange(OPERAND_LEVELS, dtype=np.float64)
    x_of_a = np.arange(OPERAND_LEVELS, dtype=np.int64) & np.int64(mult.perforation_mask)
    exact = np.outer(unique_w, a)
    rel = np.abs(unique_w[:, None] * x_of_a[None, :].astype(np.float64))
    rel /= np.maximum(exact, 1.0)
    weighted = (rel.mean(axis=1) * counts).sum() / counts.sum()
    return ErrorStats(
        mean=mean,
        variance=variance,
        mean_absolute=mean_abs,
        max_absolute=max_abs,
        mean_relative=float(weighted),
    )
