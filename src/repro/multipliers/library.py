"""A synthetic EvoApprox-like library of approximate 8x8 multipliers.

The paper's Fig. 5 comparison builds every state-of-the-art technique
(ALWANN [7], weight-oriented approximation [6], runtime-reconfigurable
multipliers [8]) on top of the EvoApprox8b library, which ships, for each
multiplier, its power / area / delay and error characterization.  EvoApprox
itself is a set of synthesized netlists and cannot be redistributed here, so
this module generates a *synthetic equivalent*: a graded family of
behavioural multipliers spanning a similar error/power Pareto front, each
annotated with relative power, area and delay derived from a partial-product
gate-count model.  The selection logic of the baselines only needs such a
graded front, so the comparison methodology is preserved (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.base import Multiplier, OPERAND_BITS
from repro.multipliers.compensated import CompensatedMultiplier
from repro.multipliers.error_stats import ErrorStats, empirical_error_stats
from repro.multipliers.lut import LUTMultiplier
from repro.multipliers.perforated import PerforatedMultiplier
from repro.multipliers.truncated import TruncatedMultiplier


def estimate_relative_cost(active_partial_product_bits: int) -> tuple[float, float, float]:
    """Relative (power, area, delay) of a multiplier from its active PP bits.

    An accurate unsigned 8x8 array multiplier generates ``8 * 8 = 64``
    partial-product bits and reduces them with roughly one full adder per
    bit beyond the first row.  Removing partial-product bits (perforation,
    truncation) shrinks the AND-plane and the reduction tree roughly
    proportionally, while the critical path shrinks with the logarithm of
    the remaining rows.  These coefficients reproduce the relative cost
    trends reported for perforation in TVLSI'16 and are cross-checked by
    the MAC-array model in :mod:`repro.hardware`.
    """
    full_bits = OPERAND_BITS * OPERAND_BITS
    bits = int(np.clip(active_partial_product_bits, 1, full_bits))
    ratio = bits / full_bits
    # Dynamic power tracks the switched capacitance of the AND-plane and the
    # reduction tree; area tracks cell count; delay tracks tree depth.
    relative_power = 0.15 + 0.85 * ratio
    relative_area = 0.20 + 0.80 * ratio
    rows = max(1, int(np.ceil(bits / OPERAND_BITS)))
    relative_delay = (2.0 + np.log2(rows)) / (2.0 + np.log2(OPERAND_BITS))
    return float(relative_power), float(relative_area), float(relative_delay)


@dataclass(frozen=True)
class LibraryEntry:
    """A multiplier together with its hardware and error characterization.

    Attributes
    ----------
    multiplier:
        The behavioural model.
    relative_power / relative_area / relative_delay:
        Cost figures normalized to the accurate 8x8 multiplier.
    stats:
        Error statistics over uniformly distributed operands.
    reconfigurable:
        Whether the multiplier supports run-time accuracy reconfiguration
        (used by the [8]-style baseline, which pays a power premium for it).
    """

    multiplier: Multiplier
    relative_power: float
    relative_area: float
    relative_delay: float
    stats: ErrorStats
    reconfigurable: bool = False

    @property
    def name(self) -> str:
        return self.multiplier.name


@dataclass
class MultiplierLibrary:
    """A named collection of characterized approximate multipliers."""

    entries: dict[str, LibraryEntry] = field(default_factory=dict)

    def add(self, entry: LibraryEntry) -> None:
        """Insert an entry, rejecting duplicate names."""
        if entry.name in self.entries:
            raise ValueError(f"duplicate multiplier name: {entry.name}")
        self.entries[entry.name] = entry

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __getitem__(self, name: str) -> LibraryEntry:
        return self.entries[name]

    def __iter__(self) -> Iterator[LibraryEntry]:
        return iter(self.entries.values())

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def names(self) -> list[str]:
        return list(self.entries)

    # ------------------------------------------------------------------
    # Selection helpers used by the baselines
    # ------------------------------------------------------------------
    def sorted_by_power(self) -> list[LibraryEntry]:
        """Entries from cheapest to most expensive."""
        return sorted(self.entries.values(), key=lambda e: e.relative_power)

    def approximate_entries(self) -> list[LibraryEntry]:
        """All entries except exact ones (those with zero worst-case error)."""
        return [e for e in self.entries.values() if e.stats.max_absolute > 0]

    def accurate_entry(self) -> LibraryEntry:
        """The (first) exact entry of the library."""
        for entry in self.entries.values():
            if entry.stats.max_absolute == 0:
                return entry
        raise LookupError("library has no accurate multiplier")

    def pareto_front(self) -> list[LibraryEntry]:
        """Entries not dominated in (relative_power, error std)."""
        entries = list(self.entries.values())
        front = []
        for candidate in entries:
            dominated = any(
                other is not candidate
                and other.relative_power <= candidate.relative_power
                and other.stats.std <= candidate.stats.std
                and (
                    other.relative_power < candidate.relative_power
                    or other.stats.std < candidate.stats.std
                )
                for other in entries
            )
            if not dominated:
                front.append(candidate)
        return sorted(front, key=lambda e: e.relative_power)

    def cheapest_within_error(self, max_error_std: float) -> LibraryEntry:
        """Cheapest entry whose error standard deviation is within a budget."""
        feasible = [e for e in self.entries.values() if e.stats.std <= max_error_std]
        if not feasible:
            raise LookupError(
                f"no library entry with error std <= {max_error_std:.3f}"
            )
        return min(feasible, key=lambda e: e.relative_power)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_multipliers(
        cls,
        multipliers: Iterable[Multiplier],
        reconfigurable: frozenset[str] = frozenset(),
    ) -> "MultiplierLibrary":
        """Characterize an iterable of multipliers into a library."""
        library = cls()
        for mult in multipliers:
            active_bits = _active_partial_product_bits(mult)
            power, area, delay = estimate_relative_cost(active_bits)
            entry = LibraryEntry(
                multiplier=mult,
                relative_power=power,
                relative_area=area,
                relative_delay=delay,
                stats=empirical_error_stats(mult),
                reconfigurable=mult.name in reconfigurable,
            )
            library.add(entry)
        return library

    @classmethod
    def synthetic_evoapprox(cls, seed: int = 2021, n_evolved: int = 8) -> "MultiplierLibrary":
        """Build the synthetic EvoApprox-like library used by the benches.

        The library contains the accurate multiplier, the perforation family
        (``m`` = 1..3), a truncation family, mean-compensated variants of the
        truncation family (systematic-error multipliers in the spirit of the
        low-variance designs used by [6]), and a set of pseudo-"evolved"
        LUT multipliers obtained by randomly zeroing partial-product bits —
        the same structural trick evolutionary approximation tends to find.
        """
        rng = np.random.default_rng(seed)
        multipliers: list[Multiplier] = [AccurateMultiplier()]
        multipliers.extend(PerforatedMultiplier(m) for m in (1, 2, 3))
        truncated = [
            TruncatedMultiplier(weight_bits=wb, activation_bits=ab)
            for wb, ab in ((0, 1), (0, 2), (1, 1), (1, 2), (2, 2), (2, 3))
        ]
        multipliers.extend(truncated)
        multipliers.extend(
            CompensatedMultiplier(base) for base in truncated[:3]
        )
        for index in range(n_evolved):
            multipliers.append(_evolved_multiplier(rng, index))
        reconfigurable = frozenset(
            mult.name for mult in multipliers if isinstance(mult, PerforatedMultiplier)
        )
        return cls.from_multipliers(multipliers, reconfigurable=reconfigurable)


def _active_partial_product_bits(multiplier: Multiplier) -> int:
    """Number of partial-product bits the multiplier still generates."""
    full = OPERAND_BITS * OPERAND_BITS
    if isinstance(multiplier, AccurateMultiplier):
        return full
    if isinstance(multiplier, PerforatedMultiplier):
        return full - OPERAND_BITS * multiplier.m
    if isinstance(multiplier, TruncatedMultiplier):
        active_rows = OPERAND_BITS - multiplier.activation_bits
        active_cols = OPERAND_BITS - multiplier.weight_bits
        return active_rows * active_cols
    if isinstance(multiplier, CompensatedMultiplier):
        # The constant correction is wired into the reduction tree for free
        # at this level of abstraction; cost follows the base multiplier.
        return _active_partial_product_bits(multiplier.base)
    if isinstance(multiplier, _EvolvedLUTMultiplier):
        return multiplier.active_bits
    # Unknown structure: assume a full-cost multiplier.
    return full


class _EvolvedLUTMultiplier(LUTMultiplier):
    """A pseudo-evolved multiplier built by dropping random PP bit columns."""

    def __init__(self, lut: np.ndarray, name: str, active_bits: int):
        super().__init__(lut, name=name)
        self.active_bits = int(active_bits)


def _evolved_multiplier(rng: np.random.Generator, index: int) -> _EvolvedLUTMultiplier:
    """Create one pseudo-evolved multiplier by masking random PP bits.

    For operands ``w = sum_i w_i 2^i`` and ``a = sum_j a_j 2^j`` the exact
    product is ``sum_{i,j} w_i a_j 2^{i+j}``.  Dropping a random subset of
    the 64 ``(i, j)`` terms produces an irregular but purely functional
    approximation similar in spirit to the evolved EvoApprox designs.
    """
    n_dropped = int(rng.integers(2, 14))
    all_pairs = [(i, j) for i in range(OPERAND_BITS) for j in range(OPERAND_BITS)]
    weights = np.array([1.0 / (1 + i + j) for i, j in all_pairs])
    weights /= weights.sum()
    dropped_idx = rng.choice(len(all_pairs), size=n_dropped, replace=False, p=weights)
    dropped = [all_pairs[k] for k in dropped_idx]

    w = np.arange(256, dtype=np.int64)[:, None]
    a = np.arange(256, dtype=np.int64)[None, :]
    lut = w * a
    for i, j in dropped:
        w_bit = (w >> i) & 1
        a_bit = (a >> j) & 1
        lut = lut - (w_bit * a_bit) * (1 << (i + j))
    active_bits = OPERAND_BITS * OPERAND_BITS - n_dropped
    return _EvolvedLUTMultiplier(lut, name=f"evolved_{index}", active_bits=active_bits)
