"""Lookup-table (LUT) based multiplier evaluation.

TFApprox — the flow the paper extends for its accuracy experiments — emulates
approximate hardware multipliers on GPU by exhaustive 256x256 lookup tables.
This module provides the same mechanism for the numpy engine:

* :func:`build_lut` materializes the table of any :class:`Multiplier`.
* :func:`apply_lut` evaluates products through a table with chunked fancy
  indexing so that large im2col matrices do not blow up memory.
* :class:`LUTMultiplier` turns an arbitrary table back into a
  :class:`Multiplier`, which is how externally-characterized multipliers
  (e.g. EvoApprox-style netlist simulations) would be imported.
"""

from __future__ import annotations

import numpy as np

from repro.multipliers.base import Multiplier, OPERAND_LEVELS, _validate_operands


def build_lut(multiplier: Multiplier) -> np.ndarray:
    """Materialize the exhaustive ``256 x 256`` product table of a multiplier."""
    return multiplier.build_lut()


def apply_lut(
    lut: np.ndarray, w: np.ndarray, a: np.ndarray, chunk_size: int = 1 << 20
) -> np.ndarray:
    """Evaluate ``lut[w, a]`` elementwise with bounded peak memory.

    Parameters
    ----------
    lut:
        ``(256, 256)`` product table.
    w, a:
        Broadcast-compatible integer operand arrays with values in
        ``[0, 255]``.
    chunk_size:
        Number of elements looked up per chunk.
    """
    lut = np.asarray(lut)
    if lut.shape != (OPERAND_LEVELS, OPERAND_LEVELS):
        raise ValueError(f"lut must have shape (256, 256), got {lut.shape}")
    w64, a64 = _validate_operands(w, a)
    w_b, a_b = np.broadcast_arrays(w64, a64)
    flat_w = w_b.reshape(-1)
    flat_a = a_b.reshape(-1)
    out = np.empty(flat_w.shape[0], dtype=np.int64)
    for start in range(0, flat_w.shape[0], chunk_size):
        stop = start + chunk_size
        out[start:stop] = lut[flat_w[start:stop], flat_a[start:stop]]
    return out.reshape(w_b.shape)


class LUTMultiplier(Multiplier):
    """A multiplier defined entirely by an exhaustive product table."""

    def __init__(self, lut: np.ndarray, name: str = "lut"):
        lut = np.asarray(lut, dtype=np.int64)
        if lut.shape != (OPERAND_LEVELS, OPERAND_LEVELS):
            raise ValueError(f"lut must have shape (256, 256), got {lut.shape}")
        self._lut = lut
        self.name = name

    @property
    def lut(self) -> np.ndarray:
        """The underlying product table (read-only view)."""
        view = self._lut.view()
        view.flags.writeable = False
        return view

    def multiply(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        return apply_lut(self._lut, w, a)

    @classmethod
    def from_multiplier(cls, multiplier: Multiplier) -> "LUTMultiplier":
        """Freeze any multiplier into its LUT form (used to cross-check paths)."""
        return cls(build_lut(multiplier), name=f"lut[{multiplier.name}]")
