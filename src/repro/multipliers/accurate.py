"""Exact unsigned 8x8 multiplier."""

from __future__ import annotations

import numpy as np

from repro.multipliers.base import Multiplier, _validate_operands


class AccurateMultiplier(Multiplier):
    """The accurate multiplier used by the baseline MAC array."""

    name = "accurate"

    def multiply(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        w, a = _validate_operands(w, a)
        return w * a
