"""Operand-truncation approximate multipliers.

Truncation multipliers zero the ``t`` least-significant bits of one or both
operands before multiplying.  They are a classic low-power family and are
used here (a) to populate the synthetic EvoApprox-like library for the
Fig. 5 comparison and (b) as an alternative functional approximation whose
error is also analytically tractable, which lets the control-variate
technique be exercised beyond the paper's perforation multiplier.
"""

from __future__ import annotations

import numpy as np

from repro.multipliers.base import Multiplier, OPERAND_BITS, _validate_operands


class TruncatedMultiplier(Multiplier):
    """Multiplier that truncates low bits of its operands before multiplying.

    Parameters
    ----------
    weight_bits:
        Number of low bits zeroed on the weight operand.
    activation_bits:
        Number of low bits zeroed on the activation operand.
    """

    def __init__(self, weight_bits: int = 0, activation_bits: int = 0):
        for label, value in (
            ("weight_bits", weight_bits),
            ("activation_bits", activation_bits),
        ):
            if not 0 <= int(value) < OPERAND_BITS:
                raise ValueError(
                    f"{label} must be within [0, {OPERAND_BITS - 1}], got {value}"
                )
        self.weight_bits = int(weight_bits)
        self.activation_bits = int(activation_bits)
        self.name = f"truncated_w{self.weight_bits}a{self.activation_bits}"

    @property
    def weight_mask(self) -> int:
        return ~((1 << self.weight_bits) - 1) & 0xFF

    @property
    def activation_mask(self) -> int:
        return ~((1 << self.activation_bits) - 1) & 0xFF

    def multiply(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        w, a = _validate_operands(w, a)
        return (w & np.int64(self.weight_mask)) * (a & np.int64(self.activation_mask))
