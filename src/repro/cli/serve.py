"""``repro serve`` — run the evaluation runtime as an HTTP job daemon.

Hosts trained models on one :class:`~repro.runtime.jobs.manager.JobManager`
behind the stdlib HTTP server (:mod:`repro.runtime.server`): clients POST
``/jobs`` and poll ``/jobs/<id>``, many concurrent campaigns share one warm
worker pool, and the service-level result cache makes duplicate cells free
across all of them.  ``repro sweep|table3|dse --remote URL`` are the
matching clients.

The startup handshake is one line on stdout::

    serving on http://127.0.0.1:43211 (1 model(s), workers=1)

``--port 0`` (the default) binds an ephemeral port, so scripted users — the
``make serve-smoke`` gate among them — parse the URL from that line.
SIGTERM/SIGINT shut down gracefully: queued jobs are cancelled, the engine
is closed and every shared-memory block is unlinked before exit.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.core.seeding import SeedBank
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    experiment_dataset,
)

from repro.cli.common import (
    add_workers_flag,
    check_engine_backend,
    check_workers,
    cli_error,
)


def _hosted_models(args: argparse.Namespace):
    """Train (or load from cache) the models the daemon hosts.

    ``--golden-workload`` hosts the deterministic golden-workload model
    with its canonical measurement setup (calibration head included), so a
    served sweep is byte-comparable against ``results/golden/``.

    Returns ``(trained_models, datasets, calibration_images,
    max_eval_images)``.
    """
    if args.golden_workload:
        from repro.provenance.workload import (
            CALIBRATION_IMAGES,
            _train_workload_model,
        )

        trained, dataset = _train_workload_model()
        return [trained], {dataset.name: dataset}, CALIBRATION_IMAGES, None

    bank = SeedBank(args.seed)
    cache = TrainedModelCache(cache_dir=args.cache_dir)
    settings = TrainingSettings(epochs=args.epochs)
    datasets = {}
    trained_models = []
    for classes in args.classes:
        dataset = experiment_dataset(
            num_classes=classes,
            seed=bank.seed_for("dataset") if args.seed is not None else None,
        )
        datasets[dataset.name] = dataset
        for name in args.models:
            trained_models.append(
                cache.load_or_train(name, dataset, settings, verbose=args.verbose)
            )
    return trained_models, datasets, args.calibration_images, args.max_eval_images


def cmd_serve(args: argparse.Namespace) -> int:
    for error in (check_engine_backend(args.engine_backend), check_workers(args.workers)):
        if error is not None:
            return cli_error(error)
    from repro.runtime.jobs import JobManager
    from repro.runtime.server import JobServer
    from repro.runtime.sizing import resolve_worker_count

    trained_models, datasets, calibration_images, max_eval_images = _hosted_models(args)
    effective_workers = resolve_worker_count(args.workers)
    manager = JobManager(
        trained_models,
        datasets,
        max_workers=effective_workers,
        requested_workers=args.workers,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        engine_backend=args.engine_backend,
        reuse_prefix=not args.no_prefix_reuse,
        # A daemon's results are meant to be shared: force the publish-once
        # path when asked, even for a serial pool.
        use_shared_memory=True if args.force_shared_memory else None,
        max_queue_depth=args.queue_depth,
        max_inflight_per_session=args.session_inflight,
        default_priority=args.default_priority,
        starvation_limit=args.starvation_limit,
        cache_entries=args.cache_entries,
        cache_persist_dir=args.cache_persist,
        ledger_dir=args.ledger_dir,
        seed=args.seed,
        record_manifests=args.manifests,
    )
    server = JobServer(manager, host=args.host, port=args.port)

    def _shutdown(signum, frame) -> None:
        # shutdown() blocks until serve_forever() returns; calling it from
        # the signal handler on the serving thread would deadlock, so a
        # helper thread delivers it.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)

    print(
        f"serving on {server.url} ({len(trained_models)} model(s), "
        f"workers={manager.service.max_workers})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        manager.close()
    print("serve: shut down cleanly", flush=True)
    return 0


def register(sub) -> None:
    serve = sub.add_parser(
        "serve",
        help="run the evaluation runtime as an HTTP job daemon "
        "(POST /jobs, GET /jobs/<id>, /models, /stats, /healthz); "
        "`repro sweep|table3|dse --remote URL` are the matching clients",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listening port; 0 (the default) binds an ephemeral port, "
        "printed in the one-line startup handshake",
    )
    serve.add_argument(
        "--models",
        nargs="+",
        choices=MODEL_NAMES,
        default=["vgg13"],
        help="reference networks to host (trained or loaded from cache at "
        "startup)",
    )
    serve.add_argument(
        "--classes",
        type=int,
        nargs="+",
        choices=(10, 100),
        default=[10],
        help="dataset variants to host each model on",
    )
    serve.add_argument("--epochs", type=int, default=6)
    serve.add_argument(
        "--golden-workload",
        action="store_true",
        help="host the deterministic golden-workload model (canonical "
        "measurement setup) instead of --models/--classes — served sweeps "
        "are byte-comparable against results/golden/",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed: dataset generation and the per-session job seed "
        "streams derive from it",
    )
    serve.add_argument("--cache-dir", default=None)
    add_workers_flag(serve)
    serve.add_argument(
        "--engine-backend",
        default=None,
        help="engine backend name (validated against the registry; unknown "
        "names exit with a clear error)",
    )
    serve.add_argument("--max-eval-images", type=int, default=None)
    serve.add_argument("--calibration-images", type=int, default=128)
    serve.add_argument("--no-prefix-reuse", action="store_true")
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admission control: jobs queued or running beyond this are "
        "rejected with HTTP 429 reason queue_full",
    )
    serve.add_argument(
        "--session-inflight",
        type=int,
        default=8,
        help="admission control: per-session in-flight job cap (HTTP 429 "
        "reason session_busy beyond it)",
    )
    serve.add_argument(
        "--default-priority",
        type=int,
        default=0,
        help="priority band of jobs submitted without an explicit one "
        "(higher runs first; FIFO within a band)",
    )
    serve.add_argument(
        "--starvation-limit",
        type=int,
        default=8,
        help="after this many consecutive pops that bypass the oldest "
        "queued job, serve it regardless of priority",
    )
    serve.add_argument(
        "--cache-persist",
        default=None,
        metavar="DIR",
        help="spill the result cache through an on-disk ledger here; a "
        "restarted daemon reloads it and starts warm (a repeated sweep "
        "is a 100%% cache-hit run)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        help="service-level result cache capacity in cells (default: "
        "unbounded; LRU eviction when set)",
    )
    serve.add_argument(
        "--ledger-dir",
        default=None,
        help="write per-session job-cell ledgers under this directory "
        "(content-addressed, namespaced per session)",
    )
    serve.add_argument(
        "--manifests",
        action="store_true",
        help="write a run manifest per completed job under results/runs/",
    )
    serve.add_argument(
        "--force-shared-memory",
        action="store_true",
        help="publish hosted models and datasets through shared memory even "
        "with a serial pool (exercises the publish-once path)",
    )
    serve.add_argument("--verbose", action="store_true")
    serve.set_defaults(func=cmd_serve)
