"""``repro sweep`` — the multi-model Table III accuracy sweep.

Since the job-oriented re-architecture this verb is a thin client of the
runtime's job API: locally it hosts the trained models on an in-process
:class:`~repro.runtime.jobs.manager.JobManager` and submits one job per
model; with ``--remote URL`` it POSTs the *same* jobs to a running
``repro serve`` daemon.  Both paths are bit-exact with the pre-jobs
``parallel_sweep`` because the engine underneath is identical.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import Table
from repro.core.seeding import SeedBank
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    experiment_dataset,
)

from repro.cli.common import (
    add_remote_flag,
    add_workers_flag,
    check_engine_backend,
    check_workers,
    cli_error,
    model_manifest_entries,
    sweep_jobs_local,
    sweep_jobs_remote,
    sweep_manifest_outputs,
)


def _remote_sweep(args: argparse.Namespace) -> int:
    """The ``--remote`` path: sweep the daemon's hosted models as jobs."""
    from repro.provenance import record_run

    with record_run("sweep", label="remote") as manifest:
        manifest.inputs.update(
            {
                "remote": args.remote,
                "models": list(args.models),
                "perforations": list(args.perforations),
            }
        )
        try:
            sweep, totals, infos = sweep_jobs_remote(
                args.remote, args.models, args.perforations
            )
        except (ValueError, OSError) as error:
            manifest.status = "error"
            manifest.error = f"{type(error).__name__}: {error}"
            return cli_error(str(error))
        manifest.outputs.update(sweep_manifest_outputs(sweep))
        manifest.outputs["jobs"] = totals
    datasets = list(dict.fromkeys(info["dataset"] for info in infos))
    table = Table(
        title=f"Accuracy sweep via {args.remote} "
        f"({len(infos)} hosted models, m = {', '.join(map(str, args.perforations))}, "
        f"{totals['cache_hits']}/{totals['cells']} cells from cache)",
        columns=["model", "dataset", "baseline acc", "m", "ours loss %", "w/o V loss %"],
    )
    for info in infos:
        for m in args.perforations:
            table.add_row(
                info["name"],
                info["dataset"],
                sweep.baselines[(info["name"], info["dataset"])],
                m,
                sweep.lookup(info["name"], info["dataset"], m, True).accuracy_loss,
                sweep.lookup(info["name"], info["dataset"], m, False).accuracy_loss,
            )
    print(table.render(float_format="{:.3f}"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    for error in (check_engine_backend(args.engine_backend), check_workers(args.workers)):
        if error is not None:
            return cli_error(error)
    if args.remote is not None:
        if args.workers != 1:
            return cli_error(
                "--remote submits jobs to the daemon's worker pool; "
                "--workers configures a local service and has no effect"
            )
        return _remote_sweep(args)
    from repro.provenance import dataset_digest, record_run

    with record_run("sweep", label=f"c{args.classes}") as manifest:
        bank = SeedBank(args.seed)
        dataset = experiment_dataset(
            num_classes=args.classes,
            seed=bank.seed_for("dataset") if args.seed is not None else None,
        )
        cache = TrainedModelCache(cache_dir=args.cache_dir)
        settings = TrainingSettings(epochs=args.epochs)
        trained_models = [
            cache.load_or_train(name, dataset, settings, verbose=args.verbose)
            for name in args.models
        ]
        manifest.inputs.update(
            {
                "dataset": dataset.name,
                "dataset_digest": dataset_digest(dataset),
                "models": model_manifest_entries(trained_models, settings),
                "seed": args.seed,
                "perforations": list(args.perforations),
                "max_eval_images": args.max_eval_images,
                "engine_backend": args.engine_backend,
                "workers": args.workers,
                "reuse_prefix": not args.no_prefix_reuse,
            }
        )
        sweep, totals, stats = sweep_jobs_local(
            trained_models,
            {dataset.name: dataset},
            args.perforations,
            args.workers,
            max_eval_images=args.max_eval_images,
            engine_backend=args.engine_backend,
            reuse_prefix=not args.no_prefix_reuse,
        )
        manifest.outputs.update(sweep_manifest_outputs(sweep))
        manifest.outputs["jobs"] = totals
        manifest.inputs["service"] = {
            "requested_workers": stats["engine"]["requested_workers"],
            "workers": stats["engine"]["workers"],
        }
    table = Table(
        title=f"Accuracy sweep on {dataset.name} "
        f"({len(args.models)} models, m = {', '.join(map(str, args.perforations))})",
        columns=["model", "baseline acc", "m", "ours loss %", "w/o V loss %"],
    )
    for trained in trained_models:
        for m in args.perforations:
            table.add_row(
                trained.name,
                sweep.baselines[(trained.name, dataset.name)],
                m,
                sweep.lookup(trained.name, dataset.name, m, True).accuracy_loss,
                sweep.lookup(trained.name, dataset.name, m, False).accuracy_loss,
            )
    print(table.render(float_format="{:.3f}"))
    return 0


def register(sub) -> None:
    sweep = sub.add_parser(
        "sweep", help="multi-model Table III accuracy sweep (optionally parallel)"
    )
    sweep.add_argument("--models", nargs="+", choices=MODEL_NAMES, default=["vgg13"])
    sweep.add_argument("--classes", type=int, choices=(10, 100), default=10)
    sweep.add_argument("--epochs", type=int, default=6)
    sweep.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    sweep.add_argument("--max-eval-images", type=int, default=None)
    add_workers_flag(sweep)
    sweep.add_argument(
        "--engine-backend",
        default=None,
        help="engine backend name (validated against the registry; unknown "
        "names exit with a clear error)",
    )
    sweep.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed of every stochastic path (synthetic dataset "
        "generation); distinct streams are derived per consumer",
    )
    sweep.add_argument("--cache-dir", default=None)
    sweep.add_argument("--no-prefix-reuse", action="store_true")
    sweep.add_argument("--verbose", action="store_true")
    add_remote_flag(sweep)
    sweep.set_defaults(func=cmd_sweep)
