"""``repro error-model`` — closed-form vs Monte-Carlo convolution error stats."""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.reporting import Table
from repro.core.error_model import convolution_error_stats, simulate_convolution_error


def cmd_error_model(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    weights = np.clip(np.round(rng.normal(128, 20, size=args.taps)), 0, 255)
    table = Table(
        title=f"Convolution error, {args.taps} taps, perforation m={args.m}",
        columns=["method", "model mean", "model std", "simulated mean", "simulated std"],
    )
    for use_cv, label in ((False, "w/o V"), (True, "ours (+V)")):
        stats = convolution_error_stats(weights, args.m, use_control_variate=use_cv)
        simulated = simulate_convolution_error(
            weights, args.m, n_trials=args.trials, use_control_variate=use_cv, rng=rng
        )
        table.add_row(label, stats.mean, stats.std, float(simulated.mean()), float(simulated.std()))
    print(table.render(float_format="{:.1f}"))
    return 0


def register(sub) -> None:
    error_model = sub.add_parser("error-model", help="closed-form vs Monte-Carlo error statistics")
    error_model.add_argument("--m", type=int, default=2)
    error_model.add_argument("--taps", type=int, default=576)
    error_model.add_argument("--trials", type=int, default=10000)
    error_model.add_argument("--seed", type=int, default=0)
    error_model.set_defaults(func=cmd_error_model)
