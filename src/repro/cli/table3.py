"""``repro table3`` — the full Table III benchmark over the job API."""

from __future__ import annotations

import argparse

from repro.analysis.reporting import Table
from repro.core.seeding import SeedBank
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    experiment_dataset,
)

from repro.cli.common import (
    add_remote_flag,
    add_workers_flag,
    check_engine_backend,
    check_workers,
    cli_error,
    model_manifest_entries,
    sweep_jobs_local,
    sweep_jobs_remote,
    sweep_manifest_outputs,
)


def _render_table3(sweep, rows, datasets, perforations, title) -> None:
    """The Table III rendering shared by the local and remote paths.

    ``rows`` is the ordered ``(model, dataset)`` sequence to print;
    average rows per dataset follow, as in the paper's table.
    """
    table = Table(
        title=title,
        columns=["model", "dataset", "baseline acc", "m", "ours loss %", "w/o V loss %"],
    )
    for model_name, dataset_name in rows:
        for m in perforations:
            table.add_row(
                model_name,
                dataset_name,
                sweep.baselines[(model_name, dataset_name)],
                m,
                sweep.lookup(model_name, dataset_name, m, True).accuracy_loss,
                sweep.lookup(model_name, dataset_name, m, False).accuracy_loss,
            )
    for dataset_name in datasets:
        for m in perforations:
            table.add_row(
                "average",
                dataset_name,
                "",
                m,
                sweep.average_loss(dataset_name, m, True),
                sweep.average_loss(dataset_name, m, False),
            )
    print(table.render(float_format="{:.3f}"))


def _averages_block(sweep, datasets, perforations) -> dict:
    return {
        f"{dataset_name}/m={m}/cv={with_cv}": sweep.average_loss(
            dataset_name, m, with_cv
        )
        for dataset_name in datasets
        for m in perforations
        for with_cv in (True, False)
    }


def _remote_table3(args: argparse.Namespace) -> int:
    """The ``--remote`` path: the full benchmark as jobs against a daemon."""
    from repro.provenance import record_run

    with record_run("table3", label="remote") as manifest:
        manifest.inputs.update(
            {
                "remote": args.remote,
                "models": list(args.models),
                "perforations": list(args.perforations),
            }
        )
        try:
            sweep, totals, infos = sweep_jobs_remote(
                args.remote, args.models, args.perforations
            )
        except (ValueError, OSError) as error:
            manifest.status = "error"
            manifest.error = f"{type(error).__name__}: {error}"
            return cli_error(str(error))
        datasets = list(dict.fromkeys(info["dataset"] for info in infos))
        manifest.outputs.update(sweep_manifest_outputs(sweep))
        manifest.outputs["jobs"] = totals
        manifest.outputs["averages"] = _averages_block(
            sweep, datasets, args.perforations
        )
    _render_table3(
        sweep,
        [(info["name"], info["dataset"]) for info in infos],
        datasets,
        args.perforations,
        f"Table III accuracy sweep via {args.remote} "
        f"({len(infos)} hosted models x {len(datasets)} datasets, "
        f"m = {', '.join(map(str, args.perforations))}, "
        f"{totals['cache_hits']}/{totals['cells']} cells from cache)",
    )
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    """The full Table III benchmark: every model x both datasets, one service.

    All requested (model, dataset) combinations are trained (or loaded from
    cache) and swept through ONE multi-model job manager: every trained
    network and both datasets are published once and all cells are served
    from the same worker pool — duplicate cells across jobs from the
    service-level result cache.
    """
    for error in (check_engine_backend(args.engine_backend), check_workers(args.workers)):
        if error is not None:
            return cli_error(error)
    if args.remote is not None:
        if args.workers != 1:
            return cli_error(
                "--remote submits jobs to the daemon's worker pool; "
                "--workers configures a local service and has no effect"
            )
        return _remote_table3(args)
    from repro.provenance import dataset_digest, record_run

    with record_run("table3") as manifest:
        bank = SeedBank(args.seed)
        cache = TrainedModelCache(cache_dir=args.cache_dir)
        settings = TrainingSettings(epochs=args.epochs)
        datasets = {}
        trained_models = []
        for classes in args.classes:
            # Same seed stream as `sweep` and `dse` (num_classes already
            # differentiates the generated data and the dataset name), so one
            # --seed yields the same datasets — and therefore cache-hits the
            # same trained models — across all three commands.
            dataset = experiment_dataset(
                num_classes=classes,
                seed=bank.seed_for("dataset") if args.seed is not None else None,
            )
            datasets[dataset.name] = dataset
            for name in args.models:
                trained_models.append(
                    cache.load_or_train(name, dataset, settings, verbose=args.verbose)
                )
        manifest.inputs.update(
            {
                "datasets": {
                    name: dataset_digest(dataset)
                    for name, dataset in datasets.items()
                },
                "models": model_manifest_entries(trained_models, settings),
                "seed": args.seed,
                "perforations": list(args.perforations),
                "max_eval_images": args.max_eval_images,
                "engine_backend": args.engine_backend,
                "workers": args.workers,
                "reuse_prefix": not args.no_prefix_reuse,
            }
        )
        sweep, totals, stats = sweep_jobs_local(
            trained_models,
            datasets,
            args.perforations,
            args.workers,
            max_eval_images=args.max_eval_images,
            engine_backend=args.engine_backend,
            reuse_prefix=not args.no_prefix_reuse,
        )
        manifest.outputs.update(sweep_manifest_outputs(sweep))
        manifest.outputs["jobs"] = totals
        manifest.inputs["service"] = {
            "requested_workers": stats["engine"]["requested_workers"],
            "workers": stats["engine"]["workers"],
        }
        manifest.outputs["averages"] = _averages_block(
            sweep, datasets, args.perforations
        )
    _render_table3(
        sweep,
        [(trained.name, trained.dataset_name) for trained in trained_models],
        datasets,
        args.perforations,
        f"Table III accuracy sweep ({len(args.models)} models x "
        f"{len(datasets)} datasets, m = {', '.join(map(str, args.perforations))}, "
        f"workers={args.workers})",
    )
    return 0


def register(sub) -> None:
    table3 = sub.add_parser(
        "table3",
        help="the full Table III benchmark: every model x both datasets "
        "served by one multi-model evaluation session",
    )
    table3.add_argument(
        "--models", nargs="+", choices=MODEL_NAMES, default=list(MODEL_NAMES)
    )
    table3.add_argument(
        "--classes",
        type=int,
        nargs="+",
        choices=(10, 100),
        default=[10, 100],
        help="dataset variants to sweep (default: both, as in the paper)",
    )
    table3.add_argument("--epochs", type=int, default=6)
    table3.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    table3.add_argument("--max-eval-images", type=int, default=None)
    add_workers_flag(table3)
    table3.add_argument(
        "--engine-backend",
        default=None,
        help="engine backend name (validated against the registry; unknown "
        "names exit with a clear error)",
    )
    table3.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed of every stochastic path (synthetic dataset "
        "generation); distinct streams are derived per consumer",
    )
    table3.add_argument("--cache-dir", default=None)
    table3.add_argument("--no-prefix-reuse", action="store_true")
    table3.add_argument("--verbose", action="store_true")
    add_remote_flag(table3)
    table3.set_defaults(func=cmd_table3)
