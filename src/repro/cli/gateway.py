"""``repro gateway`` — front a fleet of ``repro serve`` shards with one URL.

The gateway speaks the exact job API a single daemon does, so every
``--remote`` client works unchanged against it; behind it, models are
sharded across N backend daemons (disjoint per shard — see
:mod:`repro.runtime.fleet`).  Shards come from two sources, freely mixed:

* ``--backend URL`` *adopts* an already-running daemon (its lifecycle
  stays with whoever started it);
* ``--spawn "SERVE ARGS"`` *spawns* a local shard — the quoted string is
  passed to ``repro serve`` verbatim (e.g. ``--spawn "--golden-workload
  --workers 2"``) and the child is terminated with the gateway.

The startup handshake is one line on stdout::

    gateway on http://127.0.0.1:45123 (2 shard(s), 3 model(s))

``--port 0`` (the default) binds an ephemeral port, so scripted users —
the ``make gateway-smoke`` gate among them — parse the URL from that
line.  SIGTERM/SIGINT shut down gracefully: the health monitor stops,
spawned shards get SIGTERM (their clean path: unlink every shared-memory
block) and the final line is ``gateway: shut down cleanly``.
"""

from __future__ import annotations

import argparse
import shlex
import signal
import threading

from repro.cli.common import cli_error


def cmd_gateway(args: argparse.Namespace) -> int:
    from repro.runtime.fleet import (
        Backend,
        BackendPool,
        DaemonSupervisor,
        FleetError,
        GatewayServer,
    )
    from repro.runtime.jobs.client import JobClientError

    if not args.backend and not args.spawn:
        return cli_error(
            "a gateway needs at least one shard: pass --backend URL "
            "(adopt a running daemon) and/or --spawn \"SERVE ARGS\""
        )

    supervisor = DaemonSupervisor()
    try:
        # Adopted shards first, then spawned ones: shard names (and with
        # them the global model order) are deterministic for a fixed
        # command line.
        shards: list[tuple[str, str]] = []
        for url in args.backend:
            shards.append((f"shard{len(shards)}", url))
        for spec in args.spawn:
            name = f"shard{len(shards)}"
            daemon = supervisor.spawn(shlex.split(spec), name=name)
            shards.append((name, daemon.url))
        pool = BackendPool(
            [
                Backend(
                    name,
                    url,
                    request_timeout=args.request_timeout,
                    retries=args.retries,
                    backoff=args.backoff,
                    fail_threshold=args.fail_threshold,
                )
                for name, url in shards
            ]
        )
        server = GatewayServer(pool, host=args.host, port=args.port)
    except (FleetError, JobClientError, ValueError, OSError) as error:
        supervisor.terminate_all()
        return cli_error(f"gateway startup failed: {error}")

    pool.start_monitor(args.health_interval)

    def _shutdown(signum, frame) -> None:
        # shutdown() blocks until serve_forever() returns; a helper thread
        # delivers it so the signal handler cannot deadlock the server.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)

    print(
        f"gateway on {server.url} ({len(shards)} shard(s), "
        f"{len(server.table)} model(s))",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        pool.close()
        supervisor.terminate_all()
    print("gateway: shut down cleanly", flush=True)
    return 0


def register(sub) -> None:
    gateway = sub.add_parser(
        "gateway",
        help="front N sharded `repro serve` daemons with one job-API URL "
        "(`repro sweep|table3|dse --remote URL` work unchanged against it)",
    )
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument(
        "--port",
        type=int,
        default=0,
        help="listening port; 0 (the default) binds an ephemeral port, "
        "printed in the one-line startup handshake",
    )
    gateway.add_argument(
        "--backend",
        action="append",
        default=[],
        metavar="URL",
        help="adopt an already-running daemon at URL (repeatable); its "
        "lifecycle stays with whoever started it",
    )
    gateway.add_argument(
        "--spawn",
        action="append",
        default=[],
        metavar="SERVE_ARGS",
        help="spawn a local shard: the quoted string is passed to "
        "`repro serve` verbatim (repeatable); spawned shards are "
        "terminated with the gateway",
    )
    gateway.add_argument(
        "--retries",
        type=int,
        default=3,
        help="per-shard retry budget for idempotent GETs (status polls) "
        "on transport failures, with capped exponential backoff",
    )
    gateway.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="initial retry backoff in seconds (doubles per attempt, capped)",
    )
    gateway.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        help="per-round-trip timeout towards a shard, seconds",
    )
    gateway.add_argument(
        "--fail-threshold",
        type=int,
        default=1,
        help="consecutive transport failures before a shard is marked down "
        "(requests to it fast-fail 503 until a health probe readmits it)",
    )
    gateway.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between background health probes (healthy shards are "
        "pinged; evicted shards re-verify their model set before rejoining)",
    )
    gateway.set_defaults(func=cmd_gateway)
