"""``repro dse`` — automated per-layer design-space exploration.

With ``--remote URL`` the campaign's candidate batches become jobs against
a running ``repro serve`` daemon (:class:`~repro.runtime.jobs.client.
RemotePlanEvaluator`): the search loop, the ledger keying and the Pareto
assembly are identical — only accuracy scoring crosses the wire, so
several campaigns (from several machines) can share one warm daemon and
its service-level result cache.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.analysis.reporting import Table, pareto_front_table
from repro.core.seeding import SeedBank
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    default_cache_dir,
    experiment_dataset,
)

from repro.cli.common import (
    add_remote_flag,
    add_workers_flag,
    check_engine_backend,
    check_workers,
    cli_error,
    model_manifest_entries,
    subsampled_eval,
)


def _dse_model_names(args: argparse.Namespace) -> list[str]:
    """The models one ``repro dse`` invocation explores.

    ``--models`` (a list, or the ``all`` sentinel) selects a multi-model
    campaign served by one shared evaluation service; without it the
    single ``--model`` is explored, exactly as before.
    """
    if not args.models:
        return [args.model]
    if "all" in args.models:
        return list(MODEL_NAMES)
    return list(dict.fromkeys(args.models))


def _dse_json_payload(dataset, result) -> dict:
    best = result.best()
    return {
        "dataset": dataset.name,
        "strategy": result.strategy,
        "max_loss": result.max_loss,
        "baseline_accuracy": result.baseline_accuracy,
        "accurate_energy_nj": result.accurate_energy_nj,
        "energy_reduction_percent": result.energy_reduction_percent(),
        "best": None
        if best is None
        else {
            "label": best.label,
            "energy_nj": best.energy_nj,
            "accuracy": best.accuracy,
            "accuracy_loss": best.accuracy_loss,
        },
        "front": [
            {
                "label": p.label,
                "energy_nj": p.energy_nj,
                "accuracy": p.accuracy,
                "accuracy_loss": p.accuracy_loss,
            }
            for p in result.front.points()
        ],
        "stats": result.stats,
    }


def _check_remote_flags(args: argparse.Namespace) -> str | None:
    """Flags that would silently do nothing against a daemon are rejected.

    The daemon's measurement setup (eval split, calibration head, engine
    backend, worker pool) wins — mirroring how ``run_campaign`` rejects
    measurement knobs that conflict with an externally-owned service.
    """
    clashes = []
    if args.workers != 1:
        clashes.append("--workers")
    if args.subsample_eval is not None:
        clashes.append("--subsample-eval")
    if args.max_eval_images is not None:
        clashes.append("--max-eval-images")
    if args.calibration_images != 128:
        clashes.append("--calibration-images")
    if args.engine_backend is not None:
        clashes.append("--engine-backend")
    if args.no_prefix_reuse:
        clashes.append("--no-prefix-reuse")
    if not clashes:
        return None
    return (
        "--remote delegates evaluation to the daemon, whose measurement "
        "setup wins; incompatible flags: " + ", ".join(clashes)
    )


def cmd_dse(args: argparse.Namespace) -> int:
    # Late-validated names: clear one-line errors instead of tracebacks.
    from repro.dse import CampaignLedger, has_strategy, run_campaign, strategy_names
    from repro.multipliers.library import MultiplierLibrary

    if not has_strategy(args.strategy):
        return cli_error(
            f"unknown search strategy {args.strategy!r}; registered strategies: "
            f"{', '.join(strategy_names())}"
        )
    for error in (check_engine_backend(args.engine_backend), check_workers(args.workers)):
        if error is not None:
            return cli_error(error)
    if args.subsample_eval is not None:
        if args.max_eval_images is not None:
            return cli_error(
                "--subsample-eval and --max-eval-images are mutually exclusive: "
                "the subsample already determines the evaluation set size"
            )
        if args.subsample_eval < 1:
            return cli_error(
                f"--subsample-eval must be positive, got {args.subsample_eval}"
            )
    if args.remote is not None:
        error = _check_remote_flags(args)
        if error is not None:
            return cli_error(error)

    from repro.dse.engine import front_payload
    from repro.provenance import dataset_digest, record_run

    with record_run("dse", label="-".join(_dse_model_names(args))) as manifest:
        bank = SeedBank(args.seed)
        dataset = experiment_dataset(
            num_classes=args.classes,
            seed=bank.seed_for("dataset") if args.seed is not None else None,
        )
        cache = TrainedModelCache(cache_dir=args.cache_dir)
        settings = TrainingSettings(epochs=args.epochs)
        model_names = _dse_model_names(args)
        multi = len(model_names) > 1
        trained_models = [
            cache.load_or_train(name, dataset, settings, verbose=args.verbose)
            for name in model_names
        ]

        eval_images = eval_labels = None
        if args.subsample_eval is not None:
            eval_images, eval_labels = subsampled_eval(
                dataset, args.subsample_eval, bank
            )

        if args.no_ledger:
            ledger_dir = None
        else:
            ledger_dir = args.ledger or os.path.join(
                args.cache_dir or default_cache_dir(), "dse-ledger"
            )

        manifest.inputs.update(
            {
                "dataset": dataset.name,
                "dataset_digest": dataset_digest(dataset),
                "models": model_manifest_entries(trained_models, settings),
                "seed": args.seed,
                "strategy": args.strategy,
                "max_loss": args.max_loss,
                "budget_evals": args.budget_evals,
                "perforations": list(args.perforations),
                "array_size": args.array_size,
                "max_eval_images": args.max_eval_images,
                "subsample_eval": args.subsample_eval,
                "calibration_images": args.calibration_images,
                "engine_backend": args.engine_backend,
                "workers": args.workers,
                "reuse_prefix": not args.no_prefix_reuse,
                "ledger_dir": ledger_dir,
                "resume": args.resume,
                "remote": args.remote,
            }
        )

        library = (
            MultiplierLibrary.synthetic_evoapprox()
            if args.include_library > 0
            else None
        )

        # A multi-model campaign hosts every network in ONE evaluation
        # service: models and datasets are published once and the worker
        # pool (or the in-process serial state) is reused across the
        # sequential campaigns.  An eval subsample becomes the hosted
        # dataset's test split inside build_campaign_service, keeping
        # ledger context keys serial-identical.  With --remote the daemon
        # plays that role for every campaign instead.
        service = None
        remote_client = None
        if args.remote is not None:
            from repro.runtime.jobs import HttpJobClient

            remote_client = HttpJobClient(args.remote)
        elif multi:
            from repro.dse.engine import build_campaign_service

            service = build_campaign_service(
                trained_models,
                dataset,
                args.workers,
                max_eval_images=args.max_eval_images,
                calibration_images=args.calibration_images,
                engine_backend=args.engine_backend,
                reuse_prefix=not args.no_prefix_reuse,
                eval_images=eval_images,
                eval_labels=eval_labels,
            )

        results = []
        try:
            for trained in trained_models:
                evaluator = None
                if remote_client is not None:
                    from repro.runtime.jobs import RemotePlanEvaluator

                    try:
                        evaluator = RemotePlanEvaluator(
                            remote_client, trained.name, session="dse"
                        )
                    except KeyError as error:
                        manifest.status = "error"
                        manifest.error = f"KeyError: {error}"
                        return cli_error(str(error).strip('"\''))
                rng_stream = f"nsga2-{trained.name}" if multi else "nsga2"
                result = run_campaign(
                    trained,
                    dataset,
                    strategy=args.strategy,
                    max_loss=args.max_loss,
                    budget_evals=args.budget_evals,
                    evaluator=evaluator,
                    ledger=CampaignLedger(path=ledger_dir),
                    resume=args.resume,
                    rng=bank.generator(rng_stream),
                    max_eval_images=args.max_eval_images,
                    calibration_images=args.calibration_images,
                    engine_backend=args.engine_backend,
                    reuse_prefix=not args.no_prefix_reuse,
                    # The shared service already hosts any eval subsample as
                    # its dataset's test split; passing the arrays alongside
                    # `service` is rejected by run_campaign.
                    eval_images=None if service is not None else eval_images,
                    eval_labels=None if service is not None else eval_labels,
                    workers=args.workers,
                    service=service,
                    array_size=args.array_size,
                    perforations=tuple(args.perforations),
                    library=library,
                    max_library_candidates=args.include_library,
                )
                results.append((trained, result))
        except ValueError as error:
            # Campaign-configuration errors (exhaustive search on an
            # unbounded space, bad budget, ...) are user errors, not
            # tracebacks.
            manifest.status = "error"
            manifest.error = f"{type(error).__name__}: {error}"
            return cli_error(str(error))
        except RuntimeError as error:
            # The remote evaluator raises RuntimeError for operations a
            # daemon cannot serve (e.g. baseline strategies that drive a
            # local executor) and for transport failures mid-campaign.
            if remote_client is None:
                raise
            manifest.status = "error"
            manifest.error = f"{type(error).__name__}: {error}"
            return cli_error(str(error))
        finally:
            if service is not None:
                try:
                    # The session context goes into the manifest while the
                    # service is still alive (shared-block sizes and all).
                    # Best effort: a partially-started service may not have
                    # one, and that must not skip close() below.
                    manifest.inputs["service"] = service.session_context()
                except Exception:
                    pass
                finally:
                    service.close()

        # Each campaign's outputs: the front with its ledger record keys
        # and the stats block, whose context_key is the exact digest the
        # CampaignLedger keyed this campaign's records under.
        manifest.outputs["models"] = [
            {
                "model": trained.name,
                "baseline_accuracy": result.baseline_accuracy,
                "accurate_energy_nj": result.accurate_energy_nj,
                "energy_reduction_percent": result.energy_reduction_percent(),
                "front": front_payload(result),
                "stats": result.stats,
            }
            for trained, result in results
        ]

    if multi:
        if args.json:
            payload = {
                "models": [
                    {"model": trained.name, **_dse_json_payload(dataset, result)}
                    for trained, result in results
                ],
            }
            print(json.dumps(payload, indent=2))
            return 0
        table = Table(
            title=f"DSE campaigns on {dataset.name} "
            f"(strategy={results[0][1].strategy}, loss budget {args.max_loss:.2f}%, "
            f"workers={args.workers})",
            columns=[
                "model",
                "baseline acc",
                "evals",
                "front",
                "best energy nJ",
                "best loss %",
                "energy saved %",
            ],
        )
        for trained, result in results:
            best = result.best()
            reduction = result.energy_reduction_percent()
            table.add_row(
                trained.name,
                result.baseline_accuracy,
                result.stats["evaluations"],
                result.stats["front_size"],
                "-" if best is None else f"{best.energy_nj:.1f}",
                "-" if best is None else f"{best.accuracy_loss:+.2f}",
                "-" if reduction is None else f"{reduction:.1f}",
            )
        print(table.render(float_format="{:.3f}"))
        return 0

    result = results[0][1]
    best = result.best()
    if args.json:
        payload = {
            "model": results[0][0].name,
            **_dse_json_payload(dataset, result),
        }
        print(json.dumps(payload, indent=2))
        return 0

    stats = result.stats
    print(
        f"{results[0][0].name} on {dataset.name}: strategy={result.strategy} "
        f"space={stats['space_size']} evaluations={stats['evaluations']} "
        f"ledger_replays={stats['ledger_replays']} "
        f"wall={stats['wall_clock_s']:.1f}s"
    )
    print(
        f"quantized baseline accuracy {result.baseline_accuracy:.3f}, "
        f"accurate-design energy {result.accurate_energy_nj:.1f} nJ, "
        f"loss budget {result.max_loss:.2f}%"
    )
    print()
    table = pareto_front_table(
        result.front.points(), baseline_energy_nj=result.accurate_energy_nj
    )
    print(table.render(float_format="{:.3f}"))
    print()
    if best is None:
        print(f"no front point within the {result.max_loss:.2f}% loss budget")
    else:
        reduction = result.energy_reduction_percent()
        print(
            f"minimum-energy feasible point: {best.label} "
            f"({best.energy_nj:.1f} nJ, loss {best.accuracy_loss:+.2f}%, "
            f"{reduction:.1f}% energy below the accurate design)"
        )
    return 0


def register(sub) -> None:
    dse = sub.add_parser(
        "dse",
        help="automated design-space exploration of per-layer approximation "
        "(energy/accuracy Pareto front under a loss budget)",
    )
    dse.add_argument("--model", choices=MODEL_NAMES, default="vgg13")
    dse.add_argument(
        "--models",
        nargs="+",
        choices=MODEL_NAMES + ("all",),
        default=None,
        help="run one campaign per listed model (or 'all' for every "
        "reference network), all served by ONE shared evaluation service "
        "(models and datasets published once, one worker pool); overrides "
        "--model",
    )
    dse.add_argument("--classes", type=int, choices=(10, 100), default=10)
    dse.add_argument("--epochs", type=int, default=6)
    dse.add_argument(
        "--strategy",
        default="greedy",
        help="search strategy name (see repro.dse.strategy_names(): "
        "exhaustive, greedy, nsga2, or a one-call baseline); unknown "
        "names exit with a clear error",
    )
    dse.add_argument(
        "--max-loss",
        type=float,
        default=0.5,
        help="accuracy-loss budget in percentage points (paper headline: 0.5)",
    )
    dse.add_argument(
        "--budget-evals",
        type=int,
        default=None,
        help="cap on fresh accuracy evaluations (ledger replays are free)",
    )
    dse.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed of every stochastic path (dataset generation, eval "
        "subsampling, NSGA-II); distinct streams are derived per consumer",
    )
    dse.add_argument(
        "--resume",
        action="store_true",
        help="replay ledger records of a previous (possibly killed) campaign "
        "instead of re-evaluating plans",
    )
    dse.add_argument(
        "--ledger",
        default=None,
        help="campaign ledger directory (default: <cache-dir>/dse-ledger); "
        "records are always written so campaigns are resumable",
    )
    dse.add_argument(
        "--no-ledger", action="store_true", help="keep the ledger in memory only"
    )
    dse.add_argument("--array-size", type=int, default=64)
    dse.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    dse.add_argument(
        "--include-library",
        type=int,
        default=0,
        metavar="N",
        help="add the N cheapest approximate-library multipliers as per-layer "
        "LUT candidates (slower to simulate)",
    )
    dse.add_argument("--max-eval-images", type=int, default=None)
    dse.add_argument(
        "--subsample-eval",
        type=int,
        default=None,
        metavar="N",
        help="evaluate on a seeded random subset of N test images (drawn "
        "from the --seed bank's eval-subsample stream)",
    )
    dse.add_argument("--calibration-images", type=int, default=128)
    add_workers_flag(dse)
    dse.add_argument(
        "--engine-backend",
        default=None,
        help="engine backend name (validated against the registry; unknown "
        "names exit with a clear error)",
    )
    dse.add_argument("--cache-dir", default=None)
    dse.add_argument("--no-prefix-reuse", action="store_true")
    dse.add_argument(
        "--json", action="store_true", help="emit the campaign result as JSON"
    )
    dse.add_argument("--verbose", action="store_true")
    add_remote_flag(dse)
    dse.set_defaults(func=cmd_dse)
