"""``repro verify-results`` — the golden-baseline regression gate."""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cli.common import cli_error


def cmd_verify_results(args: argparse.Namespace) -> int:
    """Golden-baseline verification (the `make check` regression gate).

    Without ``--refresh``: re-run the deterministic golden workload
    (unless ``--skip-workload``), compare it and the fresh bench ledger
    against ``results/golden/``, and exit 1 on any failure.  With
    ``--refresh``: rewrite the goldens from the current code and results —
    the deliberate re-baselining escape hatch behind ``make bench-refresh``.
    ``SKIP_REGRESSION=1`` skips the gate entirely (known-divergent
    environments).
    """
    from repro.analysis.reporting import regression_report_table
    from repro.provenance import (
        compare_bench_ledgers,
        load_json,
        record_run,
        write_json_atomic,
    )
    from repro.provenance.regression import (
        DEFAULT_TOLERANCE,
        Finding,
        RegressionReport,
    )
    from repro.provenance.workload import (
        run_golden_workload,
        verify_goldens,
        write_goldens,
    )

    if os.environ.get("SKIP_REGRESSION"):
        print("verify-results: skipped (SKIP_REGRESSION is set)")
        return 0
    tolerance = args.tolerance
    if tolerance is None:
        env_tolerance = os.environ.get("REPRO_REGRESSION_TOL")
        tolerance = float(env_tolerance) if env_tolerance else DEFAULT_TOLERANCE
    if tolerance < 0:
        return cli_error(f"--tolerance must be non-negative, got {tolerance}")
    fresh_ledger_path = os.path.join(args.results, "BENCH_engine.json")
    golden_ledger_path = os.path.join(args.golden, "BENCH_engine.json")

    if args.refresh:
        written = []
        if not args.skip_workload:
            written += write_goldens(run_golden_workload(), args.golden)
        if os.path.exists(fresh_ledger_path):
            # Canonicalized rewrite (sorted keys, atomic), so refreshing
            # twice from the same results is byte-identical.
            write_json_atomic(golden_ledger_path, load_json(fresh_ledger_path))
            written.append(golden_ledger_path)
        for path in written:
            print(f"refreshed {path}")
        if not written:
            print("nothing to refresh (no fresh results found)")
        return 0

    if not os.path.isdir(args.golden):
        return cli_error(
            f"golden directory {args.golden!r} does not exist — "
            "run `make bench-refresh` to create the baselines"
        )
    with record_run("verify-results") as manifest:
        manifest.inputs.update(
            {
                "golden_dir": args.golden,
                "results_dir": args.results,
                "tolerance": tolerance,
                "skip_workload": bool(args.skip_workload),
            }
        )
        report = RegressionReport(tolerance=tolerance)
        if os.path.exists(golden_ledger_path):
            if os.path.exists(fresh_ledger_path):
                report.extend(
                    compare_bench_ledgers(
                        load_json(golden_ledger_path),
                        load_json(fresh_ledger_path),
                        tolerance,
                    ).findings
                )
            else:
                report.findings.append(
                    Finding(
                        "BENCH_engine",
                        "",
                        "missing",
                        "fail",
                        f"fresh bench ledger {fresh_ledger_path} not found — "
                        "run the benches (`make engine dse`) first",
                    )
                )
        if not args.skip_workload:
            report.extend(verify_goldens(run_golden_workload(), args.golden, tolerance))
        manifest.outputs.update(report.to_payload())
        manifest.status = "ok" if report.ok else "error"

    if args.json:
        print(json.dumps(report.to_payload(), indent=2))
        return 0 if report.ok else 1
    if report.findings:
        print(regression_report_table(report.findings).render())
        print()
    verdict = "PASS" if report.ok else "FAIL"
    print(
        f"verify-results: {verdict} — {len(report.failures)} failure(s), "
        f"{len(report.warnings)} warning(s) against {args.golden} "
        f"(tolerance {tolerance:g})"
    )
    if not report.ok:
        print("re-baseline deliberately with `make bench-refresh`", file=sys.stderr)
    return 0 if report.ok else 1


def register(sub) -> None:
    verify = sub.add_parser(
        "verify-results",
        help="compare fresh results against the committed golden baselines "
        "in results/golden/ (exact for accuracy tables and Pareto fronts, "
        "tolerance bands for throughput); non-zero exit on regression",
    )
    verify.add_argument(
        "--results",
        default="results",
        help="directory holding the fresh results tree (default: results)",
    )
    verify.add_argument(
        "--golden",
        default=os.path.join("results", "golden"),
        help="directory holding the committed golden baselines "
        "(default: results/golden)",
    )
    verify.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative tolerance for throughput/speedup floors and size "
        "bands (default: $REPRO_REGRESSION_TOL or 0.5; exact-match "
        "sections ignore it)",
    )
    verify.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite the golden baselines from the current code and "
        "results instead of comparing (the `make bench-refresh` escape "
        "hatch)",
    )
    verify.add_argument(
        "--skip-workload",
        action="store_true",
        help="skip re-running the deterministic golden workload (compare "
        "the bench ledger only)",
    )
    verify.add_argument(
        "--json", action="store_true", help="emit the report as machine-readable JSON"
    )
    verify.set_defaults(func=cmd_verify_results)
