"""Shared helpers of the CLI package.

One module per verb lives next to this one (``repro.cli.sweep``,
``repro.cli.dse``, ...); everything two or more verbs need — error
formatting, late name validation, the shared ``--workers`` / ``--remote``
flags, manifest blocks, and the job-API sweep runners behind ``sweep`` and
``table3`` — is defined here exactly once, so the per-verb modules stay
pure "parse flags, call the library, print a table".
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.backends import backend_names, has_backend
from repro.core.seeding import SeedBank
from repro.simulation.campaign import TrainingSettings, trained_cache_stem


def model_manifest_entries(trained_models, settings: TrainingSettings) -> list[dict]:
    """Per-model input identity for a run manifest.

    ``model_digest`` hashes the trained parameter bytes with the ledger's
    array recipe; ``trained_cache_stem`` is byte-identical to the
    :class:`TrainedModelCache` entry the parameters came from — so the
    manifest's identity block reproduces both key schemes already used by
    the caching layers.
    """
    from repro.provenance import model_digest

    return [
        {
            "name": trained.name,
            "dataset": trained.dataset_name,
            "float_accuracy": trained.float_accuracy,
            "model_digest": model_digest(trained.model),
            "trained_cache_stem": trained_cache_stem(
                trained.name, trained.dataset_name, settings
            ),
        }
        for trained in trained_models
    ]


def sweep_manifest_outputs(sweep) -> dict:
    """A :class:`SweepResult` as the outputs block of a run manifest."""
    return {
        "baselines": {
            f"{model}@{dataset}": accuracy
            for (model, dataset), accuracy in sweep.baselines.items()
        },
        "records": [
            {
                "model": record.model,
                "dataset": record.dataset,
                "m": record.m,
                "with_control_variate": record.with_control_variate,
                "baseline_accuracy": record.baseline_accuracy,
                "approximate_accuracy": record.approximate_accuracy,
                "accuracy_loss": record.accuracy_loss,
            }
            for record in sweep.records
        ],
    }


def cli_error(message: str) -> int:
    """Print a one-line error to stderr and return the CLI failure status.

    Used for late-validated names (engine backends, search strategies) so a
    typo produces a clear message and a non-zero exit instead of a
    traceback.
    """
    print(f"error: {message}", file=sys.stderr)
    return 2


def check_engine_backend(name: str | None) -> str | None:
    """Error message for an unknown backend name, or ``None`` when valid."""
    if name is not None and not has_backend(name):
        return (
            f"unknown engine backend {name!r}; registered backends: "
            f"{', '.join(backend_names())} (see `repro backends`)"
        )
    return None


def check_workers(workers: int | None) -> str | None:
    """Error message for an invalid ``--workers`` value, or ``None``.

    One contract across every command that evaluates plans (``sweep``,
    ``table3``, ``dse``, ``serve``): the flag is the worker-process count
    of the evaluation service — ``1`` (the default) runs in-process,
    ``N > 1`` fans cells across ``N`` persistent worker processes, and
    anything below ``1`` is a usage error.
    """
    if workers is not None and int(workers) < 1:
        return f"--workers must be a positive integer, got {workers}"
    return None


def add_workers_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--workers`` flag (identical semantics everywhere)."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker process count of the evaluation service (1 = in-process "
        "serial; N > 1 fans evaluation cells across N persistent worker "
        "processes with models and datasets published once through shared "
        "memory; results are bit-exact either way). Requests beyond the "
        "schedulable CPUs (cgroup/affinity-aware, not the machine's core "
        "count) are clamped — on a 1-CPU host any N degrades to the serial "
        "path at 1.0x serial instead of N contending processes",
    )


def add_remote_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--remote URL`` flag (identical semantics everywhere).

    Points the verb at a running ``repro serve`` daemon: evaluation jobs
    are POSTed over its HTTP job API instead of running in-process, so the
    daemon's warm worker pool (and its service-level result cache) does the
    work.  Results are bit-exact with the local path because the daemon
    runs the same engine.
    """
    parser.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="submit evaluation jobs to a running `repro serve` daemon at "
        "URL (e.g. http://127.0.0.1:8752) instead of evaluating in-process; "
        "the daemon's hosted models and measurement setup apply, and "
        "duplicate cells across all its clients are served from its result "
        "cache",
    )


def subsampled_eval(dataset, count: int, bank: SeedBank):
    """A seeded random evaluation subset of ``count`` test images.

    Indices are drawn without replacement from the bank's dedicated
    ``eval-subsample`` stream and kept in ascending order, so the subset is
    reproducible under one ``--seed`` regardless of any other stochastic
    consumer.
    """
    n_test = dataset.test_images.shape[0]
    count = min(int(count), n_test)
    rng = bank.generator("eval-subsample")
    indices = np.sort(rng.choice(n_test, size=count, replace=False))
    return dataset.test_images[indices], dataset.test_labels[indices]


def sweep_jobs_local(
    trained_models,
    datasets,
    perforations,
    workers: int | None,
    *,
    max_eval_images: int | None = None,
    engine_backend: str | None = None,
    reuse_prefix: bool = True,
):
    """The Table III sweep through the in-process job API.

    Hosts the models on an owned :class:`~repro.runtime.jobs.manager.
    JobManager` and submits one job per model via
    :func:`~repro.runtime.jobs.client.sweep_over_jobs` — the exact code
    path ``--remote`` uses, minus HTTP.  Worker sizing mirrors
    :func:`~repro.simulation.campaign.parallel_sweep`: the request is
    clamped to the schedulable CPUs and the cell count, so results (and
    timings) match the pre-jobs CLI byte for byte.

    Returns ``(sweep, totals, stats)`` — the :class:`SweepResult`, the
    per-sweep job/cache totals, and the manager's final
    ``repro-runtime-stats/v1.1`` payload.
    """
    from repro.runtime.jobs import JobManager, LocalJobClient, sweep_over_jobs
    from repro.runtime.sizing import resolve_worker_count
    from repro.simulation.campaign import _sweep_cell_specs

    num_cells = len(_sweep_cell_specs(list(trained_models), tuple(perforations)))
    effective = resolve_worker_count(workers, num_cells=num_cells)
    manager = JobManager(
        trained_models,
        datasets,
        max_workers=effective,
        requested_workers=workers,
        max_eval_images=max_eval_images,
        engine_backend=engine_backend,
        reuse_prefix=reuse_prefix,
    )
    with LocalJobClient(manager) as client:
        sweep, totals = sweep_over_jobs(client, perforations=tuple(perforations))
        stats = client.stats()
    return sweep, totals, stats


def sweep_jobs_remote(url: str, model_names, perforations):
    """The Table III sweep against a ``repro serve`` daemon.

    Sweeps every hosted model whose name is in ``model_names`` (across all
    datasets the daemon hosts).  Raises :class:`ValueError` with a
    one-line message when a requested model is not hosted — the verb turns
    that into an exit-2 CLI error.

    Returns ``(sweep, totals, infos)`` — the :class:`SweepResult`, the
    per-sweep job/cache totals, and the swept ``/models`` descriptors.
    """
    from repro.runtime.jobs import HttpJobClient, sweep_over_jobs

    client = HttpJobClient(url)
    infos = client.models()
    hosted = {info["name"] for info in infos}
    wanted = list(dict.fromkeys(model_names))
    missing = [name for name in wanted if name not in hosted]
    if missing:
        raise ValueError(
            f"daemon at {url} does not host: {', '.join(missing)} "
            f"(hosted models: {', '.join(sorted(hosted)) or 'none'})"
        )
    kept = [info for info in infos if info["name"] in set(wanted)]
    indices = [info["index"] for info in kept]
    sweep, totals = sweep_over_jobs(
        client, perforations=tuple(perforations), models=indices
    )
    return sweep, totals, kept
