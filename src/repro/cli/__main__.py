"""``python -m repro.cli`` — same entry point as ``python -m repro``."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
