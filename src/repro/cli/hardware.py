"""``repro hardware`` — the hardware design-space table (Fig. 4 / Tables I-II)."""

from __future__ import annotations

import argparse

from repro.analysis.reporting import Table
from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.area_power import (
    macplus_area_share,
    macplus_power_share,
    normalized_array_area,
    normalized_array_power,
)
from repro.hardware.full_adders import total_fa_decrease


def cmd_hardware(args: argparse.Namespace) -> int:
    table = Table(
        title="Approximate MAC-array design space",
        columns=["N", "m", "norm. power", "norm. area", "MAC+ power %", "MAC+ area %", "FA decrease"],
    )
    for n in args.array_sizes:
        for m in args.perforations:
            config = AcceleratorConfig.make(n, m, use_control_variate=True)
            table.add_row(
                n,
                m,
                normalized_array_power(config),
                normalized_array_area(config),
                100 * macplus_power_share(config),
                100 * macplus_area_share(config),
                int(total_fa_decrease(n, m)),
            )
    print(table.render(float_format="{:.3f}"))
    return 0


def register(sub) -> None:
    hardware = sub.add_parser("hardware", help="hardware design-space sweep (Fig. 4 / Tables I-II)")
    hardware.add_argument("--array-sizes", type=int, nargs="+", default=[16, 32, 48, 64])
    hardware.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    hardware.set_defaults(func=cmd_hardware)
