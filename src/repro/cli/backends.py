"""``repro backends`` — list registered engine backends and availability."""

from __future__ import annotations

import argparse
import json

from repro.analysis.reporting import Table
from repro.core.backends import DEFAULT_BACKEND, backend_names, get_backend


def cmd_backends(args: argparse.Namespace) -> int:
    if args.json:
        payload = []
        for name in backend_names():
            backend = get_backend(name)
            available, reason = backend.availability()
            payload.append(
                {
                    "name": name,
                    "available": available,
                    "default": name == DEFAULT_BACKEND,
                    "fused_multi_plan": bool(backend.fused_multi_plan),
                    "description": backend.describe(),
                    "unavailable_reason": None if available else reason,
                }
            )
        print(json.dumps(payload, indent=2))
        return 0
    table = Table(
        title="Registered engine backends",
        columns=["name", "available", "default", "fused", "notes"],
    )
    for name in backend_names():
        backend = get_backend(name)
        available, reason = backend.availability()
        table.add_row(
            name,
            "yes" if available else "no",
            "*" if name == DEFAULT_BACKEND else "",
            "yes" if backend.fused_multi_plan else "no",
            reason if not available else backend.describe(),
        )
    print(table.render())
    return 0


def register(sub) -> None:
    backends = sub.add_parser(
        "backends", help="list registered engine backends and their availability"
    )
    backends.add_argument(
        "--json", action="store_true", help="emit the listing as machine-readable JSON"
    )
    backends.set_defaults(func=cmd_backends)
