"""Command-line interface for the most common reproduction workflows.

The CLI wraps the library's experiment machinery so a downstream user can
regenerate the paper's headline artifacts without writing Python:

* ``python -m repro hardware`` — the hardware design-space table
  (Fig. 4 + Table II + Table I in one sweep);
* ``python -m repro accuracy --model vgg13 --classes 10`` — train (or load
  from cache) one reference network and report its Table III row;
* ``python -m repro sweep --models vgg13 resnet44`` — the multi-model
  Table III sweep (optionally multi-process via ``--workers``);
* ``python -m repro table3 --workers 4`` — the full Table III benchmark
  (every model x both datasets) served by one multi-model evaluation
  session;
* ``python -m repro dse --strategy greedy --max-loss 0.5`` — the automated
  per-layer design-space exploration: search the per-layer approximation
  mapping minimizing energy within an accuracy-loss budget and print the
  resulting Pareto front (see :mod:`repro.dse`); ``--workers N`` fans
  candidate batches across N persistent worker processes and ``--models
  all`` runs one campaign per reference network on one shared service;
* ``python -m repro serve --port 8752`` — the evaluation runtime as a
  long-lived HTTP job daemon (POST ``/jobs``, poll ``/jobs/<id>``); and
  ``repro sweep|table3|dse --remote http://...`` run the exact same
  workloads as thin clients of such a daemon;
* ``python -m repro gateway --spawn "--golden-workload" --backend URL`` —
  one front URL over N sharded daemons (disjoint model sets, health-checked
  backend pool, aggregated ``/stats``); every ``--remote`` client works
  unchanged against the gateway URL;
* ``python -m repro error-model --m 2`` — the closed-form vs Monte-Carlo
  convolution error statistics of Section III.

``--workers`` has identical semantics across ``sweep``, ``table3``,
``dse`` and ``serve`` — the worker-process count of the evaluation runtime
(:mod:`repro.runtime`), 1 meaning in-process serial — and invalid values
exit with status 2 and a clear message, like unknown backend names.
``--remote URL`` likewise has identical semantics across ``sweep``,
``table3`` and ``dse``: submit evaluation jobs to the daemon at URL
instead of evaluating in-process (bit-exact either way).

Each sub-command prints an aligned text table to stdout (``repro backends
--json`` and ``repro dse --json`` emit machine-readable JSON instead).

Unknown engine-backend or search-strategy names exit with status 2 and a
one-line error naming the registered alternatives — never a traceback.

Reproducibility: ``repro dse`` and ``repro sweep`` accept a single
``--seed`` that drives *every* stochastic path (synthetic dataset
generation, evaluation subsampling, NSGA-II) through named
:class:`repro.core.seeding.SeedBank` streams.

Engine backends
---------------
The accuracy sweep compiles its product kernels through a pluggable engine
backend (:mod:`repro.core.backends`).  ``python -m repro backends`` lists
the registered backends and their availability, and ``--engine-backend``
selects one for the sweep::

    python -m repro backends
    python -m repro accuracy --model vgg13 --engine-backend lowmem
    python -m repro accuracy --model vgg13 --engine-backend numba  # JIT

Backends are bit-exact — they change simulation speed and memory only — and
an unavailable backend (e.g. ``numba`` without the package installed) falls
back to ``numpy`` with a warning.

Package layout
--------------
One module per verb (:mod:`repro.cli.sweep`, :mod:`repro.cli.dse`, ...),
each exposing ``register(subparsers)``; shared argument helpers live in
:mod:`repro.cli.common`.  :func:`build_parser` assembles them in a fixed
order, so ``--help`` output is stable.
"""

from __future__ import annotations

import argparse

from repro.cli import (
    accuracy,
    backends,
    dse,
    error_model,
    gateway,
    hardware,
    info,
    serve,
    sweep,
    table3,
    verify_results,
)

# Registration order == the order verbs appear in `repro --help`.
_VERBS = (
    hardware,
    accuracy,
    backends,
    sweep,
    table3,
    dse,
    info,
    verify_results,
    error_model,
    serve,
    gateway,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Control Variate Approximation for DNN Accelerators' (DAC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for verb in _VERBS:
        verb.register(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


__all__ = ["build_parser", "main"]
