"""``repro info`` — the provenance environment block, human- or JSON-form."""

from __future__ import annotations

import argparse
import json

from repro.analysis.reporting import Table


def cmd_info(args: argparse.Namespace) -> int:
    """Print the provenance environment block (the one inside every manifest)."""
    from repro.provenance import provenance_environment

    env = provenance_environment()
    if args.json:
        print(json.dumps(env, indent=2, sort_keys=True))
        return 0
    print(
        f"{env['package']['name']} {env['package']['version']} — "
        f"python {env['python']} ({env['implementation']}) on {env['platform']}, "
        f"{env['cpu_count']} cpu(s)"
    )
    table = Table(title="Probed packages", columns=["package", "available", "version / reason"])
    for name, probe in env["packages"].items():
        table.add_row(
            name,
            "yes" if probe["available"] else "no",
            probe["version"] if probe["available"] else probe["reason"],
        )
    print()
    print(table.render())
    table = Table(
        title="Engine backends",
        columns=["name", "available", "default", "fused", "reason"],
    )
    for row in env["engine_backends"]:
        table.add_row(
            row["name"],
            "yes" if row["available"] else "no",
            "*" if row["default"] else "",
            "yes" if row.get("fused_multi_plan") else "no",
            row["reason"] or "",
        )
    print()
    print(table.render())
    print()
    print(
        "seed defaults: "
        + ", ".join(f"{key}={value}" for key, value in env["seed_defaults"].items())
    )
    runtime = env["runtime"]
    print(
        f"runtime: stats schema {runtime['stats_schema']}, "
        f"auto workers resolve to {runtime['auto_workers']} on this host, "
        f"job queue depth {runtime['default_queue_depth']}, "
        f"per-session in-flight cap {runtime['default_session_inflight']}"
    )
    fused = runtime.get("fused_backends", [])
    print(
        f"fused multi-plan: {'on' if runtime.get('default_fuse_plans') else 'off'} "
        f"by default, group size {runtime.get('default_plan_group_size')}, "
        f"capable backends: {', '.join(fused) if fused else 'none'} "
        f"(stats report fused_launches / plans_per_launch_avg / "
        f"prefix_cache_hits)"
    )
    serving = env["serving"]
    cache_entries = serving["cache_entries"]
    persist = serving["cache_persist_path"]
    print(
        f"serving: queue depth {serving['queue_depth']}, "
        f"session cap {serving['session_inflight_cap']}, "
        f"default priority {serving['default_priority']} "
        f"(starvation limit {serving['starvation_limit']}), "
        f"cache {'unbounded' if cache_entries is None else cache_entries} "
        f"entries ({'memory-only' if persist is None else persist}), "
        f"client retries {serving['client_retries']} "
        f"(backoff {serving['client_backoff_s']}s..."
        f"{serving['client_max_backoff_s']}s)"
    )
    return 0


def register(sub) -> None:
    info = sub.add_parser(
        "info",
        help="print the provenance environment block (package versions, "
        "backend availability with failure reasons, seed defaults, runtime "
        "stats schema) — the block embedded verbatim in every run manifest",
    )
    info.add_argument(
        "--json", action="store_true", help="emit the block as machine-readable JSON"
    )
    info.set_defaults(func=cmd_info)
