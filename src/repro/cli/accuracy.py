"""``repro accuracy`` — accuracy sweep of one network (one Table III row)."""

from __future__ import annotations

import argparse

from repro.analysis.reporting import Table
from repro.core.backends import backend_names
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    accuracy_sweep,
    experiment_dataset,
)


def cmd_accuracy(args: argparse.Namespace) -> int:
    dataset = experiment_dataset(num_classes=args.classes)
    cache = TrainedModelCache(cache_dir=args.cache_dir)
    settings = TrainingSettings(epochs=args.epochs)
    trained = cache.load_or_train(args.model, dataset, settings, verbose=args.verbose)
    sweep = accuracy_sweep(
        [trained],
        {dataset.name: dataset},
        perforations=tuple(args.perforations),
        max_eval_images=args.max_eval_images,
        engine_backend=args.engine_backend,
        reuse_prefix=not args.no_prefix_reuse,
    )
    table = Table(
        title=f"{args.model} on {dataset.name} "
        f"(float accuracy {trained.float_accuracy:.3f}, "
        f"quantized baseline {sweep.baselines[(args.model, dataset.name)]:.3f})",
        columns=["m", "ours loss %", "w/o V loss %"],
    )
    for m in args.perforations:
        table.add_row(
            m,
            sweep.lookup(args.model, dataset.name, m, True).accuracy_loss,
            sweep.lookup(args.model, dataset.name, m, False).accuracy_loss,
        )
    print(table.render(float_format="{:.2f}"))
    return 0


def register(sub) -> None:
    accuracy = sub.add_parser("accuracy", help="accuracy sweep of one network (one Table III row)")
    accuracy.add_argument("--model", choices=MODEL_NAMES, default="vgg13")
    accuracy.add_argument("--classes", type=int, choices=(10, 100), default=10)
    accuracy.add_argument("--epochs", type=int, default=6)
    accuracy.add_argument("--perforations", type=int, nargs="+", default=[1, 2, 3])
    accuracy.add_argument("--max-eval-images", type=int, default=None)
    accuracy.add_argument("--cache-dir", default=None)
    accuracy.add_argument(
        "--engine-backend",
        choices=backend_names(),
        default=None,
        help="engine backend compiling the product kernels (bit-exact; "
        "unavailable backends fall back to numpy with a warning)",
    )
    accuracy.add_argument(
        "--no-prefix-reuse",
        action="store_true",
        help="disable cross-plan reuse of plan-invariant work (activation "
        "codes and the plan-invariant layer prefix); reuse is bit-exact, "
        "this is an escape hatch for debugging and A/B timing",
    )
    accuracy.add_argument("--verbose", action="store_true")
    accuracy.set_defaults(func=cmd_accuracy)
