"""ALWANN-style baseline: library multiplier selection plus weight tuning.

ALWANN (Mrazek et al., ICCAD 2019) builds approximate accelerators without
retraining by (a) choosing approximate multipliers from a characterized
library and (b) *tuning* the stored weights: every weight value ``w`` is
replaced by the nearby value ``w'`` whose approximate products best match
the exact products of ``w`` under the expected activation distribution.
The original work searches a per-layer (non-uniform) assignment with NSGA-II;
the paper's comparison uses the *uniform* variant (one multiplier type for
the whole network) for fairness, which is what this class implements: it
scans the library's Pareto front from cheapest to most accurate and keeps the
cheapest multiplier whose calibration-set accuracy stays within the allowed
drop.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TechniqueResult, evaluate_plan_accuracy
from repro.hardware.area_power import array_cost_from_multiplier
from repro.hardware.technology import GENERIC_14NM, TechnologyModel
from repro.multipliers.base import Multiplier, OPERAND_LEVELS
from repro.multipliers.library import LibraryEntry, MultiplierLibrary
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    LUTProduct,
)


def tune_weights(
    weight_codes: np.ndarray,
    multiplier: Multiplier,
    activation_codes: np.ndarray | None = None,
    search_radius: int = 2,
) -> np.ndarray:
    """ALWANN weight tuning: map each weight to the code minimizing expected error.

    For every weight value ``w`` the tuned value ``w'`` (within
    ``search_radius`` codes of ``w``) minimizes

        sum_a p(a) | approx(w', a) - w * a |

    where ``p(a)`` is the empirical activation distribution (uniform when no
    samples are given).  Only the value mapping depends on the multiplier, so
    the mapping is computed once per weight value and applied via lookup.
    """
    codes = np.asarray(weight_codes, dtype=np.int64)
    if codes.size and (codes.min() < 0 or codes.max() >= OPERAND_LEVELS):
        raise ValueError("weight codes out of the uint8 range")
    if activation_codes is None:
        probabilities = np.full(OPERAND_LEVELS, 1.0 / OPERAND_LEVELS)
    else:
        acts = np.asarray(activation_codes, dtype=np.int64).reshape(-1)
        counts = np.bincount(acts, minlength=OPERAND_LEVELS).astype(np.float64)
        probabilities = counts / counts.sum()
    lut = multiplier.build_lut().astype(np.float64)
    a_values = np.arange(OPERAND_LEVELS, dtype=np.float64)
    mapping = np.empty(OPERAND_LEVELS, dtype=np.int64)
    for w in range(OPERAND_LEVELS):
        lo = max(0, w - search_radius)
        hi = min(OPERAND_LEVELS - 1, w + search_radius)
        candidates = np.arange(lo, hi + 1)
        exact = w * a_values
        costs = np.abs(lut[candidates, :] - exact[None, :]) @ probabilities
        mapping[w] = candidates[int(np.argmin(costs))]
    return mapping[codes].astype(np.uint8)


class AlwannBaseline:
    """Uniform ALWANN: one library multiplier for the whole network."""

    name = "alwann"

    def __init__(
        self,
        library: MultiplierLibrary,
        array_size: int = 64,
        max_accuracy_drop: float = 0.01,
        technology: TechnologyModel = GENERIC_14NM,
        apply_weight_tuning: bool = True,
    ):
        self.library = library
        self.array_size = int(array_size)
        self.max_accuracy_drop = float(max_accuracy_drop)
        self.technology = technology
        self.apply_weight_tuning = bool(apply_weight_tuning)

    # ------------------------------------------------------------------
    def _candidates(self) -> list[LibraryEntry]:
        """Fixed-function library entries, cheapest first."""
        entries = [e for e in self.library.pareto_front() if not e.reconfigurable]
        return sorted(entries, key=lambda e: e.relative_power)

    def _apply_tuning(self, executor: ApproximateExecutor, multiplier: Multiplier) -> None:
        if not self.apply_weight_tuning:
            return
        for layer_name in executor.mac_layer_names():
            tuned = [
                tune_weights(codes, multiplier)
                for codes in executor.quantized_weights(layer_name)
            ]
            executor.set_weight_override(layer_name, tuned)

    def apply(
        self,
        executor: ApproximateExecutor,
        eval_images: np.ndarray,
        eval_labels: np.ndarray,
        calibration_images: np.ndarray | None = None,
        calibration_labels: np.ndarray | None = None,
    ) -> TechniqueResult:
        """Select the cheapest feasible multiplier and evaluate the result."""
        if calibration_images is None or calibration_labels is None:
            calibration_images, calibration_labels = eval_images, eval_labels
        baseline_plan = ExecutionPlan.uniform(AccurateProduct())
        baseline_acc = evaluate_plan_accuracy(executor, baseline_plan, eval_images, eval_labels)
        calib_baseline = evaluate_plan_accuracy(
            executor, baseline_plan, calibration_images, calibration_labels
        )

        chosen: LibraryEntry | None = None
        chosen_plan: ExecutionPlan | None = None
        for entry in self._candidates():
            plan = ExecutionPlan.uniform(LUTProduct(entry.multiplier))
            self._apply_tuning(executor, entry.multiplier)
            calib_acc = evaluate_plan_accuracy(
                executor, plan, calibration_images, calibration_labels
            )
            executor.clear_weight_overrides()
            if calib_baseline - calib_acc <= self.max_accuracy_drop:
                chosen = entry
                chosen_plan = plan
                break
        if chosen is None:
            # No approximate entry satisfies the budget: fall back to accurate.
            chosen = self.library.accurate_entry()
            chosen_plan = ExecutionPlan.uniform(AccurateProduct())

        self._apply_tuning(executor, chosen.multiplier)
        final_acc = evaluate_plan_accuracy(executor, chosen_plan, eval_images, eval_labels)
        executor.clear_weight_overrides()
        power_mw = array_cost_from_multiplier(
            chosen.relative_power,
            chosen.relative_area,
            self.array_size,
            tech=self.technology,
        ).power_mw
        return TechniqueResult(
            technique=self.name,
            plan=chosen_plan,
            array_power_mw=power_mw,
            extra_cycles_per_layer=0,
            accuracy=final_acc,
            baseline_accuracy=baseline_acc,
            details={"multiplier": chosen.name, "weight_tuning": self.apply_weight_tuning},
        )
