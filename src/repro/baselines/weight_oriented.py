"""Weight-oriented approximation baseline (Tasoulas et al., TCAS-I 2020).

The weight-oriented approach ([6] in the paper) uses runtime-reconfigurable
multipliers with a few accuracy modes and selects the mode *per weight
value*: weights that would induce large multiplication errors are mapped to
the low-approximation mode, the remaining ones to the aggressive mode.  The
multipliers carry a constant correction for their systematic (mean) error,
so the technique is unbiased but — as Section III of the paper points out —
the error *variance* remains, which is why it must stay conservative.

This implementation expresses the idea on the perforation family:

* mode assignment: weight codes below a magnitude threshold use the
  aggressive perforation ``m_high``; codes above it use ``m_low``;
* mean compensation: the per-filter constant ``sum_j E[x_j] * w_j`` is added
  to the accumulation (the constant-correction scheme of [6]);
* hardware: the array pays a reconfiguration overhead on its multipliers and
  its power follows the mode mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import TechniqueResult, evaluate_plan_accuracy
from repro.core.control_variate import ControlVariate
from repro.core.product_kernels import ProductKernel, _WeightOperand
from repro.hardware.area_power import array_cost_from_multiplier
from repro.hardware.technology import GENERIC_14NM, TechnologyModel
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    ProductModel,
)


def _x_mean(m: int) -> float:
    return ((1 << m) - 1) / 2.0


class WeightOrientedProduct(ProductModel):
    """Per-weight accuracy-mode product model with mean compensation.

    Parameters
    ----------
    m_low / m_high:
        Perforation of the conservative and aggressive modes (``m_low`` may
        be 0, i.e. exact).
    threshold:
        Weight codes strictly below the threshold use the aggressive mode.
    compensate_mean:
        Add the per-filter constant correction for the systematic error.
    """

    def __init__(
        self,
        m_low: int,
        m_high: int,
        threshold: int,
        compensate_mean: bool = True,
    ):
        if not 0 <= m_low <= m_high < 8:
            raise ValueError("need 0 <= m_low <= m_high < 8")
        if not 0 <= threshold <= 256:
            raise ValueError("threshold must be within [0, 256]")
        self.m_low = int(m_low)
        self.m_high = int(m_high)
        self.threshold = int(threshold)
        self.compensate_mean = bool(compensate_mean)

    def mode_masks(self, weight_codes: np.ndarray) -> np.ndarray:
        """Boolean mask (same shape as weights) of entries using the aggressive mode."""
        return np.asarray(weight_codes, dtype=np.int64) < self.threshold

    def product_sums(
        self,
        act_codes: np.ndarray,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
    ) -> np.ndarray:
        act = np.asarray(act_codes, dtype=np.int64)
        weights = np.asarray(weight_codes, dtype=np.int64)
        aggressive = self.mode_masks(weights)
        sums = act @ weights
        compensation = np.zeros(weights.shape[1], dtype=np.float64)
        for m, selector in ((self.m_high, aggressive), (self.m_low, ~aggressive)):
            if m == 0 or not selector.any():
                continue
            mask = np.int64((1 << m) - 1)
            x = act & mask
            selected = weights * selector
            sums = sums - x @ selected
            if self.compensate_mean:
                compensation += _x_mean(m) * selected.sum(axis=0)
        if self.compensate_mean:
            return sums + np.rint(compensation).astype(np.int64)[None, :]
        return sums

    def compile(
        self,
        weight_codes: np.ndarray,
        control_variate: ControlVariate,
        options=None,
    ) -> ProductKernel:
        return _WeightOrientedKernel(self, weight_codes)

    @property
    def name(self) -> str:
        return f"weight_oriented(m_low={self.m_low}, m_high={self.m_high}, thr={self.threshold})"


class _WeightOrientedKernel(ProductKernel):
    """Compiled form of :class:`WeightOrientedProduct` for one layer.

    The mode masks, per-mode selected weight matrices and the constant mean
    compensation depend only on the weights, so they are all precomputed
    here; the per-batch work is one matmul per active mode.  Bit-exact
    against :meth:`WeightOrientedProduct.product_sums`.
    """

    def __init__(self, product: WeightOrientedProduct, weight_codes: np.ndarray):
        weights = np.asarray(weight_codes, dtype=np.int64)
        if weights.ndim != 2:
            raise ValueError(
                f"weight_codes must be 2-D (taps, filters), got {weights.shape}"
            )
        super().__init__(*weights.shape)
        aggressive = product.mode_masks(weights)
        self._w_op = _WeightOperand(weights)
        self._modes: list[tuple[int, _WeightOperand]] = []
        compensation = np.zeros(weights.shape[1], dtype=np.float64)
        for m, selector in ((product.m_high, aggressive), (product.m_low, ~aggressive)):
            if m == 0 or not selector.any():
                continue
            mask = (1 << m) - 1
            selected = weights * selector
            self._modes.append((mask, _WeightOperand(selected)))
            if product.compensate_mean:
                compensation += _x_mean(m) * selected.sum(axis=0)
        self._compensation: np.ndarray | None = None
        if product.compensate_mean:
            self._compensation = np.rint(compensation).astype(np.int64)[None, :]

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        sums = self._w_op.matmul(act)
        for mask, selected_op in self._modes:
            sums = sums - selected_op.matmul(act & mask)
        if self._compensation is not None:
            return sums + self._compensation
        return sums


@dataclass(frozen=True)
class _ModeConfig:
    m_low: int
    m_high: int
    threshold_percentile: float


#: Candidate configurations scanned from most to least aggressive.
_CANDIDATES: tuple[_ModeConfig, ...] = (
    _ModeConfig(m_low=1, m_high=2, threshold_percentile=75.0),
    _ModeConfig(m_low=1, m_high=2, threshold_percentile=50.0),
    _ModeConfig(m_low=0, m_high=2, threshold_percentile=50.0),
    _ModeConfig(m_low=0, m_high=2, threshold_percentile=25.0),
    _ModeConfig(m_low=0, m_high=1, threshold_percentile=50.0),
    _ModeConfig(m_low=0, m_high=1, threshold_percentile=25.0),
)


class WeightOrientedBaseline:
    """Weight-oriented approximation with an accuracy-drop budget."""

    name = "weight_oriented"

    def __init__(
        self,
        array_size: int = 64,
        max_accuracy_drop: float = 0.01,
        reconfiguration_overhead: float = 1.15,
        technology: TechnologyModel = GENERIC_14NM,
    ):
        self.array_size = int(array_size)
        self.max_accuracy_drop = float(max_accuracy_drop)
        self.reconfiguration_overhead = float(reconfiguration_overhead)
        self.technology = technology

    # ------------------------------------------------------------------
    def _threshold_and_fraction(
        self, executor: ApproximateExecutor, percentile: float
    ) -> tuple[int, float]:
        """Weight-code threshold at a global percentile and the aggressive fraction."""
        all_codes = np.concatenate(
            [
                codes.reshape(-1)
                for layer in executor.mac_layer_names()
                for codes in executor.quantized_weights(layer)
            ]
        )
        threshold = int(np.percentile(all_codes, percentile))
        fraction = float((all_codes < threshold).mean())
        return threshold, fraction

    def _relative_multiplier_power(self, config: _ModeConfig, aggressive_fraction: float) -> float:
        # The technique needs *runtime-reconfigurable* multipliers (the mode
        # depends on the weight streamed in), so each mode only recovers a
        # fraction of the fixed perforated multiplier's saving.
        tech = self.technology
        high = tech.reconfigurable_power_factor(config.m_high)
        low = (
            tech.reconfigurable_power_factor(config.m_low) if config.m_low > 0 else 1.0
        )
        return aggressive_fraction * high + (1.0 - aggressive_fraction) * low

    def apply(
        self,
        executor: ApproximateExecutor,
        eval_images: np.ndarray,
        eval_labels: np.ndarray,
        calibration_images: np.ndarray | None = None,
        calibration_labels: np.ndarray | None = None,
    ) -> TechniqueResult:
        """Pick the most aggressive mode configuration within the budget."""
        if calibration_images is None or calibration_labels is None:
            calibration_images, calibration_labels = eval_images, eval_labels
        baseline_plan = ExecutionPlan.uniform(AccurateProduct())
        baseline_acc = evaluate_plan_accuracy(executor, baseline_plan, eval_images, eval_labels)
        calib_baseline = evaluate_plan_accuracy(
            executor, baseline_plan, calibration_images, calibration_labels
        )

        # Fallback: if no mode configuration fits the budget the design keeps
        # the plain accurate array (and pays no reconfiguration overhead).
        chosen_plan = baseline_plan
        chosen_power_rel = 1.0
        chosen_overhead = 1.0
        chosen_details: dict[str, object] = {"configuration": "accurate"}
        for candidate in _CANDIDATES:
            threshold, fraction = self._threshold_and_fraction(
                executor, candidate.threshold_percentile
            )
            product = WeightOrientedProduct(candidate.m_low, candidate.m_high, threshold)
            plan = ExecutionPlan.uniform(product)
            calib_acc = evaluate_plan_accuracy(
                executor, plan, calibration_images, calibration_labels
            )
            if calib_baseline - calib_acc <= self.max_accuracy_drop:
                chosen_plan = plan
                chosen_power_rel = self._relative_multiplier_power(candidate, fraction)
                chosen_overhead = self.reconfiguration_overhead
                chosen_details = {
                    "configuration": product.name,
                    "aggressive_fraction": fraction,
                }
                break

        final_acc = evaluate_plan_accuracy(executor, chosen_plan, eval_images, eval_labels)
        power_mw = array_cost_from_multiplier(
            chosen_power_rel,
            chosen_power_rel,
            self.array_size,
            tech=self.technology,
            multiplier_overhead=chosen_overhead,
        ).power_mw
        return TechniqueResult(
            technique=self.name,
            plan=chosen_plan,
            array_power_mw=power_mw,
            extra_cycles_per_layer=0,
            accuracy=final_acc,
            baseline_accuracy=baseline_acc,
            details=chosen_details,
        )
