"""Retraining-free state-of-the-art baselines used in the Fig. 5 comparison.

The paper compares its control-variate approximation against three prior
techniques that, like it, avoid retraining:

* ALWANN (Mrazek et al., ICCAD 2019) — selects one approximate multiplier
  per network (the uniform variant the paper uses for fairness) from a
  library and re-tunes the stored weights to minimize the expected
  multiplication error (:mod:`~repro.baselines.alwann`);
* weight-oriented approximation (Tasoulas et al., TCAS-I 2020) — runtime
  reconfigurable multipliers whose accuracy mode is chosen per weight value
  (:mod:`~repro.baselines.weight_oriented`);
* runtime-reconfigurable accuracy multipliers (Zervakis et al., IEEE Access
  2020) — layer-wise accuracy configuration of reconfigurable multipliers
  (:mod:`~repro.baselines.reconfigurable`).

Each baseline produces an :class:`~repro.baselines.base.TechniqueResult`
holding its execution plan, array power model and measured accuracy, which
the Fig. 5 bench turns into energy-reduction / accuracy-loss pairs.
"""

from repro.baselines.base import TechniqueResult, evaluate_plan_accuracy
from repro.baselines.alwann import AlwannBaseline, tune_weights
from repro.baselines.weight_oriented import WeightOrientedBaseline, WeightOrientedProduct
from repro.baselines.reconfigurable import ReconfigurableBaseline
from repro.baselines.ours import ControlVariateTechnique

__all__ = [
    "TechniqueResult",
    "evaluate_plan_accuracy",
    "AlwannBaseline",
    "tune_weights",
    "WeightOrientedBaseline",
    "WeightOrientedProduct",
    "ReconfigurableBaseline",
    "ControlVariateTechnique",
]
