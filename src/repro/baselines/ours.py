"""The paper's technique packaged as a Fig. 5 comparison entry."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TechniqueResult, evaluate_plan_accuracy
from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.area_power import array_cost
from repro.hardware.technology import GENERIC_14NM, TechnologyModel
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    PerforatedProduct,
)


class ControlVariateTechnique:
    """Our control-variate approximation at a fixed perforation value.

    The Fig. 5 comparison uses ``m = 2`` (the paper's choice: "high power
    reduction for moderate accuracy loss") on a 64x64 array.
    """

    name = "ours"

    def __init__(
        self,
        m: int = 2,
        array_size: int = 64,
        technology: TechnologyModel = GENERIC_14NM,
    ):
        self.m = int(m)
        self.array_size = int(array_size)
        self.technology = technology

    def apply(
        self,
        executor: ApproximateExecutor,
        eval_images: np.ndarray,
        eval_labels: np.ndarray,
        calibration_images: np.ndarray | None = None,
        calibration_labels: np.ndarray | None = None,
    ) -> TechniqueResult:
        """Evaluate the technique on one trained network.

        The calibration arguments are unused — our technique needs no search
        — but the signature matches the other techniques so the Fig. 5 bench
        can treat every entry identically.
        """
        config = AcceleratorConfig.make(self.array_size, self.m, use_control_variate=True)
        plan = ExecutionPlan.uniform(PerforatedProduct(self.m, use_control_variate=True))
        baseline_plan = ExecutionPlan.uniform(AccurateProduct())
        baseline_acc = evaluate_plan_accuracy(executor, baseline_plan, eval_images, eval_labels)
        approx_acc = evaluate_plan_accuracy(executor, plan, eval_images, eval_labels)
        power_mw = array_cost(config, self.technology).power_mw
        return TechniqueResult(
            technique=self.name,
            plan=plan,
            array_power_mw=power_mw,
            extra_cycles_per_layer=1,
            accuracy=approx_acc,
            baseline_accuracy=baseline_acc,
            details={"m": self.m, "array_size": self.array_size},
        )
