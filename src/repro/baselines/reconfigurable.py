"""Layer-wise runtime-reconfigurable accuracy baseline (Zervakis et al., 2020).

The third comparison point of Fig. 5 ([8] in the paper) generates multipliers
whose accuracy is reconfigurable at run time and configures them *per
convolution layer*.  Reconfigurability costs additional hardware, so the
multipliers are more expensive than fixed approximate designs, and layer-wise
granularity forces conservative settings on sensitive layers — the two
reasons the paper gives for its limited energy savings.

The implementation below performs a greedy per-layer search: layers are
visited in order of decreasing MAC share, each layer is assigned the most
aggressive perforation level whose cumulative calibration accuracy drop stays
within the budget, and the array power follows the cycle-weighted mix of the
selected levels times the reconfiguration overhead.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TechniqueResult, evaluate_plan_accuracy
from repro.hardware.area_power import array_cost_from_multiplier
from repro.hardware.technology import GENERIC_14NM, TechnologyModel
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    PerforatedProduct,
)


class ReconfigurableBaseline:
    """Layer-wise reconfigurable-accuracy approximation."""

    name = "reconfigurable"

    def __init__(
        self,
        array_size: int = 64,
        max_accuracy_drop: float = 0.01,
        accuracy_levels: tuple[int, ...] = (2, 1),
        reconfiguration_overhead: float = 1.05,
        technology: TechnologyModel = GENERIC_14NM,
        layer_mac_weights: dict[str, float] | None = None,
    ):
        self.array_size = int(array_size)
        self.max_accuracy_drop = float(max_accuracy_drop)
        self.accuracy_levels = tuple(sorted(set(int(m) for m in accuracy_levels), reverse=True))
        if any(m < 1 or m > 7 for m in self.accuracy_levels):
            raise ValueError("accuracy levels must be within [1, 7]")
        self.reconfiguration_overhead = float(reconfiguration_overhead)
        self.technology = technology
        self.layer_mac_weights = dict(layer_mac_weights or {})

    # ------------------------------------------------------------------
    def _layer_order(self, executor: ApproximateExecutor) -> list[str]:
        """Layers sorted by descending MAC share (largest savings first)."""
        names = executor.mac_layer_names()
        if not self.layer_mac_weights:
            return names
        return sorted(
            names, key=lambda name: self.layer_mac_weights.get(name, 0.0), reverse=True
        )

    def _effective_multiplier_power(self, assignment: dict[str, int]) -> float:
        """Cycle/MAC-weighted relative multiplier power of the assignment.

        The multipliers must be runtime-reconfigurable (the accuracy level
        changes between layers), so a layer configured at level ``m`` only
        recovers part of the fixed perforated multiplier's saving.
        """
        tech = self.technology
        if not assignment:
            return 1.0
        total_weight = 0.0
        weighted = 0.0
        for layer, m in assignment.items():
            weight = self.layer_mac_weights.get(layer, 1.0)
            total_weight += weight
            factor = tech.reconfigurable_power_factor(m) if m > 0 else 1.0
            weighted += weight * factor
        return weighted / total_weight if total_weight else 1.0

    def apply(
        self,
        executor: ApproximateExecutor,
        eval_images: np.ndarray,
        eval_labels: np.ndarray,
        calibration_images: np.ndarray | None = None,
        calibration_labels: np.ndarray | None = None,
    ) -> TechniqueResult:
        """Greedy per-layer accuracy-level assignment within the drop budget."""
        if calibration_images is None or calibration_labels is None:
            calibration_images, calibration_labels = eval_images, eval_labels
        baseline_plan = ExecutionPlan.uniform(AccurateProduct())
        baseline_acc = evaluate_plan_accuracy(executor, baseline_plan, eval_images, eval_labels)
        calib_baseline = evaluate_plan_accuracy(
            executor, baseline_plan, calibration_images, calibration_labels
        )

        plan = ExecutionPlan.uniform(AccurateProduct())
        assignment: dict[str, int] = {name: 0 for name in executor.mac_layer_names()}
        for layer in self._layer_order(executor):
            for m in self.accuracy_levels:
                candidate = plan.with_layer(
                    layer, PerforatedProduct(m, use_control_variate=False)
                )
                calib_acc = evaluate_plan_accuracy(
                    executor, candidate, calibration_images, calibration_labels
                )
                if calib_baseline - calib_acc <= self.max_accuracy_drop:
                    plan = candidate
                    assignment[layer] = m
                    break

        final_acc = evaluate_plan_accuracy(executor, plan, eval_images, eval_labels)
        effective = self._effective_multiplier_power(assignment)
        approximated_layers = sum(1 for m in assignment.values() if m > 0)
        # If the search could not approximate any layer the design degenerates
        # to the plain accurate array and pays no reconfiguration overhead.
        overhead = self.reconfiguration_overhead if approximated_layers else 1.0
        power_mw = array_cost_from_multiplier(
            effective,
            effective,
            self.array_size,
            tech=self.technology,
            multiplier_overhead=overhead,
        ).power_mw
        return TechniqueResult(
            technique=self.name,
            plan=plan,
            array_power_mw=power_mw,
            extra_cycles_per_layer=0,
            accuracy=final_acc,
            baseline_accuracy=baseline_acc,
            details={
                "assignment": dict(assignment),
                "approximated_layers": approximated_layers,
            },
        )
