"""Shared infrastructure of the Fig. 5 techniques."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.inference import ApproximateExecutor, ExecutionPlan
from repro.simulation.metrics import accuracy


@dataclass
class TechniqueResult:
    """Outcome of applying one technique to one trained network.

    Attributes
    ----------
    technique:
        Human-readable technique name ("ours", "alwann", ...).
    plan:
        The execution plan (per-layer product models) the technique chose.
    array_power_mw:
        Power of the MAC array the technique requires (its own multiplier
        choice, including any reconfiguration overhead).
    extra_cycles_per_layer:
        Additional pipeline cycles per convolution layer (1 for the MAC+
        column of our technique, 0 otherwise).
    accuracy:
        Top-1 accuracy measured under the plan.
    baseline_accuracy:
        Accuracy of the accurate (quantized) design on the same data.
    details:
        Free-form per-layer metadata (selected multipliers, modes, ...).
    """

    technique: str
    plan: ExecutionPlan
    array_power_mw: float
    extra_cycles_per_layer: int
    accuracy: float
    baseline_accuracy: float
    details: dict[str, object] = field(default_factory=dict)

    @property
    def accuracy_loss_percent(self) -> float:
        """Accuracy loss in percentage points versus the accurate design."""
        return 100.0 * (self.baseline_accuracy - self.accuracy)


def evaluate_plan_accuracy(
    executor: ApproximateExecutor,
    plan: ExecutionPlan,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of ``executor`` under ``plan`` on a labelled set."""
    predictions = executor.predict(images, plan, batch_size=batch_size)
    return accuracy(predictions, np.asarray(labels))
