"""One-call strategy adapters for the state-of-the-art baselines.

The Fig. 5 techniques (:mod:`repro.baselines`) each pick their own execution
plan and array design through ``apply``; wrapping them as
:class:`~repro.dse.strategies.SearchStrategy` entries makes a SOTA
comparison just another ``--strategy`` value of the DSE subsystem: the
technique runs once against the campaign's shared executor and evaluation
split, and its result enters the Pareto front as an external point costed
by the same cycle model as every searched assignment
(:meth:`~repro.dse.space.SearchSpace.uniform_energy_nj` over the
technique's reported array power).

The techniques search internally (library scans, per-layer mode selection)
through the same executor, so their own intermediate evaluations are not
counted against the campaign's evaluation budget — the budget governs the
campaign's plan scoring, and each adapter contributes exactly one point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines import (
    AlwannBaseline,
    ControlVariateTechnique,
    ReconfigurableBaseline,
    WeightOrientedBaseline,
)
from repro.dse.strategies import SearchStrategy, register_strategy
from repro.multipliers.library import MultiplierLibrary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dse.engine import CampaignContext


class BaselineStrategy(SearchStrategy):
    """Base adapter: run one technique, publish one external front point."""

    def build_technique(self, ctx: "CampaignContext"):
        raise NotImplementedError

    def search(self, ctx: "CampaignContext") -> None:
        technique = self.build_technique(ctx)
        evaluator = ctx.evaluator
        result = technique.apply(
            evaluator.executor,
            evaluator.eval_images,
            evaluator.eval_labels,
            calibration_images=evaluator.eval_images,
            calibration_labels=evaluator.eval_labels,
        )
        energy_nj = ctx.space.uniform_energy_nj(
            result.array_power_mw,
            extra_cycles_per_layer=result.extra_cycles_per_layer,
        )
        ctx.add_external_point(
            label=result.technique,
            accuracy=result.accuracy,
            energy_nj=energy_nj,
            meta={"details": dict(result.details)},
        )


@register_strategy
class OursFixedStrategy(BaselineStrategy):
    """The paper's fixed choice (m = 2 with V) as a single point."""

    name = "ours-fixed"

    def __init__(self, m: int = 2):
        self.m = int(m)

    def build_technique(self, ctx: "CampaignContext"):
        return ControlVariateTechnique(m=self.m, array_size=ctx.space.array_size)


@register_strategy
class AlwannStrategy(BaselineStrategy):
    """Uniform ALWANN library selection with weight tuning."""

    name = "alwann"

    def __init__(self, library: MultiplierLibrary | None = None):
        self.library = library

    def build_technique(self, ctx: "CampaignContext"):
        library = self.library or MultiplierLibrary.synthetic_evoapprox()
        return AlwannBaseline(
            library,
            array_size=ctx.space.array_size,
            max_accuracy_drop=ctx.max_loss / 100.0,
        )


@register_strategy
class WeightOrientedStrategy(BaselineStrategy):
    """Weight-oriented reconfigurable approximation ([6])."""

    name = "weight-oriented"

    def build_technique(self, ctx: "CampaignContext"):
        return WeightOrientedBaseline(
            array_size=ctx.space.array_size,
            max_accuracy_drop=ctx.max_loss / 100.0,
        )


@register_strategy
class ReconfigurableStrategy(BaselineStrategy):
    """Layer-wise runtime-reconfigurable accuracy ([8])."""

    name = "reconfigurable"

    def build_technique(self, ctx: "CampaignContext"):
        return ReconfigurableBaseline(
            array_size=ctx.space.array_size,
            max_accuracy_drop=ctx.max_loss / 100.0,
        )


__all__ = [
    "BaselineStrategy",
    "OursFixedStrategy",
    "AlwannStrategy",
    "WeightOrientedStrategy",
    "ReconfigurableStrategy",
]
