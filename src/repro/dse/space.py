"""Per-layer approximation search space of the DSE engine.

A :class:`SearchSpace` pairs the MAC layers of one trained network with a
*candidate menu*: per-layer choices of :class:`~repro.simulation.inference.
ProductModel` drawn from the perforated family (with and without the
control-variate MAC+ column) and, optionally, the approximate-multiplier
library (as :class:`~repro.simulation.inference.LUTProduct` entries).  An
*assignment* — one candidate index per explored layer — maps to an
:class:`~repro.simulation.inference.ExecutionPlan` for accuracy scoring and
to a modeled network energy for costing:

* each layer's cycle count comes from the weight-stationary timing model
  (:func:`repro.accelerator.scheduling.layer_cycles`, including the +1
  pipeline cycle of the MAC+ column);
* each layer's array power comes from the hardware model
  (:func:`repro.hardware.area_power.array_cost` for the perforated family,
  :func:`repro.hardware.area_power.array_cost_from_multiplier` for library
  multipliers), i.e. the per-layer accounting a runtime-reconfigurable
  array pays.

Candidate :class:`ProductModel` instances are shared across every plan the
space produces, so the executor's per-instance kernel cache compiles each
(layer, candidate) combination exactly once for the whole campaign, and the
structural fingerprints keep the plan-invariant prefix reuse effective
across candidate batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.accelerator.scheduling import LayerShape, layer_cycles, layer_shapes_of_model
from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.area_power import array_cost, array_cost_from_multiplier
from repro.hardware.technology import GENERIC_14NM, TechnologyModel
from repro.multipliers.library import MultiplierLibrary
from repro.nn.graph import Graph
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
    ProductModel,
)


@dataclass(frozen=True)
class Candidate:
    """One per-layer design choice of the search space.

    Attributes
    ----------
    name:
        Human-readable name (``accurate``, ``perforated_m2+V``,
        ``lut[trunc_w1_a2]`` ...).
    code:
        Short token used in compact plan labels (``A``, ``p2v``, ``L3``).
    model:
        The shared :class:`ProductModel` instance evaluated for this choice.
    power_mw:
        Power of the MAC array while a layer streams on this design.
    cycle_config:
        Accelerator configuration used for the layer's cycle count (carries
        the array size and the MAC+ extra pipeline cycle).
    """

    name: str
    code: str
    model: ProductModel = field(compare=False)
    power_mw: float
    cycle_config: AcceleratorConfig

    def layer_energy_nj(self, shape: LayerShape) -> float:
        """Energy (nJ) of one layer streamed on this candidate's array."""
        cycles = layer_cycles(shape, self.cycle_config)
        return cycles * self.power_mw * self.cycle_config.clock_ns / 1e3


class SearchSpace:
    """Per-layer candidate assignment space of one trained network."""

    def __init__(
        self,
        layer_names: Sequence[str],
        candidates: Sequence[Candidate],
        shapes: dict[str, LayerShape],
        array_size: int,
        clock_ns: float = 1.0,
    ):
        if not layer_names:
            raise ValueError("search space needs at least one explored layer")
        if len(candidates) < 2:
            raise ValueError("search space needs at least two candidates per layer")
        missing = [name for name in layer_names if name not in shapes]
        if missing:
            raise ValueError(f"no layer shape for explored layers: {missing}")
        # Candidate 0 is always the accurate design (strategies rely on it:
        # greedy starts there, assignments index cheaper designs upward).
        ordered = sorted(candidates, key=lambda c: -c.power_mw)
        if not isinstance(ordered[0].model, AccurateProduct):
            accurate = [c for c in ordered if isinstance(c.model, AccurateProduct)]
            if not accurate:
                raise ValueError("search space requires an accurate candidate")
            ordered.remove(accurate[0])
            ordered.insert(0, accurate[0])
        self.layer_names = tuple(layer_names)
        self.candidates = tuple(ordered)
        self.shapes = dict(shapes)
        self.array_size = int(array_size)
        self.clock_ns = float(clock_ns)
        # Per-(layer, candidate) energies are fixed by the timing and power
        # models, so the whole energy table is precomputed once.
        self._energy_table: dict[str, tuple[float, ...]] = {
            name: tuple(c.layer_energy_nj(self.shapes[name]) for c in self.candidates)
            for name in self.layer_names
        }
        # Energy of the layers *outside* the explored set: they always run
        # on the accurate design, contributing a constant offset.
        self._fixed_energy = sum(
            self.candidates[0].layer_energy_nj(shape)
            for name, shape in self.shapes.items()
            if name not in self.layer_names
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model: Graph,
        input_shape: tuple[int, int, int],
        array_size: int = 64,
        perforations: Sequence[int] = (1, 2, 3),
        include_no_cv: bool = True,
        library: MultiplierLibrary | None = None,
        max_library_candidates: int = 4,
        layers: Sequence[str] | None = None,
        technology: TechnologyModel = GENERIC_14NM,
        clock_ns: float = 1.0,
    ) -> "SearchSpace":
        """Enumerate the candidate menu of ``model`` from the multiplier families.

        Parameters
        ----------
        model / input_shape:
            The trained network and its input spatial shape (used to derive
            the per-layer MAC shapes for the cycle model).
        array_size:
            ``N`` of the ``N x N`` MAC array every candidate is priced on.
        perforations:
            Perforation values of the MAC* family; each enters with the
            control variate and (when ``include_no_cv``) without it.
        library:
            Optional multiplier library; its cheapest
            ``max_library_candidates`` non-reconfigurable Pareto-front
            entries join the menu as LUT candidates.
        layers:
            Restrict the *explored* layers to this subset (unexplored MAC
            layers stay accurate).  Default: every conv/dense layer.
        """
        shapes = {s.name: s for s in layer_shapes_of_model(model, input_shape)}
        layer_names = tuple(layers) if layers is not None else tuple(shapes)
        unknown = [name for name in layer_names if name not in shapes]
        if unknown:
            raise ValueError(f"unknown MAC layers: {unknown}")

        candidates: list[Candidate] = []
        accurate_config = AcceleratorConfig.accurate(array_size, clock_ns=clock_ns)
        candidates.append(
            Candidate(
                name="accurate",
                code="A",
                model=AccurateProduct(),
                power_mw=array_cost(accurate_config, technology).power_mw,
                cycle_config=accurate_config,
            )
        )
        for m in perforations:
            cv_variants = (True, False) if include_no_cv else (True,)
            for use_cv in cv_variants:
                config = AcceleratorConfig.make(
                    array_size, m, use_control_variate=use_cv, clock_ns=clock_ns
                )
                product = PerforatedProduct(m, use_control_variate=use_cv)
                candidates.append(
                    Candidate(
                        name=product.name,
                        code=f"p{m}v" if use_cv else f"p{m}",
                        model=product,
                        power_mw=array_cost(config, technology).power_mw,
                        cycle_config=config,
                    )
                )
        if library is not None:
            entries = [
                e
                for e in library.pareto_front()
                if not e.reconfigurable and e.stats.max_absolute > 0
            ]
            entries = sorted(entries, key=lambda e: e.relative_power)
            for index, entry in enumerate(entries[: max(0, int(max_library_candidates))]):
                product = LUTProduct(entry.multiplier)
                candidates.append(
                    Candidate(
                        name=product.name,
                        code=f"L{index}",
                        model=product,
                        power_mw=array_cost_from_multiplier(
                            entry.relative_power,
                            entry.relative_area,
                            array_size,
                            tech=technology,
                        ).power_mw,
                        cycle_config=accurate_config,
                    )
                )
        return cls(layer_names, candidates, shapes, array_size, clock_ns=clock_ns)

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.layer_names)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    def size(self) -> int:
        """Number of distinct assignments the space contains."""
        return self.num_candidates**self.num_layers

    def accurate_assignment(self) -> tuple[int, ...]:
        """The all-accurate assignment (candidate 0 everywhere)."""
        return (0,) * self.num_layers

    def validate(self, assignment: Sequence[int]) -> tuple[int, ...]:
        """Normalize and bounds-check one assignment."""
        assignment = tuple(int(i) for i in assignment)
        if len(assignment) != self.num_layers:
            raise ValueError(
                f"assignment length {len(assignment)} != {self.num_layers} layers"
            )
        if any(not 0 <= i < self.num_candidates for i in assignment):
            raise ValueError(f"candidate index out of range in {assignment}")
        return assignment

    def plan(self, assignment: Sequence[int]) -> ExecutionPlan:
        """The execution plan of one assignment (unexplored layers accurate)."""
        assignment = self.validate(assignment)
        per_layer = {
            name: self.candidates[index].model
            for name, index in zip(self.layer_names, assignment)
            if index != 0
        }
        return ExecutionPlan(default=self.candidates[0].model, per_layer=per_layer)

    def energy_nj(self, assignment: Sequence[int]) -> float:
        """Modeled network energy of one assignment (explored + fixed layers)."""
        assignment = self.validate(assignment)
        explored = sum(
            self._energy_table[name][index]
            for name, index in zip(self.layer_names, assignment)
        )
        return explored + self._fixed_energy

    def accurate_energy_nj(self) -> float:
        """Energy of the all-accurate design (the baseline every point beats)."""
        return self.energy_nj(self.accurate_assignment())

    def label(self, assignment: Sequence[int]) -> str:
        """Compact plan label: candidate codes joined in layer order."""
        assignment = self.validate(assignment)
        return "-".join(self.candidates[i].code for i in assignment)

    def describe(self, assignment: Sequence[int]) -> dict[str, str]:
        """Layer-name -> candidate-name mapping of one assignment."""
        assignment = self.validate(assignment)
        return {
            name: self.candidates[index].name
            for name, index in zip(self.layer_names, assignment)
        }

    def enumerate_assignments(self) -> Iterator[tuple[int, ...]]:
        """Every assignment in deterministic lexicographic order."""
        import itertools

        yield from itertools.product(
            range(self.num_candidates), repeat=self.num_layers
        )

    # ------------------------------------------------------------------
    # Uniform-array costing (baseline techniques)
    # ------------------------------------------------------------------
    def uniform_energy_nj(
        self, power_mw: float, extra_cycles_per_layer: int = 0
    ) -> float:
        """Energy of the whole network on one uniform array.

        Used to cost the one-call baseline techniques, which report a single
        array power (their own multiplier choice, reconfiguration overheads
        included) for every layer; ``extra_cycles_per_layer`` models the
        MAC+ pipeline cycle of the control-variate design.
        """
        if power_mw < 0:
            raise ValueError("power_mw must be non-negative")
        base = AcceleratorConfig.accurate(self.array_size, clock_ns=self.clock_ns)
        total_cycles = sum(
            layer_cycles(shape, base) + int(extra_cycles_per_layer)
            for shape in self.shapes.values()
        )
        return total_cycles * power_mw * self.clock_ns / 1e3
