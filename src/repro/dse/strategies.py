"""Pluggable search strategies of the DSE engine.

A :class:`SearchStrategy` drives the exploration of one
:class:`~repro.dse.space.SearchSpace` by proposing assignment batches to the
campaign's scoring callback (which handles ledger lookups, dedup, Pareto
updates and the evaluation budget — see :mod:`repro.dse.engine`).  The
process-wide registry maps strategy names to classes so campaigns (and the
``repro dse`` CLI) select one by name:

``exhaustive``
    Enumerates every assignment — the ground truth for small spaces.
``greedy``
    Energy-per-accuracy descent mirroring the paper's selection: starting
    from the all-accurate plan, repeatedly take the single-layer step to
    the next cheaper candidate with the best energy-saved per accuracy-lost
    ratio among the steps that keep the loss within budget.
``nsga2``
    Seeded NSGA-II multi-objective genetic search (constrained domination:
    loss-budget violations are dominated by feasible points) for spaces too
    large to enumerate and too non-convex for the greedy descent.

The one-call baseline adapters of :mod:`repro.dse.baselines` register here
too, so a state-of-the-art comparison is just another ``--strategy`` value.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dse.engine import CampaignContext


class BudgetExhausted(Exception):
    """Raised by the scoring callback when the evaluation budget runs out."""


class SearchStrategy(abc.ABC):
    """Strategy proposing assignment batches to a campaign."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    def prepare(self, space, budget_evals: int | None) -> None:
        """Validate the campaign configuration before any evaluation.

        Called by :func:`repro.dse.engine.run_campaign` right after the
        space is known — before the evaluator is calibrated or a single
        plan is scored — so foreseeable configuration errors (e.g. an
        unbudgeted exhaustive search over a huge space) fail fast and
        cheap.  Default: accept everything.
        """

    @abc.abstractmethod
    def search(self, ctx: "CampaignContext") -> None:
        """Explore ``ctx.space`` through ``ctx.score`` until done.

        Implementations may simply let :class:`BudgetExhausted` propagate —
        the campaign engine treats it as a normal termination.
        """

    def describe(self) -> str:
        """One-line description used by listings."""
        doc = (type(self).__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name


_REGISTRY: dict[str, Type[SearchStrategy]] = {}


def register_strategy(cls: Type[SearchStrategy]) -> Type[SearchStrategy]:
    """Class decorator adding a strategy to the process-wide registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("strategy must define a concrete name")
    if cls.name in _REGISTRY:
        raise ValueError(f"search strategy {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def strategy_names() -> list[str]:
    """Names of all registered strategies, in registration order."""
    return list(_REGISTRY)


def has_strategy(name: str) -> bool:
    return name in _REGISTRY


def get_strategy(name: str, **kwargs) -> SearchStrategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown search strategy {name!r}; registered strategies: {known}"
        ) from None
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------
@register_strategy
class ExhaustiveSearch(SearchStrategy):
    """Enumerate every assignment of the space (small spaces only)."""

    name = "exhaustive"

    #: Refuse to enumerate spaces beyond this size without an explicit
    #: evaluation budget — the budget then bounds the run instead.
    max_unbudgeted_size = 4096

    def __init__(self, batch_size: int = 32):
        self.batch_size = int(batch_size)

    def prepare(self, space, budget_evals: int | None) -> None:
        if budget_evals is None and space.size() > self.max_unbudgeted_size:
            raise ValueError(
                f"exhaustive search over {space.size()} assignments needs "
                f"an evaluation budget (budget_evals); use greedy or nsga2 "
                f"for spaces this large"
            )

    def search(self, ctx: "CampaignContext") -> None:
        self.prepare(ctx.space, ctx.budget_evals)
        batch: list[tuple[int, ...]] = []
        for assignment in ctx.space.enumerate_assignments():
            batch.append(assignment)
            if len(batch) >= self.batch_size:
                ctx.score(batch)
                batch = []
        if batch:
            ctx.score(batch)


@register_strategy
class GreedySearch(SearchStrategy):
    """Energy-per-accuracy descent (the paper's selection heuristic)."""

    name = "greedy"

    #: Loss increments below this (in percentage points) are treated as
    #: free, so the ratio stays finite when a step costs no accuracy.
    loss_epsilon = 1e-6

    def search(self, ctx: "CampaignContext") -> None:
        space = ctx.space
        current = space.accurate_assignment()
        current_point = ctx.score([current])[0]
        while True:
            proposals: list[tuple[int, ...]] = []
            for layer_index in range(space.num_layers):
                index = current[layer_index]
                if index + 1 < space.num_candidates:
                    proposals.append(
                        current[:layer_index]
                        + (index + 1,)
                        + current[layer_index + 1 :]
                    )
            if not proposals:
                return
            points = ctx.score(proposals)
            best = None
            best_ratio = -math.inf
            for assignment, point in zip(proposals, points):
                if point.accuracy_loss > ctx.max_loss:
                    continue
                saving = current_point.energy_nj - point.energy_nj
                if saving <= 0:
                    continue
                added_loss = max(
                    point.accuracy_loss - current_point.accuracy_loss,
                    self.loss_epsilon,
                )
                ratio = saving / added_loss
                if ratio > best_ratio:
                    best_ratio = ratio
                    best = (assignment, point)
            if best is None:
                return
            current, current_point = best


@register_strategy
class NSGA2Search(SearchStrategy):
    """Seeded NSGA-II genetic multi-objective search.

    Breeding is *pipelined* within each generation: children are dispatched
    for evaluation in sub-batches as they are bred
    (:meth:`~repro.dse.engine.CampaignContext.score_async`), so on a
    service-backed campaign the worker pool evaluates the first children
    while tournament selection is still producing the rest.  Overlap never
    crosses a generation boundary — selection needs every child's fitness
    before the next generation's parents exist, so the candidate stream
    (and therefore the Pareto front) is bit-identical to the fully
    blocking implementation at any worker count.
    """

    name = "nsga2"

    #: Children per pipelined evaluation sub-batch, as a fraction of the
    #: population (at least 1): smaller sub-batches start the pool earlier,
    #: larger ones give the scheduler more cells to cost-balance.
    pipeline_fraction = 4

    def __init__(
        self,
        population: int = 16,
        generations: int = 12,
        crossover_prob: float = 0.9,
        mutation_prob: float | None = None,
    ):
        if population < 4:
            raise ValueError("nsga2 population must be at least 4")
        self.population = int(population)
        self.generations = int(generations)
        self.crossover_prob = float(crossover_prob)
        self.mutation_prob = mutation_prob

    # -- genetic operators ------------------------------------------------
    def _initial_population(self, ctx: "CampaignContext") -> list[tuple[int, ...]]:
        space = ctx.space
        population: list[tuple[int, ...]] = [space.accurate_assignment()]
        seen = set(population)
        # Seed a gradient of uniform designs (every layer on candidate k):
        # cheap anchors spanning the energy axis.
        for k in range(1, space.num_candidates):
            uniform = (k,) * space.num_layers
            if uniform not in seen and len(population) < self.population:
                population.append(uniform)
                seen.add(uniform)
        attempts = 0
        while len(population) < self.population and attempts < 50 * self.population:
            candidate = tuple(
                int(g)
                for g in ctx.rng.integers(0, space.num_candidates, space.num_layers)
            )
            attempts += 1
            if candidate not in seen:
                population.append(candidate)
                seen.add(candidate)
        return population

    def _mutate(self, ctx: "CampaignContext", genes: tuple[int, ...]) -> tuple[int, ...]:
        space = ctx.space
        prob = (
            self.mutation_prob
            if self.mutation_prob is not None
            else 1.0 / space.num_layers
        )
        out = list(genes)
        for i in range(space.num_layers):
            if ctx.rng.random() < prob:
                out[i] = int(ctx.rng.integers(0, space.num_candidates))
        return tuple(out)

    def _crossover(
        self, ctx: "CampaignContext", a: tuple[int, ...], b: tuple[int, ...]
    ) -> tuple[int, ...]:
        if ctx.rng.random() >= self.crossover_prob:
            return a
        mask = ctx.rng.random(len(a)) < 0.5
        return tuple(x if take else y for x, y, take in zip(a, b, mask))

    # -- NSGA-II machinery ------------------------------------------------
    @staticmethod
    def _violation(point, max_loss: float) -> float:
        return max(0.0, point.accuracy_loss - max_loss)

    @classmethod
    def _dominates(cls, a, b, max_loss: float) -> bool:
        """Constrained dominance on (energy min, loss min)."""
        va, vb = cls._violation(a, max_loss), cls._violation(b, max_loss)
        if va == 0.0 and vb > 0.0:
            return True
        if va > 0.0 and vb > 0.0:
            return va < vb
        if va > 0.0 and vb == 0.0:
            return False
        return a.dominates(b)

    @classmethod
    def _sort_fronts(cls, points, max_loss: float) -> list[list[int]]:
        """Fast non-dominated sort; returns index fronts, best first."""
        n = len(points)
        dominated_by: list[list[int]] = [[] for _ in range(n)]
        domination_count = [0] * n
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if cls._dominates(points[i], points[j], max_loss):
                    dominated_by[i].append(j)
                elif cls._dominates(points[j], points[i], max_loss):
                    domination_count[i] += 1
        fronts: list[list[int]] = [[i for i in range(n) if domination_count[i] == 0]]
        while fronts[-1]:
            next_front: list[int] = []
            for i in fronts[-1]:
                for j in dominated_by[i]:
                    domination_count[j] -= 1
                    if domination_count[j] == 0:
                        next_front.append(j)
            fronts.append(next_front)
        return fronts[:-1]

    @staticmethod
    def _crowding(points, front: list[int]) -> dict[int, float]:
        distance = {i: 0.0 for i in front}
        if len(front) <= 2:
            return {i: math.inf for i in front}
        for objective in (
            lambda p: p.energy_nj,
            lambda p: p.accuracy_loss,
        ):
            ordered = sorted(front, key=lambda i: objective(points[i]))
            lo = objective(points[ordered[0]])
            hi = objective(points[ordered[-1]])
            distance[ordered[0]] = distance[ordered[-1]] = math.inf
            if hi <= lo:
                continue
            for rank in range(1, len(ordered) - 1):
                gap = objective(points[ordered[rank + 1]]) - objective(
                    points[ordered[rank - 1]]
                )
                distance[ordered[rank]] += gap / (hi - lo)
        return distance

    def search(self, ctx: "CampaignContext") -> None:
        space = ctx.space
        population = self._initial_population(ctx)
        points = ctx.score(population)
        for _ in range(self.generations):
            fronts = self._sort_fronts(points, ctx.max_loss)
            rank = {}
            crowding = {}
            for front_index, front in enumerate(fronts):
                crowding.update(self._crowding(points, front))
                for i in front:
                    rank[i] = front_index

            def fitness_key(i: int) -> tuple[float, float]:
                return (rank[i], -crowding[i])

            def tournament() -> int:
                a, b = ctx.rng.integers(0, len(population), 2)
                return int(a) if fitness_key(int(a)) <= fitness_key(int(b)) else int(b)

            children: list[tuple[int, ...]] = []
            seen = set(population)
            attempts = 0
            # Pipelined breeding: dispatch each sub-batch of children the
            # moment it is bred, then keep breeding while it evaluates.
            # Breeding only reads the *previous* generation's fitness, so
            # overlapping it with evaluation changes nothing observable.
            sub_batch = max(1, self.population // self.pipeline_fraction)
            in_flight: list = []
            dispatched = 0
            while len(children) < self.population and attempts < 50 * self.population:
                child = self._mutate(
                    ctx,
                    self._crossover(
                        ctx, population[tournament()], population[tournament()]
                    ),
                )
                attempts += 1
                if child not in seen:
                    children.append(child)
                    seen.add(child)
                    if len(children) - dispatched >= sub_batch:
                        in_flight.append(
                            ctx.score_async(children[dispatched:])
                        )
                        dispatched = len(children)
            if not children:
                return
            if dispatched < len(children):
                in_flight.append(ctx.score_async(children[dispatched:]))
            child_points = [
                point for pending in in_flight for point in pending.points()
            ]

            combined = population + children
            combined_points = points + child_points
            fronts = self._sort_fronts(combined_points, ctx.max_loss)
            next_indices: list[int] = []
            for front in fronts:
                if len(next_indices) + len(front) <= self.population:
                    next_indices.extend(front)
                else:
                    crowd = self._crowding(combined_points, front)
                    remaining = self.population - len(next_indices)
                    next_indices.extend(
                        sorted(front, key=lambda i: -crowd[i])[:remaining]
                    )
                if len(next_indices) >= self.population:
                    break
            population = [combined[i] for i in next_indices]
            points = [combined_points[i] for i in next_indices]


__all__ = [
    "BudgetExhausted",
    "SearchStrategy",
    "register_strategy",
    "strategy_names",
    "has_strategy",
    "get_strategy",
    "ExhaustiveSearch",
    "GreedySearch",
    "NSGA2Search",
]
