"""Campaign engine: strategy-driven exploration with ledger and Pareto front.

:func:`run_campaign` wires the subsystem together for one trained network:

1. build (or accept) the :class:`~repro.dse.space.SearchSpace` and the
   :class:`~repro.dse.evaluator.PlanEvaluator`;
2. score the all-accurate assignment first — it anchors the quantized
   baseline accuracy every loss figure refers to and the accurate energy
   every saving is measured against;
3. hand a :class:`CampaignContext` to the selected
   :class:`~repro.dse.strategies.SearchStrategy`, whose ``score`` callback
   dedups assignments within the run, replays ledger records on resume,
   evaluates fresh plans in batches through the prefix-reuse machinery,
   records each result in the ledger *as soon as it is measured* (so a
   killed campaign loses at most the in-flight batch), updates the
   :class:`~repro.dse.pareto.ParetoFront`, and enforces the evaluation
   budget;
4. return a :class:`DseResult` with the front, every evaluated point and
   the campaign statistics (fresh evaluations, ledger hits, wall-clock).
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.dse.evaluator import PlanEvaluator, ServicePlanEvaluator
from repro.dse.ledger import CampaignLedger, plan_key
from repro.dse.pareto import ParetoFront, ParetoPoint
from repro.dse.space import SearchSpace
from repro.dse.strategies import BudgetExhausted, SearchStrategy, get_strategy
from repro.runtime.sizing import resolve_worker_count
from repro.simulation.campaign import TrainedModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.service import EvaluationService


class PendingScore:
    """Handle of one in-flight :meth:`CampaignContext.score_async` batch.

    Holds the evaluator's submission handle plus everything needed to
    record the batch once its accuracies land: the ledger keys of the whole
    batch (in input order) and the fresh ``(key, assignment)`` pairs that
    were actually dispatched.  Collection is FIFO: resolving this handle
    first resolves every batch submitted before it, so ledger writes,
    baseline anchoring and Pareto admissions happen in submission order —
    exactly the order the blocking :meth:`~CampaignContext.score` would
    have produced.
    """

    def __init__(
        self,
        ctx: "CampaignContext",
        keys: list[str],
        pending: list[tuple[str, tuple[int, ...]]],
        handle,
        truncated: bool,
    ):
        self._ctx = ctx
        self._keys = keys
        self._pending = pending
        self._handle = handle
        self._truncated = truncated
        self.collected = False

    def _collect(self) -> None:
        """Record this batch's fresh results (idempotent; called in FIFO)."""
        if self.collected:
            return
        self.collected = True
        ctx = self._ctx
        try:
            if self._handle is None:
                return
            accuracies = self._handle.results()
            if ctx._baseline_accuracy is None and accuracies:
                # The engine scores the all-accurate assignment first, so
                # the first fresh accuracy is the quantized baseline.
                ctx._baseline_accuracy = accuracies[0]
            for (key, assignment), acc in zip(self._pending, accuracies):
                point = ParetoPoint(
                    label=ctx.space.label(assignment),
                    energy_nj=ctx.space.energy_nj(assignment),
                    accuracy=acc,
                    accuracy_loss=ctx.loss_percent(acc),
                    meta={"assignment": assignment, "key": key},
                )
                ctx.ledger.put(
                    key,
                    {
                        "label": point.label,
                        "assignment": list(assignment),
                        "layers": ctx.space.describe(assignment),
                        "accuracy": point.accuracy,
                        "accuracy_loss": point.accuracy_loss,
                        "baseline_accuracy": ctx.baseline_accuracy,
                        "energy_nj": point.energy_nj,
                        "context": ctx._context_key,
                    },
                )
                ctx._admit(key, point)
        finally:
            ctx._pending_keys.difference_update(key for key, _ in self._pending)

    def points(self) -> list[ParetoPoint]:
        """Resolve to points in the batch's input order (blocking).

        Raises :class:`BudgetExhausted` when the batch was truncated at
        submission — after recording whatever part of it still fit, the
        same contract as the blocking :meth:`~CampaignContext.score`.
        """
        self._ctx._drain_through(self)
        if self._truncated:
            raise BudgetExhausted(
                f"evaluation budget of {self._ctx.budget_evals} reached"
            )
        return [self._ctx.points[key] for key in self._keys]


class CampaignContext:
    """The campaign surface a :class:`SearchStrategy` drives.

    Strategies call :meth:`score` with assignment batches and read
    :attr:`space`, :attr:`max_loss`, :attr:`rng` and
    :attr:`remaining_evals`.  Pipelining strategies use
    :meth:`score_async` instead — submission dispatches the fresh plans to
    the evaluator immediately (on a service-backed campaign the pool
    starts evaluating while the strategy keeps breeding candidates) and
    the returned :class:`PendingScore` resolves them later.  Baseline
    adapters additionally reach the shared :attr:`evaluator` (for
    technique ``apply`` calls) and publish their result through
    :meth:`add_external_point`.
    """

    def __init__(
        self,
        space: SearchSpace,
        evaluator: PlanEvaluator,
        ledger: CampaignLedger,
        max_loss: float,
        budget_evals: int | None,
        rng: np.random.Generator,
        resume: bool,
    ):
        self.space = space
        self.evaluator = evaluator
        self.ledger = ledger
        self.max_loss = float(max_loss)
        self.budget_evals = budget_evals if budget_evals is None else int(budget_evals)
        self.rng = rng
        self.resume = bool(resume)
        self.front = ParetoFront()
        self.points: dict[str, ParetoPoint] = {}
        self.evaluations = 0
        self.ledger_replays = 0
        self.dedup_hits = 0
        self._context_key = evaluator.context_key()
        self._baseline_accuracy: float | None = None
        self._outstanding: "deque[PendingScore]" = deque()
        self._pending_keys: set[str] = set()

    # ------------------------------------------------------------------
    @property
    def context_key(self) -> str:
        """Digest of the evaluation context (model, dataset, eval knobs)."""
        return self._context_key

    @property
    def baseline_accuracy(self) -> float:
        """Quantized accurate baseline accuracy (set by the first score)."""
        if self._baseline_accuracy is None:
            raise RuntimeError("baseline accuracy not measured yet")
        return self._baseline_accuracy

    @property
    def remaining_evals(self) -> float:
        """Fresh evaluations still allowed (``inf`` without a budget)."""
        if self.budget_evals is None:
            return float("inf")
        return max(0, self.budget_evals - self.evaluations)

    def loss_percent(self, accuracy: float) -> float:
        """Accuracy loss versus the campaign baseline, in percentage points."""
        return 100.0 * (self.baseline_accuracy - accuracy)

    # ------------------------------------------------------------------
    def _point_from_record(self, key: str, record: dict) -> ParetoPoint:
        return ParetoPoint(
            label=record["label"],
            energy_nj=float(record["energy_nj"]),
            accuracy=float(record["accuracy"]),
            accuracy_loss=float(record["accuracy_loss"]),
            meta={
                "assignment": tuple(record["assignment"]),
                "key": key,
                "from_ledger": True,
            },
        )

    def _admit(self, key: str, point: ParetoPoint) -> None:
        self.points[key] = point
        self.front.add(point)

    def score_async(self, assignments: Sequence[Sequence[int]]) -> PendingScore:
        """Dispatch a batch of assignments, returning an in-flight handle.

        Ledger and in-run duplicates (including keys already *in flight*
        from earlier uncollected batches) are resolved without touching the
        evaluator or the budget.  Fresh plans are submitted to the
        evaluator immediately — on a service-backed campaign the worker
        pool starts on them while the strategy keeps generating candidates
        — and charged against the budget at submission.  Ledger writes,
        baseline anchoring and Pareto admissions happen at *collection*
        (:meth:`PendingScore.points`), strictly in submission order, so the
        observable campaign state is identical to blocking :meth:`score`
        calls in the same order.
        """
        normalized = [self.space.validate(a) for a in assignments]
        keys: list[str] = []
        fresh: dict[str, tuple[int, ...]] = {}
        for assignment in normalized:
            key = plan_key(
                self._context_key,
                self.space.plan(assignment),
                self.space.layer_names,
            )
            keys.append(key)
            if key in self.points or key in self._pending_keys:
                self.dedup_hits += 1
                continue
            if key in fresh:
                self.dedup_hits += 1
                continue
            if self.resume:
                record = self.ledger.get(key)
                if record is not None:
                    point = self._point_from_record(key, record)
                    if self._baseline_accuracy is None:
                        self._baseline_accuracy = float(record["baseline_accuracy"])
                    self.ledger_replays += 1
                    self._admit(key, point)
                    continue
            fresh[key] = assignment

        truncated = False
        pending = list(fresh.items())
        if pending and self.remaining_evals < len(pending):
            pending = pending[: int(self.remaining_evals)]
            truncated = True
        handle = None
        if pending:
            plans = [self.space.plan(assignment) for _, assignment in pending]
            handle = self.evaluator.submit(plans)
            self.evaluations += len(plans)
            self._pending_keys.update(key for key, _ in pending)
        score = PendingScore(self, keys, pending, handle, truncated)
        self._outstanding.append(score)
        return score

    def score(self, assignments: Sequence[Sequence[int]]) -> list[ParetoPoint]:
        """Evaluate a batch of assignments, returning points in input order.

        Ledger and in-run duplicates are replayed without touching the
        evaluator or the budget; the first fresh assignment ever scored
        fixes the campaign's baseline accuracy (the engine guarantees it is
        the all-accurate one).  Raises :class:`BudgetExhausted` when fresh
        work would exceed the evaluation budget — after recording whatever
        part of the batch still fit.
        """
        return self.score_async(assignments).points()

    def _drain_through(self, target: PendingScore) -> None:
        """Collect outstanding batches in FIFO order up to ``target``."""
        if target.collected:
            return
        while self._outstanding:
            head = self._outstanding.popleft()
            head._collect()
            if head is target:
                return

    def finish(self) -> None:
        """Collect every outstanding :meth:`score_async` batch.

        The engine calls this after the strategy returns so no in-flight
        evaluation is dropped unrecorded; a well-behaved strategy has
        already collected everything and this is a no-op.
        """
        while self._outstanding:
            self._outstanding.popleft()._collect()

    def add_external_point(
        self,
        label: str,
        accuracy: float,
        energy_nj: float,
        meta: dict | None = None,
    ) -> ParetoPoint:
        """Publish a point measured outside the assignment space.

        Used by the baseline adapters, whose techniques choose their own
        plans and array designs; the point joins the front (and the result
        listing) but is not ledgered — the technique owns its own search.
        """
        point = ParetoPoint(
            label=label,
            energy_nj=float(energy_nj),
            accuracy=float(accuracy),
            accuracy_loss=self.loss_percent(accuracy),
            meta={"external": True, **(meta or {})},
        )
        self.points[f"external:{label}"] = point
        self.front.add(point)
        return point


@dataclass
class DseResult:
    """Outcome of one DSE campaign."""

    strategy: str
    front: ParetoFront
    points: list[ParetoPoint]
    baseline_accuracy: float
    accurate_energy_nj: float
    max_loss: float
    stats: dict = field(default_factory=dict)

    def best(self) -> ParetoPoint | None:
        """Minimum-energy front point meeting the loss budget."""
        return self.front.min_energy_point(self.max_loss)

    def energy_reduction_percent(self) -> float | None:
        """Energy saving of :meth:`best` versus the all-accurate design."""
        best = self.best()
        if best is None or self.accurate_energy_nj <= 0:
            return None
        return 100.0 * (1.0 - best.energy_nj / self.accurate_energy_nj)


def front_payload(result: "DseResult") -> list[dict]:
    """The Pareto front as JSON-able dicts, each point with its ledger key.

    The ``ledger_key`` is the content-addressed :func:`~repro.dse.ledger.
    plan_key` the point's evaluation was recorded under (``None`` for
    external baseline points, which are not ledgered) — embedding it in run
    manifests and golden files makes a front traceable to the exact ledger
    records that produced it.
    """
    return [
        {
            "label": point.label,
            "energy_nj": point.energy_nj,
            "accuracy": point.accuracy,
            "accuracy_loss": point.accuracy_loss,
            "ledger_key": point.meta.get("key"),
        }
        for point in result.front.points()
    ]


def build_campaign_service(
    trained_models: "Sequence[TrainedModel]",
    dataset: Dataset,
    workers: int | None,
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    engine_backend: str | None = None,
    reuse_prefix: bool = True,
    eval_images: np.ndarray | None = None,
    eval_labels: np.ndarray | None = None,
) -> "EvaluationService":
    """An :class:`EvaluationService` hosting campaign models on ``dataset``.

    The one place the campaign measurement setup maps onto a service: an
    explicit evaluation subset (the CLI's seeded eval subsampling) becomes
    the hosted dataset's test split, so workers score exactly the arrays
    the serial evaluator would — and the ledger context key, which hashes
    the actual evaluation bytes, stays identical.  Used both for the
    single-model service :func:`run_campaign` owns under ``workers=N`` and
    for the multi-model service the CLI shares across ``--models``
    campaigns.  ``workers`` passes through the degrade-to-serial clamp of
    :func:`~repro.runtime.sizing.resolve_worker_count` (``None`` =
    auto-size); the resulting service runs in-process when only one CPU is
    schedulable.
    """
    from repro.runtime.service import EvaluationService

    if (eval_images is None) != (eval_labels is None):
        raise ValueError("eval_images and eval_labels must be given together")
    workers = resolve_worker_count(workers)
    if eval_images is not None:
        dataset = dataclasses.replace(
            dataset, test_images=eval_images, test_labels=eval_labels
        )
        max_eval_images = None
    return EvaluationService(
        list(trained_models),
        {dataset.name: dataset},
        max_workers=workers,
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        engine_backend=engine_backend,
        reuse_prefix=reuse_prefix,
    )


def _check_service_setup(
    service: "EvaluationService",
    max_eval_images: int | None,
    calibration_images: int,
    engine_backend: str | None,
    reuse_prefix: bool,
    eval_images: np.ndarray | None,
    eval_labels: np.ndarray | None,
) -> None:
    """Reject campaign knobs that silently diverge from an external service.

    A :class:`ServicePlanEvaluator` measures with the *service's* setup;
    any conflicting knob passed to :func:`run_campaign` alongside
    ``service`` would otherwise be ignored without a trace — and the
    resulting accuracies (and ledger context keys) would differ from the
    documented serial equivalent.  Mirror the knobs onto the service (see
    :func:`build_campaign_service`) instead.
    """
    if eval_images is not None or eval_labels is not None:
        raise ValueError(
            "eval_images/eval_labels cannot be combined with an external "
            "service: host the subset as the service dataset's test split "
            "(build_campaign_service does exactly that)"
        )
    mismatches = [
        f"{name}={ours!r} (service has {theirs!r})"
        for name, ours, theirs in (
            ("max_eval_images", max_eval_images, service.max_eval_images),
            ("calibration_images", int(calibration_images), service.calibration_images),
            ("reuse_prefix", bool(reuse_prefix), service.reuse_prefix),
        )
        if ours != theirs
    ]
    if engine_backend is not None and engine_backend != service.engine_backend:
        mismatches.append(
            f"engine_backend={engine_backend!r} "
            f"(service has {service.engine_backend!r})"
        )
    if mismatches:
        raise ValueError(
            "campaign measurement knobs conflict with the external service: "
            + ", ".join(mismatches)
        )


def run_campaign(
    trained: TrainedModel,
    dataset: Dataset,
    strategy: "str | SearchStrategy" = "greedy",
    max_loss: float = 0.5,
    budget_evals: int | None = None,
    space: SearchSpace | None = None,
    evaluator: "PlanEvaluator | ServicePlanEvaluator | None" = None,
    ledger: CampaignLedger | None = None,
    resume: bool = False,
    rng: np.random.Generator | None = None,
    max_eval_images: int | None = None,
    calibration_images: int = 128,
    engine_backend: str | None = None,
    reuse_prefix: bool = True,
    eval_images: np.ndarray | None = None,
    eval_labels: np.ndarray | None = None,
    workers: int | None = 1,
    service: "EvaluationService | None" = None,
    **space_kwargs,
) -> DseResult:
    """Run one design-space exploration campaign on a trained network.

    Parameters
    ----------
    trained / dataset:
        The network under exploration and its dataset (evaluation split
        scored, training-split head used for calibration) — the same pair a
        :func:`~repro.simulation.campaign.plan_sweep` takes.
    strategy:
        Registered strategy name (see
        :func:`repro.dse.strategies.strategy_names`) or an instance.
    max_loss:
        Accuracy-loss budget in percentage points (the paper's headline
        constraint, e.g. 0.5).
    budget_evals:
        Cap on *fresh* accuracy evaluations; ledger replays are free.
    space / evaluator:
        Prebuilt :class:`SearchSpace` / evaluator; by default both are
        built here (``space_kwargs`` forwards to
        :meth:`SearchSpace.build`, e.g. ``array_size=...``,
        ``library=...``).
    ledger / resume:
        Persistent ledger and whether to *replay* its records.  Records are
        always written when a ledger is given, so a crashed campaign can be
        resumed later; replay is opt-in to keep fresh runs measured.
    rng:
        Seeded generator for the stochastic strategies (NSGA-II); defaults
        to ``np.random.default_rng(0)`` for reproducibility.
    workers:
        Candidate batches are fanned across this many evaluation-service
        worker processes (must be >= 1; ``None`` auto-sizes from the
        schedulable CPUs and host load).  The request is clamped to the
        schedulable-CPU count
        (:func:`repro.runtime.sizing.resolve_worker_count`): ``workers=4``
        on a 1-CPU box degrades to the serial in-process path — 1.0x the
        serial wall-clock instead of four contending processes.  The
        candidate generations of NSGA-II and the frontier expansions of
        the greedy descent are embarrassingly parallel, and every accuracy
        stays bit-exact with the serial path — ``workers=N`` produces the
        identical Pareto front and shares ledger records with
        ``workers=1``.
    service:
        A started (or startable) multi-model
        :class:`~repro.runtime.service.EvaluationService` hosting
        ``trained`` — the way several sequential campaigns (``repro dse
        --models ...``) reuse one worker pool and one publish of models
        and datasets.  The caller owns the service's lifecycle;
        ``workers`` is ignored in its favor.
    """
    if budget_evals is not None and budget_evals < 1:
        raise ValueError("budget_evals must be at least 1 (the accurate baseline)")
    if workers is not None and int(workers) < 1:
        raise ValueError(f"workers must be a positive integer, got {workers}")
    requested_workers = workers if workers is None else int(workers)
    # The degrade-to-serial clamp: never more workers than schedulable CPUs
    # (a 4-worker request on a 1-CPU box runs the serial path at 1.0x
    # serial, not 4 time-slicing processes at ~0.5x).
    effective_workers = resolve_worker_count(workers)
    if evaluator is not None and (
        service is not None
        or (requested_workers is not None and requested_workers > 1)
    ):
        # An explicit evaluator fully determines the execution path; a
        # service or worker count alongside it would be silently ignored.
        raise ValueError(
            "evaluator is mutually exclusive with workers/service: the "
            "evaluator already fixes the execution path (pass a "
            "ServicePlanEvaluator to use a service-backed one)"
        )
    if space is None:
        space = SearchSpace.build(
            trained.model, dataset.image_shape, **space_kwargs
        )
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    # Validate the configuration before the expensive evaluator calibration.
    strategy.prepare(space, budget_evals)
    owned_service: "EvaluationService | None" = None
    try:
        if evaluator is None:
            if service is None and effective_workers > 1:
                owned_service = build_campaign_service(
                    [trained],
                    dataset,
                    effective_workers,
                    max_eval_images=max_eval_images,
                    calibration_images=calibration_images,
                    engine_backend=engine_backend,
                    reuse_prefix=reuse_prefix,
                    eval_images=eval_images,
                    eval_labels=eval_labels,
                )
                service = owned_service
            elif service is not None:
                # External service: its measurement setup wins — reject
                # conflicting knobs loudly instead of ignoring them.
                _check_service_setup(
                    service,
                    max_eval_images,
                    calibration_images,
                    engine_backend,
                    reuse_prefix,
                    eval_images,
                    eval_labels,
                )
            if service is not None:
                evaluator = ServicePlanEvaluator(
                    service,
                    service.model_index(trained.name, trained.dataset_name),
                )
            else:
                evaluator = PlanEvaluator(
                    trained,
                    dataset,
                    max_eval_images=max_eval_images,
                    calibration_images=calibration_images,
                    engine_backend=engine_backend,
                    reuse_prefix=reuse_prefix,
                    eval_images=eval_images,
                    eval_labels=eval_labels,
                )
        if ledger is None:
            ledger = CampaignLedger(path=None)
        if rng is None:
            rng = np.random.default_rng(0)

        ctx = CampaignContext(
            space=space,
            evaluator=evaluator,
            ledger=ledger,
            max_loss=max_loss,
            budget_evals=budget_evals,
            rng=rng,
            resume=resume,
        )
        start = time.perf_counter()
        # The all-accurate design anchors the baseline accuracy and the energy
        # reference; scoring it first also guarantees it is always on record.
        ctx.score([space.accurate_assignment()])
        try:
            strategy.search(ctx)
            # Pipelining strategies may leave in-flight batches; collect
            # them so nothing evaluated goes unrecorded.
            ctx.finish()
        except BudgetExhausted:
            try:
                ctx.finish()
            except BudgetExhausted:  # pragma: no cover - defensive
                pass
        wall_clock = time.perf_counter() - start
    finally:
        # A KeyboardInterrupt (or any failure) lands here with every scored
        # plan already ledgered — ledger writes are eager and atomic — so
        # the only cleanup owed is the service's workers and shared blocks.
        if owned_service is not None:
            owned_service.close()

    return DseResult(
        strategy=strategy.name,
        front=ctx.front,
        points=list(ctx.points.values()),
        baseline_accuracy=ctx.baseline_accuracy,
        accurate_energy_nj=space.accurate_energy_nj(),
        max_loss=ctx.max_loss,
        stats={
            "evaluations": ctx.evaluations,
            "ledger_replays": ctx.ledger_replays,
            "dedup_hits": ctx.dedup_hits,
            "ledger": ledger.stats(),
            "points": len(ctx.points),
            "front_size": len(ctx.front),
            "wall_clock_s": wall_clock,
            "space_size": space.size(),
            # The evaluation-context digest every ledger record of this
            # campaign is keyed under — run manifests embed it so a front
            # is traceable to its ledger records by hash alone.
            "context_key": ctx.context_key,
            # Derived from the evaluator actually used, so an explicitly
            # passed ServicePlanEvaluator reports its service's pool size;
            # requested_workers keeps the pre-clamp request visible (None
            # when the caller asked for auto-sizing).
            "workers": (
                evaluator.service.max_workers
                if isinstance(evaluator, ServicePlanEvaluator)
                else 1
            ),
            "requested_workers": requested_workers,
        },
    )
