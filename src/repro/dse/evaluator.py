"""Accuracy scoring of candidate batches — in-process or service-backed.

Two interchangeable evaluators implement the campaign's scoring surface
(``evaluate(plans)``, ``submit(plans)`` returning a ``results()`` handle,
``context_key()``, ``mac_layer_names()``, ``evaluations``):

* :class:`PlanEvaluator` owns one calibrated
  :class:`~repro.simulation.inference.ApproximateExecutor` for the whole
  campaign — exactly the executor a serial
  :func:`~repro.simulation.campaign.plan_sweep` worker would build — and
  scores each candidate batch the way the sweep does: the batch's plan set
  is armed as the executor's plan context and plans are visited in the
  prefix-aware fingerprint order of
  :func:`~repro.runtime.scheduling.order_plan_cells`.
* :class:`ServicePlanEvaluator` fans each batch across the persistent
  worker pool of a :class:`~repro.runtime.service.EvaluationService`
  instead — the parallel path behind ``run_campaign(workers=N)`` — while
  reporting the *same* ledger context key, so serial and parallel
  campaigns share records freely.

Because the executor construction, the reuse machinery and the service
workers are all bit-exact, every accuracy either evaluator reports is
identical to the value a hand-enumerated
:func:`~repro.simulation.campaign.plan_sweep` (or a fresh executor with
reuse disabled) would measure for the same plan — the acceptance bar of
the DSE subsystem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.backends import EngineBackend
from repro.datasets.synthetic import Dataset
from repro.simulation.campaign import TrainedModel
from repro.simulation.inference import (
    ApproximateExecutor,
    ExecutionPlan,
    plan_fingerprint_sort_key,
)
from repro.simulation.metrics import accuracy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.service import EvaluationService


def _resolve_eval_arrays(
    dataset: Dataset,
    max_eval_images: int | None,
    eval_images: np.ndarray | None,
    eval_labels: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """The evaluation arrays a campaign scores against (explicit or capped)."""
    if (eval_images is None) != (eval_labels is None):
        raise ValueError("eval_images and eval_labels must be given together")
    if eval_images is None:
        eval_images = dataset.test_images
        eval_labels = dataset.test_labels
        if max_eval_images is not None:
            eval_images = eval_images[:max_eval_images]
            eval_labels = eval_labels[:max_eval_images]
    return eval_images, eval_labels


class ResolvedBatch:
    """Already-evaluated :meth:`PlanEvaluator.submit` handle.

    The in-process evaluator has no asynchrony to expose, so ``submit``
    evaluates eagerly and wraps the accuracies; the handle exists so the
    campaign engine drives one interface (``submit(...).results()``)
    regardless of execution path.
    """

    def __init__(self, accuracies: list[float]):
        self._accuracies = list(accuracies)

    def __len__(self) -> int:
        return len(self._accuracies)

    def results(self) -> list[float]:
        """Accuracies in the submitted plans' input order."""
        return list(self._accuracies)


class PlanEvaluator:
    """Measures plan accuracies for the DSE campaign (bit-exact with sweeps).

    Parameters mirror :func:`~repro.simulation.campaign.plan_sweep` so a
    campaign and a hand-enumerated sweep over the same knobs agree
    bit-exactly: ``max_eval_images`` caps the test split (prefix slice),
    ``calibration_images`` slices the head of the training split, and
    ``engine_backend`` / ``reuse_prefix`` select the (bit-exact) execution
    machinery.  ``eval_images`` / ``eval_labels`` override the evaluation
    arrays entirely — the hook the CLI's seeded eval subsampling uses.
    """

    def __init__(
        self,
        trained: TrainedModel,
        dataset: Dataset,
        max_eval_images: int | None = None,
        calibration_images: int = 128,
        engine_backend: "str | EngineBackend | None" = None,
        reuse_prefix: bool = True,
        batch_size: int = 256,
        eval_images: np.ndarray | None = None,
        eval_labels: np.ndarray | None = None,
    ):
        self.trained = trained
        self.dataset = dataset
        self.max_eval_images = max_eval_images
        self.calibration_images = int(calibration_images)
        self.batch_size = int(batch_size)
        self.reuse_prefix = bool(reuse_prefix)
        self.eval_images, self.eval_labels = _resolve_eval_arrays(
            dataset, max_eval_images, eval_images, eval_labels
        )
        self.executor = ApproximateExecutor(
            trained.model,
            dataset.train_images[: self.calibration_images],
            engine_backend=engine_backend,
            reuse_plan_invariant_acts=self.reuse_prefix,
            reuse_plan_invariant_prefix=self.reuse_prefix,
        )
        self.evaluations = 0

    # ------------------------------------------------------------------
    def context_key(self) -> str:
        """Ledger context digest of this evaluator's exact measurement setup."""
        from repro.dse.ledger import evaluation_context_key

        return evaluation_context_key(
            self.trained.model,
            self.eval_images,
            self.eval_labels,
            self.dataset.train_images[: self.calibration_images],
            batch_size=self.batch_size,
            tag=self.dataset.name,
        )

    def mac_layer_names(self) -> list[str]:
        """MAC layer names of the underlying executor, in execution order."""
        return self.executor.mac_layer_names()

    def evaluate(self, plans: Sequence[ExecutionPlan]) -> list[float]:
        """Accuracies of ``plans`` on the evaluation set, in input order.

        The batch is armed as the executor's plan context and visited in
        prefix-aware fingerprint order; results are returned in the input
        order.  Bit-exact with evaluating each plan on a fresh executor.
        """
        plans = list(plans)
        if not plans:
            return []
        order = range(len(plans))
        if self.reuse_prefix:
            self.executor.set_plan_context(plans)
            mac_names = tuple(self.mac_layer_names())
            sort_keys = {
                index: plan_fingerprint_sort_key(plan.fingerprints(mac_names))
                for index, plan in enumerate(plans)
            }
            order = sorted(order, key=sort_keys.__getitem__)
        accuracies: dict[int, float] = {}
        for index in order:
            predictions = self.executor.predict(
                self.eval_images, plans[index], batch_size=self.batch_size
            )
            accuracies[index] = accuracy(predictions, self.eval_labels)
            self.evaluations += 1
        return [accuracies[index] for index in range(len(plans))]

    def submit(self, plans: Sequence[ExecutionPlan]) -> ResolvedBatch:
        """Async-shaped scoring surface (eager here — no workers to overlap).

        Mirrors :meth:`ServicePlanEvaluator.submit` so the campaign engine's
        pipelined scoring (:meth:`~repro.dse.engine.CampaignContext.
        score_async`) runs unchanged on the serial path.
        """
        return ResolvedBatch(self.evaluate(plans))


class ServicePlanEvaluator:
    """Service-backed :class:`PlanEvaluator` drop-in for parallel campaigns.

    Scoring fans each candidate batch across the persistent workers of an
    :class:`~repro.runtime.service.EvaluationService` (which schedules the
    batch prefix-aware and arms each worker's plan context); everything
    else — evaluation arrays, calibration slice, batch size, and therefore
    the ledger :meth:`context_key` — matches the in-process evaluator
    exactly, so serial and parallel campaigns replay each other's ledger
    records with zero duplicate evaluations.

    The evaluator does **not** own the service: callers (or
    :func:`~repro.dse.engine.run_campaign`) manage its lifecycle, which is
    what lets one multi-model service back many sequential campaigns.

    For the one-call baseline techniques — which drive an executor
    directly rather than scoring plan batches — :attr:`executor` builds a
    bit-exact in-process executor lazily on first access.
    """

    def __init__(self, service: "EvaluationService", model_index: int):
        self.service = service
        self.model_index = int(model_index)
        self.trained = service.models[self.model_index]
        self.dataset = service.datasets[self.trained.dataset_name]
        self.max_eval_images = service.max_eval_images
        self.calibration_images = service.calibration_images
        self.batch_size = service.batch_size
        self.reuse_prefix = service.reuse_prefix
        self.engine_backend = service.engine_backend
        self.eval_images, self.eval_labels = _resolve_eval_arrays(
            self.dataset, self.max_eval_images, None, None
        )
        self.evaluations = 0
        self._executor: ApproximateExecutor | None = None

    # ------------------------------------------------------------------
    @property
    def executor(self) -> ApproximateExecutor:
        """Lazily built in-process executor (for baseline ``apply`` calls)."""
        if self._executor is None:
            self._executor = ApproximateExecutor(
                self.trained.model,
                self.dataset.train_images[: self.calibration_images],
                engine_backend=self.engine_backend,
                reuse_plan_invariant_acts=self.reuse_prefix,
                reuse_plan_invariant_prefix=self.reuse_prefix,
            )
        return self._executor

    def context_key(self) -> str:
        """Ledger context digest — identical to the serial evaluator's."""
        from repro.dse.ledger import evaluation_context_key

        return evaluation_context_key(
            self.trained.model,
            self.eval_images,
            self.eval_labels,
            self.dataset.train_images[: self.calibration_images],
            batch_size=self.batch_size,
            tag=self.dataset.name,
        )

    def mac_layer_names(self) -> list[str]:
        """MAC layer names of the hosted model, in execution order."""
        return list(self.service.mac_names(self.model_index))

    def evaluate(self, plans: Sequence[ExecutionPlan]) -> list[float]:
        """Accuracies of ``plans``, scored across the service's workers.

        Bit-exact with :meth:`PlanEvaluator.evaluate` (and with
        :func:`~repro.simulation.campaign.plan_sweep`) — results come back
        in input order.
        """
        plans = list(plans)
        if not plans:
            return []
        accuracies = self.service.evaluate_plans(self.model_index, plans)
        self.evaluations += len(plans)
        return accuracies

    def submit(self, plans: Sequence[ExecutionPlan]):
        """Dispatch ``plans`` to the service without blocking on results.

        Returns the service's :class:`~repro.runtime.service.
        EvaluationBatch`: the chunks run on the pool while the caller keeps
        working (e.g. breeding the rest of an NSGA-II generation), and
        ``results()`` blocks only when the accuracies are actually needed.
        The evaluation count is charged at submission — the work is in
        flight from that point on.
        """
        plans = list(plans)
        if not plans:
            return ResolvedBatch([])
        batch = self.service.submit([(self.model_index, plan) for plan in plans])
        self.evaluations += len(plans)
        return batch
