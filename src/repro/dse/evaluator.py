"""Accuracy scoring of candidate batches through the prefix-reuse machinery.

The evaluator owns one calibrated
:class:`~repro.simulation.inference.ApproximateExecutor` for the whole
campaign — exactly the executor a serial
:func:`~repro.simulation.campaign.plan_sweep` worker would build — and
scores each candidate batch the way the sweep does:

* the batch's plan set is armed as the executor's plan context
  (:meth:`~repro.simulation.inference.ApproximateExecutor.set_plan_context`),
  so plan-shared layer prefixes are checkpointed and resumed;
* plans are visited in :func:`~repro.simulation.inference.
  plan_fingerprint_sort_key` order — the prefix-aware schedule of
  :func:`~repro.simulation.campaign.order_plan_cells` — so consecutive
  plans share the deepest possible prefix.

Because both the executor construction and the reuse machinery are
bit-exact, every accuracy the evaluator reports is identical to the value a
hand-enumerated :func:`~repro.simulation.campaign.plan_sweep` (or a fresh
executor with reuse disabled) would measure for the same plan — the
acceptance bar of the DSE subsystem.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.backends import EngineBackend
from repro.datasets.synthetic import Dataset
from repro.simulation.campaign import TrainedModel
from repro.simulation.inference import (
    ApproximateExecutor,
    ExecutionPlan,
    plan_fingerprint_sort_key,
)
from repro.simulation.metrics import accuracy


class PlanEvaluator:
    """Measures plan accuracies for the DSE campaign (bit-exact with sweeps).

    Parameters mirror :func:`~repro.simulation.campaign.plan_sweep` so a
    campaign and a hand-enumerated sweep over the same knobs agree
    bit-exactly: ``max_eval_images`` caps the test split (prefix slice),
    ``calibration_images`` slices the head of the training split, and
    ``engine_backend`` / ``reuse_prefix`` select the (bit-exact) execution
    machinery.  ``eval_images`` / ``eval_labels`` override the evaluation
    arrays entirely — the hook the CLI's seeded eval subsampling uses.
    """

    def __init__(
        self,
        trained: TrainedModel,
        dataset: Dataset,
        max_eval_images: int | None = None,
        calibration_images: int = 128,
        engine_backend: "str | EngineBackend | None" = None,
        reuse_prefix: bool = True,
        batch_size: int = 256,
        eval_images: np.ndarray | None = None,
        eval_labels: np.ndarray | None = None,
    ):
        self.trained = trained
        self.dataset = dataset
        self.max_eval_images = max_eval_images
        self.calibration_images = int(calibration_images)
        self.batch_size = int(batch_size)
        self.reuse_prefix = bool(reuse_prefix)
        if (eval_images is None) != (eval_labels is None):
            raise ValueError("eval_images and eval_labels must be given together")
        if eval_images is None:
            eval_images = dataset.test_images
            eval_labels = dataset.test_labels
            if max_eval_images is not None:
                eval_images = eval_images[:max_eval_images]
                eval_labels = eval_labels[:max_eval_images]
        self.eval_images = eval_images
        self.eval_labels = eval_labels
        self.executor = ApproximateExecutor(
            trained.model,
            dataset.train_images[: self.calibration_images],
            engine_backend=engine_backend,
            reuse_plan_invariant_acts=self.reuse_prefix,
            reuse_plan_invariant_prefix=self.reuse_prefix,
        )
        self.evaluations = 0

    # ------------------------------------------------------------------
    def context_key(self) -> str:
        """Ledger context digest of this evaluator's exact measurement setup."""
        from repro.dse.ledger import evaluation_context_key

        return evaluation_context_key(
            self.trained.model,
            self.eval_images,
            self.eval_labels,
            self.dataset.train_images[: self.calibration_images],
            batch_size=self.batch_size,
            tag=self.dataset.name,
        )

    def mac_layer_names(self) -> list[str]:
        """MAC layer names of the underlying executor, in execution order."""
        return self.executor.mac_layer_names()

    def evaluate(self, plans: Sequence[ExecutionPlan]) -> list[float]:
        """Accuracies of ``plans`` on the evaluation set, in input order.

        The batch is armed as the executor's plan context and visited in
        prefix-aware fingerprint order; results are returned in the input
        order.  Bit-exact with evaluating each plan on a fresh executor.
        """
        plans = list(plans)
        if not plans:
            return []
        order = range(len(plans))
        if self.reuse_prefix:
            self.executor.set_plan_context(plans)
            mac_names = tuple(self.mac_layer_names())
            sort_keys = {
                index: plan_fingerprint_sort_key(plan.fingerprints(mac_names))
                for index, plan in enumerate(plans)
            }
            order = sorted(order, key=sort_keys.__getitem__)
        accuracies: dict[int, float] = {}
        for index in order:
            predictions = self.executor.predict(
                self.eval_images, plans[index], batch_size=self.batch_size
            )
            accuracies[index] = accuracy(predictions, self.eval_labels)
            self.evaluations += 1
        return [accuracies[index] for index in range(len(plans))]
