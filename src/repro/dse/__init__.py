"""Automated design-space exploration of per-layer approximation mappings.

The paper's headline methodology is a *search*: pick a per-layer mix of
approximate multipliers (perforated, with or without the control-variate
MAC+ column, or arbitrary library designs) that minimizes energy subject to
an accuracy-loss budget.  This package turns the repo's fast simulation
substrate into that decision procedure:

* :mod:`~repro.dse.space` — :class:`SearchSpace`: per-layer candidate
  menus priced by the hardware cycle/power models;
* :mod:`~repro.dse.strategies` — the pluggable :class:`SearchStrategy`
  registry (``exhaustive``, ``greedy``, ``nsga2``, plus the one-call
  baseline adapters of :mod:`~repro.dse.baselines`);
* :mod:`~repro.dse.pareto` — :class:`ParetoFront` with dominance pruning;
* :mod:`~repro.dse.ledger` — :class:`CampaignLedger`: persistent,
  content-addressed records that make campaigns resumable and re-runs free;
* :mod:`~repro.dse.evaluator` — :class:`PlanEvaluator` (in-process) and
  :class:`ServicePlanEvaluator` (fanned across a
  :class:`repro.runtime.service.EvaluationService` worker pool): accuracy
  scoring through the executor's plan-context prefix reuse, both bit-exact
  with :func:`repro.simulation.campaign.plan_sweep`;
* :mod:`~repro.dse.engine` — :func:`run_campaign` wiring it all together
  (the CLI exposes it as ``python -m repro dse``, with ``--workers N``
  selecting the parallel path and ``--models all`` a multi-model session).

See the package ``README.md`` for the strategy registry and the ledger
record format.
"""

from repro.dse.engine import (
    CampaignContext,
    DseResult,
    build_campaign_service,
    run_campaign,
)
from repro.dse.evaluator import PlanEvaluator, ServicePlanEvaluator
from repro.dse.ledger import CampaignLedger, evaluation_context_key, plan_key
from repro.dse.pareto import ParetoFront, ParetoPoint
from repro.dse.space import Candidate, SearchSpace
from repro.dse.strategies import (
    BudgetExhausted,
    ExhaustiveSearch,
    GreedySearch,
    NSGA2Search,
    SearchStrategy,
    get_strategy,
    has_strategy,
    register_strategy,
    strategy_names,
)

# Importing the adapters registers the baseline strategies.
from repro.dse import baselines as _baselines  # noqa: F401  (registration side effect)

__all__ = [
    "Candidate",
    "SearchSpace",
    "ParetoFront",
    "ParetoPoint",
    "CampaignLedger",
    "evaluation_context_key",
    "plan_key",
    "PlanEvaluator",
    "ServicePlanEvaluator",
    "CampaignContext",
    "DseResult",
    "build_campaign_service",
    "run_campaign",
    "BudgetExhausted",
    "SearchStrategy",
    "register_strategy",
    "strategy_names",
    "has_strategy",
    "get_strategy",
    "ExhaustiveSearch",
    "GreedySearch",
    "NSGA2Search",
]
