"""Persistent, resumable campaign ledger of evaluated design points.

Accuracy evaluation dominates the cost of a DSE campaign, so the explorer
never evaluates the same design twice: every scored plan is recorded in a
:class:`CampaignLedger` under a **content-addressed key** — the SHA-256 of

* the *evaluation context*: the trained model's parameter bytes, the
  dataset's arrays, and every knob that changes the measured accuracy
  (eval-image cap, calibration size, batch size) — see
  :func:`evaluation_context_key`; and
* the plan's per-layer :meth:`~repro.simulation.inference.ProductModel.
  fingerprint` sequence, which identifies the plan by *numerical behavior*
  (a LUT candidate is keyed by its table digest, perforation by ``(m, V)``)
  rather than by object identity or name.

Records are single JSON files named by their key, written atomically
(temp-file + rename) as soon as the evaluation finishes, so a killed
campaign resumes from its last completed evaluation: re-running with the
same ledger directory replays every recorded point as a cache hit and only
evaluates genuinely new plans.  One directory can host many contexts — keys
from different models/datasets/settings never collide.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import numpy as np

from repro.nn.graph import Graph
from repro.simulation.inference import ExecutionPlan


def _hash_arrays(digest: "hashlib._Hash", arrays: dict[str, np.ndarray]) -> None:
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.dtype.str.encode("utf-8"))
        digest.update(array.tobytes())


def evaluation_context_key(
    model: Graph,
    eval_images: np.ndarray,
    eval_labels: np.ndarray,
    calibration_images: np.ndarray,
    batch_size: int = 256,
    tag: str = "",
) -> str:
    """Digest of everything besides the plan that determines an accuracy.

    Two campaigns share ledger records exactly when this key matches: same
    trained parameters, same evaluation and calibration bytes, same batch
    size.  The *actual* evaluation arrays are hashed — a capped or seeded
    subsample of a dataset therefore gets its own records, never aliasing a
    full-split campaign.  ``tag`` folds in a human-meaningful label (the
    dataset name) so unrelated datasets with coincidentally equal bytes
    stay distinct.
    """
    digest = hashlib.sha256()
    _hash_arrays(digest, dict(model.state_dict()))
    _hash_arrays(
        digest,
        {
            "eval_images": eval_images,
            "eval_labels": eval_labels,
            "calib_images": calibration_images,
        },
    )
    digest.update(
        json.dumps({"tag": tag, "batch_size": int(batch_size)}, sort_keys=True).encode(
            "utf-8"
        )
    )
    return digest.hexdigest()


def plan_key(context_key: str, plan: ExecutionPlan, layer_names: "tuple[str, ...] | list[str]") -> str:
    """Content-addressed record key of one plan within one context.

    The plan contributes its per-layer fingerprint sequence — structural
    for the accurate/perforated/LUT families, so equal-behavior plans from
    different campaign runs (or different strategies) map to the same
    record.
    """
    digest = hashlib.sha256()
    digest.update(context_key.encode("utf-8"))
    digest.update(repr(plan.fingerprints(tuple(layer_names))).encode("utf-8"))
    return digest.hexdigest()


class CampaignLedger:
    """Content-addressed store of evaluated design points.

    Parameters
    ----------
    path:
        Directory receiving one ``<key>.json`` file per record; created on
        demand.  ``None`` keeps the ledger in memory only (no persistence,
        but in-run dedup still works).

    The ledger counts its traffic: :attr:`hits` (a :meth:`get` that found a
    record) and :attr:`misses`, which the campaign surfaces so tests can
    assert "zero duplicate evaluations" after a resume.
    """

    def __init__(self, path: str | None = None):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._memory: dict[str, dict] = {}

    def _record_path(self, key: str) -> str:
        assert self.path is not None
        return os.path.join(self.path, f"{key}.json")

    def __len__(self) -> int:
        """Records this ledger instance has stored or replayed.

        Deliberately *not* a directory count: one directory hosts records
        of many contexts (models, datasets, eval settings), so a campaign's
        record figure must only cover the records it actually touched.
        """
        return len(self._memory)

    def get(self, key: str) -> dict | None:
        """The record stored under ``key``, or ``None`` (counted as a miss)."""
        record = self._memory.get(key)
        if record is None and self.path is not None:
            try:
                with open(self._record_path(key), "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                record = None
            if record is not None:
                self._memory[key] = record
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def contains(self, key: str) -> bool:
        """Whether a record exists, without touching the hit/miss counters."""
        if key in self._memory:
            return True
        return self.path is not None and os.path.exists(self._record_path(key))

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (atomic write-then-rename on disk)."""
        self._memory[key] = record
        if self.path is None:
            return
        os.makedirs(self.path, exist_ok=True)
        payload = json.dumps(record, indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            os.replace(tmp, self._record_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def iter_disk_records(self):
        """Yield every ``(key, record)`` pair stored in the ledger directory.

        Scans the directory (not :attr:`_memory`), skipping temp files and
        anything unparsable, and leaves the hit/miss counters untouched —
        this is the bulk-load path a warm-starting
        :class:`~repro.runtime.jobs.cache.ResultCache` uses, not a lookup.
        Keys are yielded in sorted filename order so a capped consumer
        loads deterministically.
        """
        if self.path is None or not os.path.isdir(self.path):
            return
        for filename in sorted(os.listdir(self.path)):
            if not filename.endswith(".json"):
                continue
            key = filename[: -len(".json")]
            try:
                with open(
                    os.path.join(self.path, filename), "r", encoding="utf-8"
                ) as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict):
                yield key, record

    def stats(self) -> dict[str, int]:
        """Hit/miss counters plus the records this instance touched."""
        return {"hits": self.hits, "misses": self.misses, "records": len(self)}
