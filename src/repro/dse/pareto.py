"""Pareto-front container of the design-space exploration.

The explorer optimizes two objectives per evaluated execution plan:
**energy** (minimize, from the accelerator energy model) and **accuracy**
(maximize, measured by the approximate executor).  :class:`ParetoFront`
keeps the non-dominated set under these objectives with eager dominance
pruning, so strategies can stream points into it in any order and read a
clean front at any time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point of a DSE campaign.

    Attributes
    ----------
    label:
        Human-readable plan label (candidate codes per layer, or a
        baseline-technique name).
    energy_nj:
        Modeled network energy of the plan (minimized).
    accuracy:
        Measured top-1 accuracy under the plan (maximized).
    accuracy_loss:
        Accuracy loss in percentage points versus the campaign's quantized
        accurate baseline (derived, but stored so ledger records and
        reports need no recomputation).
    meta:
        Free-form provenance (assignment indices, strategy name, ledger
        key, ...); excluded from equality so two evaluations of the same
        design compare equal.
    """

    label: str
    energy_nj: float
    accuracy: float
    accuracy_loss: float
    meta: dict = field(default_factory=dict, compare=False)

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weakly better in both objectives and strictly better in one."""
        return (
            self.energy_nj <= other.energy_nj
            and self.accuracy >= other.accuracy
            and (self.energy_nj < other.energy_nj or self.accuracy > other.accuracy)
        )


class ParetoFront:
    """Non-dominated set of :class:`ParetoPoint` with eager pruning."""

    def __init__(self) -> None:
        self._points: list[ParetoPoint] = []

    def add(self, point: ParetoPoint) -> bool:
        """Insert ``point``; returns whether it joined the front.

        A point dominated by (or objective-equal to) an existing member is
        rejected; an accepted point evicts every member it dominates.
        """
        for existing in self._points:
            if existing.dominates(point):
                return False
            if (
                existing.energy_nj == point.energy_nj
                and existing.accuracy == point.accuracy
            ):
                return False
        self._points = [p for p in self._points if not point.dominates(p)]
        self._points.append(point)
        return True

    def points(self) -> list[ParetoPoint]:
        """Front members sorted by ascending energy."""
        return sorted(self._points, key=lambda p: (p.energy_nj, -p.accuracy))

    def min_energy_point(self, max_loss: float | None = None) -> ParetoPoint | None:
        """Cheapest front point whose accuracy loss is within ``max_loss``.

        ``None`` budget admits every point; an empty feasible set returns
        ``None`` (the caller decides whether that means "accurate only" or
        "infeasible campaign").
        """
        feasible = [
            p
            for p in self._points
            if max_loss is None or p.accuracy_loss <= max_loss
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda p: (p.energy_nj, -p.accuracy))

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self.points())

    def __contains__(self, point: ParetoPoint) -> bool:
        return point in self._points
