"""Core contribution: control-variate approximation for approximate MAC arrays.

This package implements Section III of the paper:

* :mod:`~repro.core.control_variate` — the control variate ``V = C * sum_j
  x_j`` with the variance-optimal constant ``C = E[W_j]`` (eq. (7), (11)).
* :mod:`~repro.core.error_model` — closed-form mean and variance of the
  convolution error with and without the control variate (eqs. (3), (10),
  (12)) plus Monte-Carlo validation helpers.
* :mod:`~repro.core.approx_conv` — the approximate product-sum computations
  that plug into the quantized linear op: accurate, perforated without
  correction, perforated with the control variate, and generic LUT
  multipliers.
* :mod:`~repro.core.accelerator_model` — a configuration object tying the
  approximation mode to the MAC-array geometry used by the simulators and
  hardware models.
* :mod:`~repro.core.product_kernels` — compiled per-layer product kernels:
  the weight-dependent state of every product model is built once per
  (layer, plan) and reused across batches; the LUT path becomes two matrix
  products via the ``lut = exact - error`` decomposition.
* :mod:`~repro.core.backends` — the pluggable engine-backend registry
  (``numpy`` / ``numba`` / ``lowmem``) selecting *how* product kernels are
  compiled; all backends are bit-exact and selectable via
  ``AcceleratorConfig.engine_backend``, the executor's ``engine_backend``
  argument and the CLI's ``--engine-backend`` flag.
* :mod:`~repro.core.shared_store` — :class:`SharedArrayStore`, the generic
  one-producer / many-consumer shared-memory channel (POSIX shm with a
  memmap fallback) behind the multi-process sweep's zero-copy publication
  of trained parameters and evaluation datasets.
"""

from repro.core.control_variate import (
    ControlVariate,
    optimal_control_constant,
    quantize_control_constant,
)
from repro.core.error_model import (
    ConvolutionErrorStats,
    convolution_error_stats,
    simulate_convolution_error,
    variance_reduction_factor,
)
from repro.core.approx_conv import (
    ApproximationMode,
    accurate_product_sums,
    perforated_product_sums,
    lut_product_sums,
    product_sums,
)
from repro.core.accelerator_model import AcceleratorConfig
from repro.core.product_kernels import (
    AccurateKernel,
    CallbackKernel,
    ChunkedKernel,
    KernelOptions,
    LUTKernel,
    PerforatedKernel,
    ProductKernel,
    exact_int_matmul,
)
from repro.core.shared_store import SharedArrayStore
from repro.core.backends import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    EngineBackend,
    LowMemoryBackend,
    NumbaBackend,
    NumpyBackend,
    available_backend_names,
    backend_names,
    get_backend,
    has_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "ControlVariate",
    "optimal_control_constant",
    "quantize_control_constant",
    "ConvolutionErrorStats",
    "convolution_error_stats",
    "simulate_convolution_error",
    "variance_reduction_factor",
    "ApproximationMode",
    "accurate_product_sums",
    "perforated_product_sums",
    "lut_product_sums",
    "product_sums",
    "AcceleratorConfig",
    "ProductKernel",
    "AccurateKernel",
    "PerforatedKernel",
    "LUTKernel",
    "ChunkedKernel",
    "CallbackKernel",
    "KernelOptions",
    "exact_int_matmul",
    "SharedArrayStore",
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "EngineBackend",
    "NumpyBackend",
    "NumbaBackend",
    "LowMemoryBackend",
    "register_backend",
    "backend_names",
    "available_backend_names",
    "has_backend",
    "get_backend",
    "resolve_backend",
]
