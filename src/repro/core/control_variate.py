"""The control variate of Section III.

With the perforated multiplier the error of each approximate product is
``eps_j = W_j * x_j`` where ``x_j = A_j mod 2^m`` are the dropped activation
bits.  The paper's control variate is the easily-computed quantity

    V = C * sum_j x_j                                   (eq. (7))

which is perfectly linearly correlated with every ``eps_j``.  Adding ``V``
to the approximate accumulation gives the corrected convolution

    G* = B + sum_j W_j A_j|approx + V                   (eq. (4))

whose error ``sum_j x_j (W_j - C)`` is minimized in variance by

    C = E[W_j] = (1/k) sum_j W_j                        (eq. (11))

i.e. the mean of the filter's weights — a single 8-bit constant per filter
in the hardware implementation of Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def optimal_control_constant(weights: np.ndarray) -> float:
    """Variance-optimal control constant ``C = E[W_j]`` (eq. (11)).

    Parameters
    ----------
    weights:
        The (quantized) weights of one filter, any shape; the mean is taken
        over all taps.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    return float(w.mean())


def quantize_control_constant(c: float, bits: int = 8) -> int:
    """Round ``C`` to the integer stored in the accelerator's weight memory.

    Section IV states the memory overhead of the control constant is 8 bits
    per filter, i.e. the constant is stored as an unsigned integer of the
    same width as the weights.
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    upper = (1 << bits) - 1
    return int(np.clip(round(float(c)), 0, upper))


@dataclass(frozen=True)
class ControlVariate:
    """Per-filter control variate of one convolution / dense layer.

    Attributes
    ----------
    constants:
        Array of shape ``(filters,)`` holding the control constant of each
        filter.  When ``quantized`` is true these are the 8-bit values the
        accelerator would store; otherwise the exact real means.
    quantized:
        Whether :attr:`constants` were rounded to the 8-bit storage format.
    """

    constants: np.ndarray
    quantized: bool = True

    def __post_init__(self) -> None:
        constants = np.asarray(self.constants, dtype=np.float64)
        if constants.ndim != 1:
            raise ValueError(f"constants must be 1-D, got shape {constants.shape}")
        object.__setattr__(self, "constants", constants)

    @classmethod
    def from_weight_matrix(
        cls, weight_codes: np.ndarray, quantize: bool = True, bits: int = 8
    ) -> "ControlVariate":
        """Derive the per-filter constants from a ``(taps, filters)`` weight matrix.

        This is the layout used by the quantized executors and the MAC-array
        simulator (one column per filter), so the constant of filter ``f`` is
        the mean of column ``f``.
        """
        codes = np.asarray(weight_codes, dtype=np.float64)
        if codes.ndim != 2:
            raise ValueError(
                f"weight_codes must be 2-D (taps, filters), got {codes.shape}"
            )
        means = codes.mean(axis=0)
        if quantize:
            upper = (1 << bits) - 1
            means = np.clip(np.rint(means), 0, upper)
        return cls(constants=means, quantized=quantize)

    @property
    def n_filters(self) -> int:
        return int(self.constants.shape[0])

    def correction(self, x_sums: np.ndarray) -> np.ndarray:
        """The control variate ``V`` for given per-patch perforated-bit sums.

        Parameters
        ----------
        x_sums:
            Array of shape ``(patches,)`` (or ``(patches, 1)``) holding
            ``sum_j x_j`` of each output patch.

        Returns
        -------
        numpy.ndarray
            ``(patches, filters)`` correction terms ``V = C_f * sum_j x_j``.
        """
        x = np.asarray(x_sums, dtype=np.float64).reshape(-1, 1)
        return x * self.constants[None, :]

    def memory_overhead_bits(self, bits: int = 8) -> int:
        """Weight-memory overhead of storing the constants (8 bits per filter)."""
        return self.n_filters * bits
