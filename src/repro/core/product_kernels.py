"""Compiled per-layer product kernels for the approximate executor.

The legacy product-sum functions in :mod:`repro.core.approx_conv` re-derive
all per-layer state (int64 weight copies, LUT gathers, control constants) on
every batch.  A :class:`ProductKernel` is the compiled counterpart: it is
built **once** per (layer, execution plan) by ``ProductModel.compile`` and
then evaluated on every activation batch, so all weight-dependent work is
hoisted out of the hot loop.

The LUT kernel is the important one.  For an arbitrary 256x256 multiplier
table the legacy path materializes a ``(patches, taps, filters)`` gather per
chunk.  The compiled kernel instead decomposes the table as

    lut[w, a] = w * a - err[w, a]

so the exact part ``sum_j w_j a_j`` is a single matrix product, and the error
part becomes a matrix product of the *one-hot encoded* activations against a
precompiled ``(taps * 256, filters)`` error matrix::

    err_sums[p, f] = sum_j err[w[j, f], act[p, j]]
                   = onehot(act)[p, :] @ E[:, f],
    E[j * 256 + a, f] = err[w[j, f], a]

The one-hot matrix has exactly ``taps`` ones per row, so the product is
evaluated through a scipy CSR matrix when scipy is available, or through a
per-tap gather loop otherwise — either way the 3-D gather is gone.

All integer matrix products are executed in float64 BLAS and cast back: every
partial product and every partial sum is a non-negative integer bounded by
``taps * 255 * 255 << 2^53``, so the float64 accumulation is exact and the
results are bit-identical to the int64 reference paths (enforced by the
``pytest -m engine`` parity suite).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.control_variate import ControlVariate
from repro.multipliers.base import OPERAND_LEVELS

try:  # pragma: no cover - exercised indirectly via LUTKernel paths
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is available in CI
    _sparse = None


#: Largest precompiled LUT error matrix, in bytes, before :class:`LUTKernel`
#: falls back to the low-memory per-tap evaluation.
DEFAULT_MAX_ERROR_MATRIX_BYTES = 1 << 28


@dataclass(frozen=True)
class KernelOptions:
    """Backend-tunable knobs honored by ``ProductModel.compile``.

    An :class:`repro.core.backends.EngineBackend` passes these to the
    product models it compiles; models honor the knobs that apply to them
    (only the LUT kernel has a memory/speed trade-off today) and ignore the
    rest, so options never change results — only footprint and speed.
    """

    #: Cap on the precompiled LUT error matrix; layers whose matrix would
    #: exceed it use the streaming per-tap evaluation instead.
    max_error_matrix_bytes: int = DEFAULT_MAX_ERROR_MATRIX_BYTES


def _as_int64_weights(weight_codes: np.ndarray) -> np.ndarray:
    w = np.asarray(weight_codes)
    if w.ndim != 2:
        raise ValueError(f"weight_codes must be 2-D (taps, filters), got {w.shape}")
    return w.astype(np.int64)


def exact_int_matmul(lhs: np.ndarray, rhs_f64: np.ndarray) -> np.ndarray:
    """``lhs @ rhs`` for non-negative integer operands, via float64 BLAS.

    Exact because every partial sum is an integer below 2^53; BLAS is an
    order of magnitude faster than numpy's native int64 matmul.
    """
    return (lhs.astype(np.float64) @ rhs_f64).astype(np.int64)


#: Largest per-(patch, filter) product sum for which float32 accumulation is
#: still exact (integers below 2^24).
_F32_EXACT_BOUND = 1 << 24


class _WeightOperand:
    """A weight matrix prepared for exact floating-point BLAS products.

    Stores the float64 copy of the ``(taps, filters)`` weights and, when
    every possible product sum of 8-bit activations against them fits below
    2^24 (``255 * max_f sum_j w[j, f] < 2^24``), a float32 copy as well —
    float32 sgemm is about twice as fast as dgemm and still bit-exact in
    that regime, because every partial sum is a non-negative integer below
    the float32 exact-integer limit.
    """

    def __init__(self, w: np.ndarray):
        self._f64 = w.astype(np.float64)
        w64 = w.astype(np.int64)
        # The bound argument requires genuine 8-bit codes: signed or
        # out-of-range weights could overflow float32 partial products even
        # with a small column sum, so they disqualify the f32 copy entirely.
        is_8bit = w64.size == 0 or (w64.min() >= 0 and w64.max() < OPERAND_LEVELS)
        max_col_sum = int(w64.sum(axis=0).max()) if w64.size else 0
        self._f32 = (
            w.astype(np.float32)
            if is_8bit and 255 * max_col_sum < _F32_EXACT_BOUND
            else None
        )

    def matmul(self, lhs: np.ndarray) -> np.ndarray:
        """Exact ``lhs @ w`` as int64 for integer-valued ``lhs``.

        The float32 path is only taken for uint8 operands — the dtype
        guarantees the <= 255 bound the exactness argument needs; any other
        integer input goes through float64, which is exact for every partial
        sum below 2^53.
        """
        if self._f32 is not None and lhs.dtype == np.uint8:
            return (lhs.astype(np.float32) @ self._f32).astype(np.int64)
        return exact_int_matmul(lhs, self._f64)


class ProductKernel(abc.ABC):
    """A product model compiled against one layer's quantized weights.

    Calling the kernel with ``(patches, taps)`` activation codes returns the
    ``(patches, filters)`` raw product sums, exactly as the corresponding
    legacy function in :mod:`repro.core.approx_conv` would.
    """

    def __init__(self, taps: int, filters: int):
        self.taps = int(taps)
        self.filters = int(filters)

    @abc.abstractmethod
    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        """Raw ``sum_j product(wq_j, aq_j)`` of shape ``(patches, filters)``."""

    def __call__(self, act_codes: np.ndarray) -> np.ndarray:
        return self.product_sums(act_codes)

    def _check_acts(self, act_codes: np.ndarray) -> np.ndarray:
        """Validate shape; keep integer dtypes as-is — uint8 stays uint8, so
        the executor's persistent buffers reach BLAS without an int64 detour.
        Non-integer inputs are truncated to int64, matching the legacy
        ``_check_codes`` behaviour of :mod:`repro.core.approx_conv`."""
        act = np.asarray(act_codes)
        if act.ndim != 2 or act.shape[1] != self.taps:
            raise ValueError(
                f"activations must have shape (patches, {self.taps}), got {act.shape}"
            )
        if not np.issubdtype(act.dtype, np.integer):
            act = act.astype(np.int64)
        return act


class AccurateKernel(ProductKernel):
    """Compiled exact ``act @ weights`` product sums."""

    def __init__(self, weight_codes: np.ndarray):
        w = _as_int64_weights(weight_codes)
        super().__init__(*w.shape)
        self._w_op = _WeightOperand(w)

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        return self._w_op.matmul(act)


class PerforatedKernel(ProductKernel):
    """Compiled perforated product sums, optionally CV-corrected.

    ``m = 0`` degenerates to the accurate array: the products equal
    :func:`repro.core.approx_conv.accurate_product_sums` and the control
    variate correction is exactly zero (``x = A mod 1 = 0``).
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        m: int,
        control_variate: ControlVariate | None = None,
    ):
        if not 0 <= int(m) < 8:
            raise ValueError(f"m must be within [0, 7], got {m}")
        w = _as_int64_weights(weight_codes)
        super().__init__(*w.shape)
        if control_variate is not None and control_variate.n_filters != self.filters:
            raise ValueError(
                f"control variate has {control_variate.n_filters} filters, "
                f"weights have {self.filters}"
            )
        self.m = int(m)
        self._mask = (1 << self.m) - 1
        self._w_op = _WeightOperand(w)
        self.control_variate = control_variate

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        # The mask fits any 8-bit operand dtype, so these ops stay in the
        # input dtype (uint8 in the executor) — no int64 round trip.
        x = act & self._mask
        sums = self._w_op.matmul(act - x)
        cv = self.control_variate
        if cv is None:
            return sums
        correction = cv.correction(x.sum(axis=1, dtype=np.int64))
        if cv.quantized:
            return sums + correction.astype(np.int64)
        return sums.astype(np.float64) + correction


class LUTKernel(ProductKernel):
    """Compiled product sums for an arbitrary 256x256 multiplier LUT.

    The table is decomposed as ``lut[w, a] = w * a - err[w, a]`` (see the
    module docstring); an exact multiplier therefore compiles down to the
    plain matmul with no error term at all.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        lut: np.ndarray,
        max_error_matrix_bytes: int = DEFAULT_MAX_ERROR_MATRIX_BYTES,
    ):
        lut = np.asarray(lut, dtype=np.int64)
        if lut.shape != (OPERAND_LEVELS, OPERAND_LEVELS):
            raise ValueError(f"lut must have shape (256, 256), got {lut.shape}")
        w = _as_int64_weights(weight_codes)
        if w.size and (w.min() < 0 or w.max() >= OPERAND_LEVELS):
            raise ValueError(f"weight codes out of range [0, {OPERAND_LEVELS - 1}]")
        super().__init__(*w.shape)
        self._w_op = _WeightOperand(w)
        levels = np.arange(OPERAND_LEVELS, dtype=np.int64)
        err_table = levels[:, None] * levels[None, :] - lut
        # _err_table/_w are only needed by the low-memory per-batch fallback;
        # on the exact and fully-compiled paths they are dropped below.
        self._err_table: np.ndarray | None = None
        self._w: np.ndarray | None = None
        self._error_matrix: np.ndarray | None = None
        self._tap_offsets: np.ndarray | None = None
        self._exact = not err_table.any()
        if self._exact:
            return
        matrix_bytes = self.taps * OPERAND_LEVELS * self.filters * 8
        if matrix_bytes > max_error_matrix_bytes:
            # Low-memory mode: per-tap gather against the raw table.
            self._err_table = err_table
            self._w = w
            return
        # E[j * 256 + a, f] = err[w[j, f], a], built in tap chunks to bound
        # the transient (taps, filters, 256) intermediate.
        matrix = np.empty((self.taps * OPERAND_LEVELS, self.filters), dtype=np.int64)
        view = matrix.reshape(self.taps, OPERAND_LEVELS, self.filters)
        chunk = max(1, (1 << 24) // max(1, OPERAND_LEVELS * self.filters * 8))
        for start in range(0, self.taps, chunk):
            stop = min(start + chunk, self.taps)
            view[start:stop] = err_table[w[start:stop]].transpose(0, 2, 1)
        self._error_matrix = matrix
        self._tap_offsets = np.arange(self.taps, dtype=np.int64) * OPERAND_LEVELS
        self._ones = np.empty(0, dtype=np.int8)

    @property
    def is_exact(self) -> bool:
        """True when the LUT is the exact multiplier (no error term compiled)."""
        return self._exact

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        if act.dtype != np.uint8 and act.size and (
            act.min() < 0 or act.max() >= OPERAND_LEVELS
        ):
            raise ValueError(f"activation codes out of range [0, {OPERAND_LEVELS - 1}]")
        sums = self._w_op.matmul(act)
        if self._exact:
            return sums
        if self._error_matrix is not None:
            return sums - self._error_sums_compiled(act)
        return sums - self._error_sums_lowmem(act)

    # ------------------------------------------------------------------
    def _error_sums_compiled(self, act: np.ndarray) -> np.ndarray:
        patches = act.shape[0]
        indices = (act + self._tap_offsets[None, :]).ravel()
        if _sparse is not None:
            # int8 ones: 8x smaller than int64 for a patches*taps-long array
            # that is pure structure; scipy promotes the product back to the
            # error matrix's int64.
            if self._ones.shape[0] < indices.shape[0]:
                self._ones = np.ones(indices.shape[0], dtype=np.int8)
            indptr = np.arange(patches + 1, dtype=np.int64) * self.taps
            onehot = _sparse.csr_matrix(
                (self._ones[: indices.shape[0]], indices, indptr),
                shape=(patches, self.taps * OPERAND_LEVELS),
            )
            return np.asarray(onehot @ self._error_matrix)
        view = self._error_matrix.reshape(self.taps, OPERAND_LEVELS, self.filters)
        err = np.zeros((patches, self.filters), dtype=np.int64)
        for j in range(self.taps):
            err += view[j][act[:, j]]
        return err

    def _error_sums_lowmem(self, act: np.ndarray) -> np.ndarray:
        err = np.zeros((act.shape[0], self.filters), dtype=np.int64)
        for j in range(self.taps):
            err += self._err_table[self._w[j][None, :], act[:, j][:, None]]
        return err


class ChunkedKernel(ProductKernel):
    """Evaluate a wrapped kernel in bounded patch chunks.

    Rows (patches) are computed independently by every kernel, so splitting
    the batch along the patch axis is bit-exact while capping the transient
    memory of the wrapped kernel (one-hot products, correction terms) at the
    chunk size.  Used by the low-memory engine backend.
    """

    def __init__(self, base: ProductKernel, chunk_patches: int):
        if chunk_patches < 1:
            raise ValueError(f"chunk_patches must be positive, got {chunk_patches}")
        super().__init__(base.taps, base.filters)
        self.base = base
        self.chunk_patches = int(chunk_patches)

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = np.asarray(act_codes)
        patches = act.shape[0]
        if patches <= self.chunk_patches:
            return self.base(act_codes)
        parts = [
            self.base(act[start : start + self.chunk_patches])
            for start in range(0, patches, self.chunk_patches)
        ]
        return np.concatenate(parts, axis=0)


class CallbackKernel(ProductKernel):
    """Fallback kernel wrapping an uncompiled ``ProductModel.product_sums``.

    Used by product models that do not provide a specialized compiled form;
    the weight codes and control variate are still bound once at compile
    time, so callers need no per-batch layer state.
    """

    def __init__(self, product_model, weight_codes: np.ndarray, control_variate):
        w = np.asarray(weight_codes)
        if w.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D (taps, filters), got {w.shape}")
        super().__init__(*w.shape)
        self._product_model = product_model
        self._weight_codes = weight_codes
        self._control_variate = control_variate

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        return self._product_model.product_sums(
            act_codes, self._weight_codes, self._control_variate
        )


__all__ = [
    "DEFAULT_MAX_ERROR_MATRIX_BYTES",
    "KernelOptions",
    "ProductKernel",
    "AccurateKernel",
    "PerforatedKernel",
    "LUTKernel",
    "ChunkedKernel",
    "CallbackKernel",
    "exact_int_matmul",
]
