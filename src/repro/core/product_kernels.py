"""Compiled per-layer product kernels for the approximate executor.

The legacy product-sum functions in :mod:`repro.core.approx_conv` re-derive
all per-layer state (int64 weight copies, LUT gathers, control constants) on
every batch.  A :class:`ProductKernel` is the compiled counterpart: it is
built **once** per (layer, execution plan) by ``ProductModel.compile`` and
then evaluated on every activation batch, so all weight-dependent work is
hoisted out of the hot loop.

The LUT kernel is the important one.  For an arbitrary 256x256 multiplier
table the legacy path materializes a ``(patches, taps, filters)`` gather per
chunk.  The compiled kernel instead decomposes the table as

    lut[w, a] = w * a - err[w, a]

so the exact part ``sum_j w_j a_j`` is a single matrix product, and the error
part becomes a matrix product of the *one-hot encoded* activations against a
precompiled ``(taps * 256, filters)`` error matrix::

    err_sums[p, f] = sum_j err[w[j, f], act[p, j]]
                   = onehot(act)[p, :] @ E[:, f],
    E[j * 256 + a, f] = err[w[j, f], a]

The one-hot matrix has exactly ``taps`` ones per row, so the product is
evaluated through a scipy CSR matrix when scipy is available, or through a
per-tap gather loop otherwise — either way the 3-D gather is gone.

All integer matrix products are executed in float64 BLAS and cast back: every
partial product and every partial sum is a non-negative integer bounded by
``taps * 255 * 255 << 2^53``, so the float64 accumulation is exact and the
results are bit-identical to the int64 reference paths (enforced by the
``pytest -m engine`` parity suite).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.control_variate import ControlVariate
from repro.multipliers.base import OPERAND_LEVELS

try:  # pragma: no cover - exercised indirectly via LUTKernel paths
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is available in CI
    _sparse = None


#: Largest precompiled LUT error matrix, in bytes, before :class:`LUTKernel`
#: falls back to the low-memory per-tap evaluation.
DEFAULT_MAX_ERROR_MATRIX_BYTES = 1 << 28


@dataclass(frozen=True)
class KernelOptions:
    """Backend-tunable knobs honored by ``ProductModel.compile``.

    An :class:`repro.core.backends.EngineBackend` passes these to the
    product models it compiles; models honor the knobs that apply to them
    (only the LUT kernel has a memory/speed trade-off today) and ignore the
    rest, so options never change results — only footprint and speed.
    """

    #: Cap on the precompiled LUT error matrix; layers whose matrix would
    #: exceed it use the streaming per-tap evaluation instead.
    max_error_matrix_bytes: int = DEFAULT_MAX_ERROR_MATRIX_BYTES


def _as_int64_weights(weight_codes: np.ndarray) -> np.ndarray:
    w = np.asarray(weight_codes)
    if w.ndim != 2:
        raise ValueError(f"weight_codes must be 2-D (taps, filters), got {w.shape}")
    return w.astype(np.int64)


def exact_int_matmul(lhs: np.ndarray, rhs_f64: np.ndarray) -> np.ndarray:
    """``lhs @ rhs`` for non-negative integer operands, via float64 BLAS.

    Exact because every partial sum is an integer below 2^53; BLAS is an
    order of magnitude faster than numpy's native int64 matmul.
    """
    return (lhs.astype(np.float64) @ rhs_f64).astype(np.int64)


#: Largest per-(patch, filter) product sum for which float32 accumulation is
#: still exact (integers below 2^24).
_F32_EXACT_BOUND = 1 << 24


class _WeightOperand:
    """A weight matrix prepared for exact floating-point BLAS products.

    Stores the float64 copy of the ``(taps, filters)`` weights and, when
    every possible product sum of 8-bit activations against them fits below
    2^24 (``255 * max_f sum_j w[j, f] < 2^24``), a float32 copy as well —
    float32 sgemm is about twice as fast as dgemm and still bit-exact in
    that regime, because every partial sum is a non-negative integer below
    the float32 exact-integer limit.
    """

    def __init__(self, w: np.ndarray):
        self._f64 = w.astype(np.float64)
        w64 = w.astype(np.int64)
        # The bound argument requires genuine 8-bit codes: signed or
        # out-of-range weights could overflow float32 partial products even
        # with a small column sum, so they disqualify the f32 copy entirely.
        is_8bit = w64.size == 0 or (w64.min() >= 0 and w64.max() < OPERAND_LEVELS)
        max_col_sum = int(w64.sum(axis=0).max()) if w64.size else 0
        self._f32 = (
            w.astype(np.float32)
            if is_8bit and 255 * max_col_sum < _F32_EXACT_BOUND
            else None
        )

    def matmul(self, lhs: np.ndarray) -> np.ndarray:
        """Exact ``lhs @ w`` as int64 for integer-valued ``lhs``.

        The float32 path is only taken for uint8 operands — the dtype
        guarantees the <= 255 bound the exactness argument needs; any other
        integer input goes through float64, which is exact for every partial
        sum below 2^53.
        """
        if self._f32 is not None and lhs.dtype == np.uint8:
            return (lhs.astype(np.float32) @ self._f32).astype(np.int64)
        return exact_int_matmul(lhs, self._f64)


class ProductKernel(abc.ABC):
    """A product model compiled against one layer's quantized weights.

    Calling the kernel with ``(patches, taps)`` activation codes returns the
    ``(patches, filters)`` raw product sums, exactly as the corresponding
    legacy function in :mod:`repro.core.approx_conv` would.
    """

    def __init__(self, taps: int, filters: int):
        self.taps = int(taps)
        self.filters = int(filters)

    @abc.abstractmethod
    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        """Raw ``sum_j product(wq_j, aq_j)`` of shape ``(patches, filters)``."""

    def __call__(self, act_codes: np.ndarray) -> np.ndarray:
        return self.product_sums(act_codes)

    def _check_acts(self, act_codes: np.ndarray) -> np.ndarray:
        """Validate shape; keep integer dtypes as-is — uint8 stays uint8, so
        the executor's persistent buffers reach BLAS without an int64 detour.
        Non-integer inputs are truncated to int64, matching the legacy
        ``_check_codes`` behaviour of :mod:`repro.core.approx_conv`."""
        act = np.asarray(act_codes)
        if act.ndim != 2 or act.shape[1] != self.taps:
            raise ValueError(
                f"activations must have shape (patches, {self.taps}), got {act.shape}"
            )
        if not np.issubdtype(act.dtype, np.integer):
            act = act.astype(np.int64)
        return act


class AccurateKernel(ProductKernel):
    """Compiled exact ``act @ weights`` product sums."""

    def __init__(self, weight_codes: np.ndarray):
        w = _as_int64_weights(weight_codes)
        super().__init__(*w.shape)
        self._w_op = _WeightOperand(w)

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        return self._w_op.matmul(act)


class PerforatedKernel(ProductKernel):
    """Compiled perforated product sums, optionally CV-corrected.

    ``m = 0`` degenerates to the accurate array: the products equal
    :func:`repro.core.approx_conv.accurate_product_sums` and the control
    variate correction is exactly zero (``x = A mod 1 = 0``).
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        m: int,
        control_variate: ControlVariate | None = None,
    ):
        if not 0 <= int(m) < 8:
            raise ValueError(f"m must be within [0, 7], got {m}")
        w = _as_int64_weights(weight_codes)
        super().__init__(*w.shape)
        if control_variate is not None and control_variate.n_filters != self.filters:
            raise ValueError(
                f"control variate has {control_variate.n_filters} filters, "
                f"weights have {self.filters}"
            )
        self.m = int(m)
        self._mask = (1 << self.m) - 1
        self._w_op = _WeightOperand(w)
        self.control_variate = control_variate

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        # The mask fits any 8-bit operand dtype, so these ops stay in the
        # input dtype (uint8 in the executor) — no int64 round trip.
        x = act & self._mask
        sums = self._w_op.matmul(act - x)
        cv = self.control_variate
        if cv is None:
            return sums
        correction = cv.correction(x.sum(axis=1, dtype=np.int64))
        if cv.quantized:
            return sums + correction.astype(np.int64)
        return sums.astype(np.float64) + correction


class LUTKernel(ProductKernel):
    """Compiled product sums for an arbitrary 256x256 multiplier LUT.

    The table is decomposed as ``lut[w, a] = w * a - err[w, a]`` (see the
    module docstring); an exact multiplier therefore compiles down to the
    plain matmul with no error term at all.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        lut: np.ndarray,
        max_error_matrix_bytes: int = DEFAULT_MAX_ERROR_MATRIX_BYTES,
    ):
        lut = np.asarray(lut, dtype=np.int64)
        if lut.shape != (OPERAND_LEVELS, OPERAND_LEVELS):
            raise ValueError(f"lut must have shape (256, 256), got {lut.shape}")
        w = _as_int64_weights(weight_codes)
        if w.size and (w.min() < 0 or w.max() >= OPERAND_LEVELS):
            raise ValueError(f"weight codes out of range [0, {OPERAND_LEVELS - 1}]")
        super().__init__(*w.shape)
        self._w_op = _WeightOperand(w)
        levels = np.arange(OPERAND_LEVELS, dtype=np.int64)
        err_table = levels[:, None] * levels[None, :] - lut
        # _err_table/_w are only needed by the low-memory per-batch fallback;
        # on the exact and fully-compiled paths they are dropped below.
        self._err_table: np.ndarray | None = None
        self._w: np.ndarray | None = None
        self._error_matrix: np.ndarray | None = None
        self._tap_offsets: np.ndarray | None = None
        self._exact = not err_table.any()
        if self._exact:
            return
        matrix_bytes = self.taps * OPERAND_LEVELS * self.filters * 8
        if matrix_bytes > max_error_matrix_bytes:
            # Low-memory mode: per-tap gather against the raw table.
            self._err_table = err_table
            self._w = w
            return
        # E[j * 256 + a, f] = err[w[j, f], a], built in tap chunks to bound
        # the transient (taps, filters, 256) intermediate.
        matrix = np.empty((self.taps * OPERAND_LEVELS, self.filters), dtype=np.int64)
        view = matrix.reshape(self.taps, OPERAND_LEVELS, self.filters)
        chunk = max(1, (1 << 24) // max(1, OPERAND_LEVELS * self.filters * 8))
        for start in range(0, self.taps, chunk):
            stop = min(start + chunk, self.taps)
            view[start:stop] = err_table[w[start:stop]].transpose(0, 2, 1)
        self._error_matrix = matrix
        self._tap_offsets = np.arange(self.taps, dtype=np.int64) * OPERAND_LEVELS
        self._ones = np.empty(0, dtype=np.int8)

    @property
    def is_exact(self) -> bool:
        """True when the LUT is the exact multiplier (no error term compiled)."""
        return self._exact

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        if act.dtype != np.uint8 and act.size and (
            act.min() < 0 or act.max() >= OPERAND_LEVELS
        ):
            raise ValueError(f"activation codes out of range [0, {OPERAND_LEVELS - 1}]")
        sums = self._w_op.matmul(act)
        if self._exact:
            return sums
        if self._error_matrix is not None:
            return sums - self._error_sums_compiled(act)
        return sums - self._error_sums_lowmem(act)

    # ------------------------------------------------------------------
    def _error_sums_compiled(self, act: np.ndarray) -> np.ndarray:
        patches = act.shape[0]
        indices = (act + self._tap_offsets[None, :]).ravel()
        if _sparse is not None:
            # int8 ones: 8x smaller than int64 for a patches*taps-long array
            # that is pure structure; scipy promotes the product back to the
            # error matrix's int64.
            if self._ones.shape[0] < indices.shape[0]:
                self._ones = np.ones(indices.shape[0], dtype=np.int8)
            indptr = np.arange(patches + 1, dtype=np.int64) * self.taps
            onehot = _sparse.csr_matrix(
                (self._ones[: indices.shape[0]], indices, indptr),
                shape=(patches, self.taps * OPERAND_LEVELS),
            )
            return np.asarray(onehot @ self._error_matrix)
        view = self._error_matrix.reshape(self.taps, OPERAND_LEVELS, self.filters)
        err = np.zeros((patches, self.filters), dtype=np.int64)
        for j in range(self.taps):
            err += view[j][act[:, j]]
        return err

    def _error_sums_lowmem(self, act: np.ndarray) -> np.ndarray:
        err = np.zeros((act.shape[0], self.filters), dtype=np.int64)
        for j in range(self.taps):
            err += self._err_table[self._w[j][None, :], act[:, j][:, None]]
        return err


class ChunkedKernel(ProductKernel):
    """Evaluate a wrapped kernel in bounded patch chunks.

    Rows (patches) are computed independently by every kernel, so splitting
    the batch along the patch axis is bit-exact while capping the transient
    memory of the wrapped kernel (one-hot products, correction terms) at the
    chunk size.  Used by the low-memory engine backend.
    """

    def __init__(self, base: ProductKernel, chunk_patches: int):
        if chunk_patches < 1:
            raise ValueError(f"chunk_patches must be positive, got {chunk_patches}")
        super().__init__(base.taps, base.filters)
        self.base = base
        self.chunk_patches = int(chunk_patches)

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = np.asarray(act_codes)
        patches = act.shape[0]
        if patches <= self.chunk_patches:
            return self.base(act_codes)
        parts = [
            self.base(act[start : start + self.chunk_patches])
            for start in range(0, patches, self.chunk_patches)
        ]
        return np.concatenate(parts, axis=0)


class CallbackKernel(ProductKernel):
    """Fallback kernel wrapping an uncompiled ``ProductModel.product_sums``.

    Used by product models that do not provide a specialized compiled form;
    the weight codes and control variate are still bound once at compile
    time, so callers need no per-batch layer state.
    """

    def __init__(self, product_model, weight_codes: np.ndarray, control_variate):
        w = np.asarray(weight_codes)
        if w.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D (taps, filters), got {w.shape}")
        super().__init__(*w.shape)
        self._product_model = product_model
        self._weight_codes = weight_codes
        self._control_variate = control_variate

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        return self._product_model.product_sums(
            act_codes, self._weight_codes, self._control_variate
        )


class MultiPlanKernel:
    """P per-plan kernels of one layer, fused into one batched launch.

    The sweep's outer plan loop evaluates the same layer under P product
    models, one :class:`ProductKernel` launch each.  This kernel collapses
    those P launches into one: the per-plan ``exact - err`` decompositions
    are *stacked along the patch axis*, so the dense parts become a single
    ``(P*N, taps)``-shaped BLAS product against the shared weight operand
    and the LUT error parts become one block-stacked one-hot sparse product
    (block p's one-hot columns are offset into its own copy of the error
    matrix).  Two input conventions are supported:

    * ``shared=False`` — ``act_codes`` is the ``(P*N, taps)`` stack of P
      per-plan activation blocks (plans already diverged upstream);
    * ``shared=True`` — ``act_codes`` is one ``(N, taps)`` block shared by
      every plan (the divergence layer itself).  The shared accurate term
      is computed **once** and broadcast, and perforated blocks are deduped
      by mask so e.g. the ±V variants of one ``m`` share a single masked
      matmul.

    Output is always the ``(P*N, filters)`` product sums in float64 — the
    dtype :meth:`QuantizedLinearOp.output_real` converts to anyway — with
    block p bit-identical (as a value) to ``kernels[p](act_block_p)``.
    Kernel types the fusion does not understand (chunked, callback,
    streaming low-memory LUTs) are evaluated per block through their own
    kernel, so fusion never changes results, only launch count.

    All kernels must be compiled against the same weight codes; the shared
    weight operand is borrowed from the first fusable kernel.
    """

    def __init__(
        self,
        kernels,
        max_error_matrix_bytes: int = DEFAULT_MAX_ERROR_MATRIX_BYTES,
    ):
        kernels = list(kernels)
        if not kernels:
            raise ValueError("MultiPlanKernel needs at least one kernel")
        self.taps = kernels[0].taps
        self.filters = kernels[0].filters
        for kernel in kernels:
            if (kernel.taps, kernel.filters) != (self.taps, self.filters):
                raise ValueError(
                    "all fused kernels must share one layer shape; got "
                    f"({kernel.taps}, {kernel.filters}) vs ({self.taps}, {self.filters})"
                )
        self.kernels = kernels
        self._kinds: list[str] = []
        self._w_op: _WeightOperand | None = None
        for kernel in kernels:
            if isinstance(kernel, AccurateKernel):
                kind = "exact"
            elif isinstance(kernel, LUTKernel) and kernel.is_exact:
                kind = "exact"
            elif isinstance(kernel, LUTKernel) and kernel._error_matrix is not None:
                kind = "lut"
            elif isinstance(kernel, PerforatedKernel):
                kind = "perf"
            else:
                kind = "fallback"
            if kind != "fallback" and self._w_op is None:
                self._w_op = kernel._w_op
            self._kinds.append(kind)
        self._lut_blocks = [i for i, k in enumerate(self._kinds) if k == "lut"]
        # One stacked error matrix over the *distinct* per-block matrices
        # (blocks may share a kernel instance, e.g. suffix layers where only
        # the prefix diverged); block p's one-hot columns land at
        # slot(p) * taps * 256.  Falls back to per-block products when the
        # stack would exceed the byte cap.
        self._stacked_error: np.ndarray | None = None
        self._block_slots: dict[int, int] = {}
        if self._lut_blocks:
            distinct: list[np.ndarray] = []
            ids: dict[int, int] = {}
            for i in self._lut_blocks:
                matrix = self.kernels[i]._error_matrix
                slot = ids.setdefault(id(matrix), len(distinct))
                if slot == len(distinct):
                    distinct.append(matrix)
                self._block_slots[i] = slot
            total_bytes = sum(m.nbytes for m in distinct)
            if total_bytes <= max_error_matrix_bytes and _sparse is not None:
                self._stacked_error = (
                    distinct[0] if len(distinct) == 1 else np.vstack(distinct)
                )
        self._tap_offsets = np.arange(self.taps, dtype=np.int64) * OPERAND_LEVELS
        self._ones = np.empty(0, dtype=np.int8)

    @property
    def plans(self) -> int:
        """Number of fused per-plan blocks."""
        return len(self.kernels)

    def product_sums_multi(
        self, act_codes: np.ndarray, shared: bool = False
    ) -> np.ndarray:
        """Stacked ``(plans * N, filters)`` float64 product sums.

        ``act_codes`` is ``(N, taps)`` when ``shared`` (one activation block
        evaluated under every plan) or ``(plans * N, taps)`` otherwise
        (block p = rows ``[p*N, (p+1)*N)``).
        """
        act = np.asarray(act_codes)
        if act.ndim != 2 or act.shape[1] != self.taps:
            raise ValueError(
                f"activations must have shape (patches, {self.taps}), got {act.shape}"
            )
        if not np.issubdtype(act.dtype, np.integer):
            act = act.astype(np.int64)
        if shared:
            return self._sums_shared(act)
        if act.shape[0] % self.plans:
            raise ValueError(
                f"stacked activations ({act.shape[0]} rows) do not divide "
                f"into {self.plans} equal plan blocks"
            )
        return self._sums_stacked(act)

    def __call__(self, act_codes: np.ndarray, shared: bool = False) -> np.ndarray:
        return self.product_sums_multi(act_codes, shared=shared)

    # ------------------------------------------------------------------
    def _sums_stacked(self, act: np.ndarray) -> np.ndarray:
        n = act.shape[0] // self.plans
        out = np.empty((self.plans * n, self.filters), dtype=np.float64)
        blocks = [act[p * n : (p + 1) * n] for p in range(self.plans)]
        dense_blocks = [p for p, k in enumerate(self._kinds) if k != "fallback"]
        if dense_blocks:
            # One (D*N, taps) dense product: perforated blocks contribute
            # their masked activations, exact/LUT blocks contribute as-is.
            # The stack keeps uint8 inputs uint8, so the weight operand's
            # float32 fast path applies exactly as it does per plan.
            needs_copy = any(
                self._kinds[p] == "perf" and self.kernels[p]._mask for p in dense_blocks
            )
            masked_sums: dict[int, np.ndarray] = {}
            if len(dense_blocks) == self.plans and not needs_copy:
                lhs = act
            else:
                lhs = np.empty((len(dense_blocks) * n, self.taps), dtype=act.dtype)
                for row, p in enumerate(dense_blocks):
                    dst = lhs[row * n : (row + 1) * n]
                    if self._kinds[p] == "perf" and self.kernels[p]._mask:
                        block = blocks[p]
                        x = block & self.kernels[p]._mask
                        if self.kernels[p].control_variate is not None:
                            masked_sums[p] = x.sum(axis=1, dtype=np.int64)
                        np.subtract(block, x, out=dst)
                    else:
                        dst[...] = blocks[p]
            dense = self._w_op.matmul(lhs)
            for row, p in enumerate(dense_blocks):
                sums = dense[row * n : (row + 1) * n]
                self._finish_block(
                    out, p, n, blocks[p], sums, masked_sums=masked_sums.get(p)
                )
        if self._lut_blocks:
            self._subtract_errors(out, n, blocks)
        for p, kind in enumerate(self._kinds):
            if kind == "fallback":
                out[p * n : (p + 1) * n] = self.kernels[p](blocks[p])
        return out

    def _sums_shared(self, act: np.ndarray) -> np.ndarray:
        n = act.shape[0]
        out = np.empty((self.plans * n, self.filters), dtype=np.float64)
        # Exact sums feed every accurate/LUT block and every m = 0
        # perforated block — computed once, broadcast into each.
        exact: np.ndarray | None = None
        masked: dict[int, np.ndarray] = {}
        masked_x_sums: dict[int, np.ndarray] = {}
        distinct_masks = sorted(
            {
                self.kernels[p]._mask
                for p, k in enumerate(self._kinds)
                if k == "perf" and self.kernels[p]._mask
            }
        )
        if distinct_masks:
            # One (D*N, taps) product over the distinct masked variants.
            lhs = np.empty((len(distinct_masks) * n, self.taps), dtype=act.dtype)
            for row, mask in enumerate(distinct_masks):
                x = act & mask
                masked_x_sums[mask] = x.sum(axis=1, dtype=np.int64)
                np.subtract(act, x, out=lhs[row * n : (row + 1) * n])
            dense = self._w_op.matmul(lhs)
            masked = {
                mask: dense[row * n : (row + 1) * n]
                for row, mask in enumerate(distinct_masks)
            }
        for p, kind in enumerate(self._kinds):
            if kind == "fallback":
                out[p * n : (p + 1) * n] = self.kernels[p](act)
                continue
            if kind == "perf" and self.kernels[p]._mask:
                sums = masked[self.kernels[p]._mask]
            else:
                if exact is None:
                    exact = self._w_op.matmul(act)
                sums = exact
            self._finish_block(
                out, p, n, act, sums,
                masked_sums=masked_x_sums.get(self.kernels[p]._mask)
                if kind == "perf"
                else None,
            )
        if self._lut_blocks:
            self._subtract_errors(out, n, [act] * self.plans)
        return out

    def _finish_block(
        self,
        out: np.ndarray,
        p: int,
        n: int,
        act_block: np.ndarray,
        sums: np.ndarray,
        masked_sums: np.ndarray | None = None,
    ) -> None:
        """Write block ``p``'s dense sums (+ CV correction) into ``out``.

        ``masked_sums`` optionally carries the per-row sums of
        ``act_block & mask`` already computed while assembling the dense
        product, saving the second full pass over the activations.  LUT
        error terms are subtracted afterwards by ``_subtract_errors``.
        """
        dst = out[p * n : (p + 1) * n]
        kernel = self.kernels[p]
        if self._kinds[p] == "perf" and kernel.control_variate is not None:
            if masked_sums is None:
                x = act_block & kernel._mask
                masked_sums = x.sum(axis=1, dtype=np.int64)
            correction = kernel.control_variate.correction(masked_sums)
            if kernel.control_variate.quantized:
                correction = correction.astype(np.int64)
            np.add(sums, correction, out=dst, casting="unsafe")
        else:
            dst[...] = sums

    def _subtract_errors(self, out: np.ndarray, n: int, blocks) -> None:
        """Subtract every LUT block's error sums, fused when possible."""
        if self._stacked_error is None:
            for p in self._lut_blocks:
                kernel = self.kernels[p]
                out[p * n : (p + 1) * n] -= kernel._error_sums_compiled(blocks[p])
            return
        # Block-stacked one-hot product: row r of LUT block p selects
        # columns act[r, j] + j*256 + slot(p)*taps*256 of the stacked error
        # matrix — one CSR matmul for all LUT blocks at once.
        rows = len(self._lut_blocks) * n
        width = self.taps * OPERAND_LEVELS
        indices = np.empty((len(self._lut_blocks), n, self.taps), dtype=np.int64)
        for row, p in enumerate(self._lut_blocks):
            offset = self._block_slots[p] * width
            np.add(blocks[p], self._tap_offsets[None, :] + offset, out=indices[row])
        flat = indices.reshape(rows * self.taps)
        if self._ones.shape[0] < flat.shape[0]:
            self._ones = np.ones(flat.shape[0], dtype=np.int8)
        indptr = np.arange(rows + 1, dtype=np.int64) * self.taps
        onehot = _sparse.csr_matrix(
            (self._ones[: flat.shape[0]], flat, indptr),
            shape=(rows, self._stacked_error.shape[0]),
        )
        errors = np.asarray(onehot @ self._stacked_error)
        for row, p in enumerate(self._lut_blocks):
            out[p * n : (p + 1) * n] -= errors[row * n : (row + 1) * n]


__all__ = [
    "DEFAULT_MAX_ERROR_MATRIX_BYTES",
    "KernelOptions",
    "ProductKernel",
    "AccurateKernel",
    "PerforatedKernel",
    "LUTKernel",
    "ChunkedKernel",
    "CallbackKernel",
    "MultiPlanKernel",
    "exact_int_matmul",
]
