"""Closed-form error analysis of the approximate convolution (Section III).

For a convolution ``G = B + sum_{j=1}^k W_j A_j`` computed with perforated
multipliers (perforation parameter ``m``), the per-product error is
``eps_j = W_j x_j`` with ``x_j = A_j mod 2^m``.  Treating the ``x_j`` as
independent and uniform on ``[0, 2^m - 1]``:

* without any correction (eq. (3)):
    ``E[eps_G]   = E[x] * sum_j W_j``
    ``Var(eps_G) = Var(x) * sum_j W_j^2``
* with the control variate ``V = C sum_j x_j`` (eqs. (9), (10), (12)):
    ``E[eps_G*]   = E[x] * (sum_j W_j - k C)``  (zero when ``C = E[W_j]``)
    ``Var(eps_G*) = Var(x) * sum_j (W_j - C)^2``

with ``E[x] = (2^m - 1)/2`` and ``Var(x) = (2^m - 1)(2^m + 1)/12``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.control_variate import optimal_control_constant


def _x_moments(m: int) -> tuple[float, float]:
    """Mean and variance of ``x`` uniform on ``[0, 2^m - 1]``."""
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    levels = 1 << m
    mean = (levels - 1) / 2.0
    variance = (levels - 1) * (levels + 1) / 12.0
    return mean, variance


@dataclass(frozen=True)
class ConvolutionErrorStats:
    """Mean and variance of the error of one approximate convolution output."""

    mean: float
    variance: float

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


def convolution_error_stats(
    weights: np.ndarray,
    m: int,
    control_constant: float | None = None,
    use_control_variate: bool = True,
) -> ConvolutionErrorStats:
    """Closed-form error statistics of the approximate convolution.

    Parameters
    ----------
    weights:
        The filter weights ``W_j`` (quantized codes), any shape.
    m:
        Perforation parameter of the multiplier.
    control_constant:
        The constant ``C``.  Defaults to the variance-optimal ``E[W_j]``
        when the control variate is used.
    use_control_variate:
        ``False`` reproduces eq. (3) (no correction); ``True`` reproduces
        eqs. (10) and (12).
    """
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    x_mean, x_var = _x_moments(m)
    if not use_control_variate:
        mean = x_mean * float(w.sum())
        variance = x_var * float((w**2).sum())
        return ConvolutionErrorStats(mean=mean, variance=variance)
    if control_constant is None:
        control_constant = optimal_control_constant(w)
    c = float(control_constant)
    mean = x_mean * float(w.sum() - w.size * c)
    variance = x_var * float(((w - c) ** 2).sum())
    return ConvolutionErrorStats(mean=mean, variance=variance)


def variance_reduction_factor(weights: np.ndarray, m: int) -> float:
    """Ratio ``Var(eps_G) / Var(eps_G*)`` achieved by the control variate.

    Larger is better.  The factor equals ``sum W_j^2 / sum (W_j - E[W])^2``,
    independent of ``m``, and grows as the weight distribution concentrates
    around its mean (the effect illustrated by Fig. 1 of the paper).
    Returns ``inf`` when the weights are all identical (perfect correction).
    """
    without = convolution_error_stats(weights, m, use_control_variate=False)
    with_cv = convolution_error_stats(weights, m, use_control_variate=True)
    if with_cv.variance == 0.0:
        return float("inf")
    return without.variance / with_cv.variance


def simulate_convolution_error(
    weights: np.ndarray,
    m: int,
    n_trials: int = 10_000,
    use_control_variate: bool = True,
    control_constant: float | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo samples of the convolution error (validates the formulas).

    Each trial draws activations uniformly over the uint8 range, computes the
    exact and perforated accumulations and (optionally) the control-variate
    correction, and returns the resulting error ``G - G*``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    w = np.asarray(weights, dtype=np.int64).reshape(-1)
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    activations = rng.integers(0, 256, size=(n_trials, w.size), dtype=np.int64)
    x = activations & ((1 << m) - 1)
    exact = activations @ w
    approx = (activations - x) @ w
    if use_control_variate:
        if control_constant is None:
            control_constant = optimal_control_constant(w)
        approx = approx + float(control_constant) * x.sum(axis=1)
    return exact.astype(np.float64) - approx.astype(np.float64)
