"""Deterministic named random streams derived from one root seed.

Reproducible experiments need every stochastic component — synthetic data
generation, evaluation subsampling, genetic search — to draw from streams
that are (a) derived from *one* user-facing seed and (b) independent of the
order in which components happen to ask for randomness.  :class:`SeedBank`
provides that: each named stream's seed is a stable digest of
``(root seed, name)``, so adding or reordering consumers never perturbs the
other streams, and the same ``--seed`` always reproduces the same campaign.

This replaces ad-hoc per-module ``np.random.default_rng(<constant>)``
seeding on the CLI paths: the CLI builds one bank from ``--seed`` and hands
each subsystem its named generator.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SeedBank:
    """Named deterministic children of a single root seed.

    >>> bank = SeedBank(42)
    >>> bank.generator("nsga2").integers(10)  # stable across runs
    """

    def __init__(self, seed: int | None = None):
        self.root_seed = None if seed is None else int(seed)

    def seed_for(self, name: str) -> int:
        """Stable 32-bit seed of the stream called ``name``."""
        payload = f"{self.root_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:4], "big")

    def generator(self, name: str) -> np.random.Generator:
        """A fresh generator for the stream called ``name``.

        Each call returns a new generator at the stream's origin, so one
        consumer re-created twice (e.g. a resumed campaign) replays the
        same draws.
        """
        return np.random.default_rng(self.seed_for(name))

    def spawn(self, name: str) -> "SeedBank":
        """A child bank rooted at the named stream (hierarchical seeding)."""
        return SeedBank(self.seed_for(name))


__all__ = ["SeedBank"]
