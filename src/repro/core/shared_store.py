"""Generic shared-memory publication of named numpy arrays.

:class:`SharedArrayStore` is the one-producer / many-consumer channel behind
the multi-process sweep: a publisher process writes a set of named arrays
**once** into a single shared block — POSIX ``multiprocessing.shared_memory``
when available, a memory-mapped temp file otherwise — and consumer processes
attach **read-only views** into that block instead of receiving per-process
copies.  The store itself is cheap to pickle (it carries only the block name
and the per-array layout, never the bytes), so it can travel to workers as a
pool-initializer argument.

Two sweep-facing publishers build on it:

* :func:`repro.simulation.campaign.publish_trained_models` — trained model
  parameters (weights, biases, batch-norm statistics);
* :func:`repro.simulation.campaign.publish_datasets` — the evaluation /
  calibration image arrays, which dwarf the weights for small models.

Lifecycle
---------
``publish`` creates the block and copies the arrays in; consumers call
:meth:`get` (or unpickle objects whose persistent ids resolve through the
store); the publishing process calls :meth:`unlink` exactly once, after all
consumers are done.  Attachment is lazy and cached per process; views handed
out by :meth:`get` are frozen (``writeable = False``) because an accidental
in-place write would corrupt every sibling consumer.
"""

from __future__ import annotations

import gc
import os
import tempfile

import numpy as np

try:  # pragma: no cover - part of the stdlib since 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    _shared_memory = None

#: Byte alignment of each array inside the shared block (covers every dtype).
ARRAY_ALIGN = 64

#: Shared-memory handles whose mapping could not be closed because consumer
#: views still point into it.  Parking them here keeps the mapping alive for
#: those views (required for memory safety) and silences the BufferError the
#: handle's __del__ would otherwise raise at garbage-collection time.
_UNCLOSEABLE_HANDLES: list = []


class SharedArrayStore:
    """Named numpy arrays published once into one shared block.

    Create with :meth:`publish`; never construct directly in new code.  The
    instance is picklable — process-local handles (the mapping and any views
    into it) are dropped from the pickled state, and consumers re-attach
    lazily on first :meth:`get`.

    Attributes
    ----------
    spec:
        ``{key: (byte offset, shape, dtype string)}`` layout of the block.
    kind:
        ``"shm"`` for POSIX shared memory, ``"memmap"`` for the temp-file
        fallback.
    name:
        Shared-memory segment name or memmap file path.
    size:
        Total block size in bytes.
    """

    def __init__(self, spec: dict[str, tuple[int, tuple, str]], kind: str, name: str, size: int):
        self.spec = spec
        self.kind = kind  # "shm" | "memmap"
        self.name = name  # shm segment name / memmap file path
        self.size = size
        self._handle = None  # publisher-side SharedMemory keeping the mapping
        self._buf: np.ndarray | None = None

    # -- publication ------------------------------------------------------
    @classmethod
    def publish(
        cls,
        arrays: dict[str, np.ndarray],
        prefer_shared_memory: bool = True,
    ) -> "SharedArrayStore":
        """Copy ``arrays`` into a freshly created shared block.

        Keys become the store's lookup tokens.  Arrays are written in C
        order; non-contiguous inputs are copied once during publication.
        When POSIX shared memory cannot be created (or
        ``prefer_shared_memory`` is false) the block degrades to a
        memory-mapped file in the temp directory, which consumers map
        read-only.
        """
        entries = [(key, np.ascontiguousarray(array)) for key, array in arrays.items()]
        spec: dict[str, tuple[int, tuple, str]] = {}
        offset = 0
        for key, array in entries:
            spec[key] = (offset, tuple(array.shape), array.dtype.str)
            offset += -(-array.nbytes // ARRAY_ALIGN) * ARRAY_ALIGN
        total = max(offset, 1)

        kind, name, handle = "memmap", "", None
        if prefer_shared_memory and _shared_memory is not None:
            try:
                handle = _shared_memory.SharedMemory(create=True, size=total)
                kind, name = "shm", handle.name
            except OSError:  # pragma: no cover - /dev/shm unavailable
                handle = None
        if handle is None:
            fd, name = tempfile.mkstemp(prefix="repro-shared-arrays-", suffix=".bin")
            with os.fdopen(fd, "wb") as out:
                out.truncate(total)

        store = cls(spec, kind, name, total)
        store._handle = handle
        buf = store._attach_buf(writable=True)
        for key, array in entries:
            off, shape, _ = spec[key]
            buf[off : off + array.nbytes].view(array.dtype).reshape(shape)[...] = array
        if kind == "memmap":
            buf.flush()
            # Consumers (and the publisher's own get()) map read-only.
            store._buf = None
        return store

    def __getstate__(self):
        # Process-local handles never travel to workers (any start method).
        state = self.__dict__.copy()
        state["_handle"] = None
        state["_buf"] = None
        return state

    # -- attachment -------------------------------------------------------
    def _attach_buf(self, writable: bool = False) -> np.ndarray:
        if self._buf is None:
            if self.kind == "shm":
                # The publisher already holds the creating handle: reuse it
                # instead of opening a second mapping of the same segment
                # (which would orphan the creator handle to GC-time close).
                if self._handle is None:
                    self._handle = _shared_memory.SharedMemory(name=self.name)
                    # On Python < 3.13 merely *attaching* registers the
                    # segment with the process's resource tracker, whose
                    # exit-time cleanup would unlink a block the publisher
                    # still owns.  Consumers must not own cleanup: undo it.
                    try:
                        from multiprocessing import resource_tracker

                        resource_tracker.unregister(self._handle._name, "shared_memory")
                    except Exception:  # pragma: no cover - tracker internals
                        pass
                self._buf = np.frombuffer(self._handle.buf, dtype=np.uint8)
            else:
                mode = "r+" if writable else "r"
                self._buf = np.memmap(self.name, dtype=np.uint8, mode=mode)
        return self._buf

    def get(self, key: str) -> np.ndarray:
        """Read-only view of one published array (zero-copy)."""
        offset, shape, dtype_str = self.spec[key]
        dtype = np.dtype(dtype_str)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        buf = self._attach_buf()
        view = buf[offset : offset + nbytes].view(dtype).reshape(shape)
        # Consumers only read; an accidental in-place write would corrupt
        # every sibling process, so the shared views are frozen.
        view.flags.writeable = False
        return view

    def keys(self) -> list[str]:
        """All published array keys, in publication order."""
        return list(self.spec)

    def __contains__(self, key: str) -> bool:
        return key in self.spec

    def nbytes_shared(self) -> int:
        """Total payload bytes placed in the shared block (before alignment)."""
        return sum(
            int(np.prod(shape, dtype=np.int64)) * np.dtype(dt).itemsize
            for _, shape, dt in self.spec.values()
        )

    # -- teardown ---------------------------------------------------------
    def unlink(self) -> None:
        """Release the shared block (publisher side; idempotent)."""
        # Views into the block must be dropped before the mapping can close;
        # consumer object graphs may contain reference cycles, so force a
        # collection to release any attached views deterministically.
        self._buf = None
        gc.collect()
        if self.kind == "shm":
            handle, self._handle = self._handle, None
            try:
                if handle is None:
                    handle = _shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError:
                return
            try:
                handle.close()
            except BufferError:  # a consumer view outlived the publisher
                _UNCLOSEABLE_HANDLES.append(handle)
            try:
                handle.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        else:
            try:
                os.unlink(self.name)
            except FileNotFoundError:  # pragma: no cover - already removed
                pass
