"""Configuration object describing one approximate DNN accelerator instance."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.approx_conv import ApproximationMode


@dataclass(frozen=True)
class AcceleratorConfig:
    """A TPU-like systolic accelerator with optional control-variate MACs.

    Attributes
    ----------
    array_size:
        ``N`` of the ``N x N`` MAC array (the paper evaluates 16..64).
    perforation:
        Perforation parameter ``m`` of the MAC* multipliers; ``0`` means the
        accurate array.
    mode:
        Product model executed by the array; derived from ``perforation``
        and ``use_control_variate`` by :meth:`make`.
    use_control_variate:
        Whether the extra MAC+ column applying ``V`` is instantiated.
    activation_bits / weight_bits:
        Operand widths (both 8 in the paper).
    clock_ns:
        Clock period.  The approximate arrays are synthesized at the accurate
        array's critical path, so by construction all configurations of the
        same ``array_size`` share this value (Section V-A).
    engine_backend:
        Name of the registered :mod:`repro.core.backends` engine backend the
        software simulation of this accelerator should compile its product
        kernels with (``numpy``, ``numba``, ``lowmem``, ...).  Purely a
        simulation-speed/memory knob: every backend is bit-exact, so it
        never changes the modeled accuracy or hardware figures.
    """

    array_size: int = 64
    perforation: int = 0
    use_control_variate: bool = True
    activation_bits: int = 8
    weight_bits: int = 8
    clock_ns: float = 1.0
    engine_backend: str = "numpy"

    def __post_init__(self) -> None:
        from repro.core.backends import has_backend

        if self.array_size < 1:
            raise ValueError(f"array_size must be positive, got {self.array_size}")
        if not has_backend(self.engine_backend):
            raise ValueError(
                f"unknown engine backend {self.engine_backend!r}; "
                f"see repro.core.backends.backend_names()"
            )
        if not 0 <= self.perforation < self.activation_bits:
            raise ValueError(
                f"perforation must be within [0, {self.activation_bits - 1}], "
                f"got {self.perforation}"
            )
        if self.activation_bits != 8 or self.weight_bits != 8:
            raise ValueError("only 8-bit operands are supported by this reproduction")
        if self.clock_ns <= 0:
            raise ValueError(f"clock_ns must be positive, got {self.clock_ns}")

    @classmethod
    def accurate(cls, array_size: int = 64, clock_ns: float = 1.0) -> "AcceleratorConfig":
        """The accurate baseline array."""
        return cls(
            array_size=array_size,
            perforation=0,
            use_control_variate=False,
            clock_ns=clock_ns,
        )

    @classmethod
    def make(
        cls,
        array_size: int,
        perforation: int,
        use_control_variate: bool = True,
        clock_ns: float = 1.0,
    ) -> "AcceleratorConfig":
        """Convenience constructor mirroring the paper's (N, m) sweep."""
        return cls(
            array_size=array_size,
            perforation=perforation,
            use_control_variate=use_control_variate,
            clock_ns=clock_ns,
        )

    @property
    def mode(self) -> ApproximationMode:
        """The product model implied by this configuration."""
        if self.perforation == 0:
            return ApproximationMode.ACCURATE
        if self.use_control_variate:
            return ApproximationMode.PERFORATED_CV
        return ApproximationMode.PERFORATED

    @property
    def is_approximate(self) -> bool:
        return self.perforation > 0

    @property
    def columns(self) -> int:
        """Physical MAC columns: ``N`` plus one MAC+ column when V is applied."""
        return self.array_size + (1 if self.is_approximate and self.use_control_variate else 0)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        if not self.is_approximate:
            return f"accurate {self.array_size}x{self.array_size}"
        suffix = "with control variate" if self.use_control_variate else "w/o V"
        return (
            f"perforated m={self.perforation} {self.array_size}x{self.array_size} {suffix}"
        )
