"""Pluggable engine backends for the compiled product-kernel engine.

PR 1 introduced the ``ProductModel.compile -> ProductKernel`` seam: every
product model (accurate, perforated ± control variate, LUT, ...) compiles
against one layer's quantized weights into a kernel that is evaluated per
batch.  This module makes the *compiler* pluggable: an
:class:`EngineBackend` owns the strategy used to build those kernels, and a
process-wide registry lets callers select one by name —

``numpy``
    The default BLAS-backed kernels of
    :mod:`repro.core.product_kernels` (float32/float64 sgemm/dgemm with the
    exactness bounds documented there).
``numba``
    JIT-compiled per-tap loops.  Only *available* when the optional
    :mod:`numba` package is importable; resolving it on a machine without
    numba falls back cleanly to ``numpy`` (with a warning) instead of
    failing, and the parity suite skips it with a reason.
``lowmem``
    A low-memory streaming variant of the numpy backend: the LUT
    error-matrix footprint is capped (forcing the per-tap evaluation for
    large layers) and every kernel is evaluated in bounded patch chunks, so
    peak transient memory is independent of the batch size.

All backends are **bit-exact** against the legacy reference functions in
:mod:`repro.core.approx_conv`; the ``pytest -m engine`` parity suite is
parametrized over every registered backend and enforces this (skipping
unavailable backends with a reason).

Selection is threaded through the stack: ``AcceleratorConfig.engine_backend``
names the backend implied by a hardware configuration (honored by
``ApproximateExecutor.from_config``),
``ApproximateExecutor(engine_backend=...)`` compiles every layer through it,
``parallel_sweep(..., engine_backend=...)`` forwards it to sweep workers, and
the CLI exposes ``--engine-backend`` (plus ``python -m repro backends`` to
list availability).
"""

from __future__ import annotations

import abc
import warnings

import numpy as np

from repro.core.product_kernels import (
    ChunkedKernel,
    KernelOptions,
    MultiPlanKernel,
    ProductKernel,
)
from repro.multipliers.base import OPERAND_LEVELS

try:  # pragma: no cover - numba is an optional accelerator dependency
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on numba-less installs
    _numba = None


DEFAULT_BACKEND = "numpy"


class BackendUnavailableError(RuntimeError):
    """Raised when an unavailable backend is asked to compile a kernel."""


class EngineBackend(abc.ABC):
    """Strategy that compiles product models into per-layer kernels.

    Subclasses define a unique :attr:`name`, an availability probe and the
    :meth:`compile` hook.  A backend must be *bit-exact* against the legacy
    reference paths of :mod:`repro.core.approx_conv` — backends trade only
    speed and memory, never results.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Capability flag: True when :meth:`compile_multi` produces a fused
    #: multi-plan kernel.  Callers branch on this flag — never on
    #: ``hasattr`` — so backends without the capability (e.g. ``lowmem``)
    #: degrade cleanly to the per-plan path.
    fused_multi_plan: bool = False

    @abc.abstractmethod
    def availability(self) -> tuple[bool, str]:
        """``(available, reason)`` — ``reason`` explains unavailability."""

    def is_available(self) -> bool:
        return self.availability()[0]

    @abc.abstractmethod
    def compile(
        self, product_model, weight_codes: np.ndarray, control_variate
    ) -> ProductKernel:
        """Compile ``product_model`` against one layer's quantized weights."""

    def compile_multi(
        self,
        product_models,
        weight_codes: np.ndarray,
        control_variate,
        kernels=None,
    ):
        """Fuse P per-plan product models into one batched multi-plan kernel.

        Backends advertising :attr:`fused_multi_plan` override this and
        return an object with the :class:`~repro.core.product_kernels.
        MultiPlanKernel` interface (``plans``, ``product_sums_multi(act,
        shared=...)``).  ``kernels``, when given, carries the already
        compiled per-plan kernels for the same ``(models, weights, cv)``
        triple so precompiled state (LUT error matrices) is reused instead
        of rebuilt.  The base implementation refuses: callers must check
        the capability flag first.
        """
        raise BackendUnavailableError(
            f"engine backend {self.name!r} has no fused multi-plan compiler "
            f"(fused_multi_plan is false); check the capability flag and use "
            f"per-plan compile() instead"
        )

    def describe(self) -> str:
        """One-line human-readable description used by the CLI listing."""
        doc = (type(self).__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name

    def _require_available(self) -> None:
        available, reason = self.availability()
        if not available:
            raise BackendUnavailableError(
                f"engine backend {self.name!r} is unavailable: {reason}"
            )


class NumpyBackend(EngineBackend):
    """Default numpy/BLAS kernels (exact float32/float64 matmuls)."""

    name = "numpy"
    fused_multi_plan = True

    def __init__(self, options: KernelOptions | None = None):
        self.options = options if options is not None else KernelOptions()

    def availability(self) -> tuple[bool, str]:
        return True, ""

    def compile(
        self, product_model, weight_codes: np.ndarray, control_variate
    ) -> ProductKernel:
        return product_model.compile(
            weight_codes, control_variate, options=self.options
        )

    def compile_multi(
        self,
        product_models,
        weight_codes: np.ndarray,
        control_variate,
        kernels=None,
    ) -> MultiPlanKernel:
        if kernels is None:
            kernels = [
                self.compile(model, weight_codes, control_variate)
                for model in product_models
            ]
        return MultiPlanKernel(
            kernels, max_error_matrix_bytes=self.options.max_error_matrix_bytes
        )


class LowMemoryBackend(EngineBackend):
    """Streaming numpy kernels with a capped LUT error-matrix footprint.

    Two knobs bound peak memory:

    * ``max_error_matrix_bytes`` caps the precompiled ``(taps * 256,
      filters)`` LUT error matrix — layers over the cap use the per-tap
      streaming evaluation instead of materializing it;
    * ``chunk_patches`` wraps every compiled kernel so each batch is
      evaluated in bounded patch chunks, keeping transients (one-hot
      products, correction terms) independent of the batch size.

    Outputs are bit-exact with every other backend: chunking splits work
    along the patch axis only, and rows are computed independently.
    """

    name = "lowmem"

    def __init__(
        self,
        max_error_matrix_bytes: int = 1 << 20,
        chunk_patches: int = 1024,
    ):
        if max_error_matrix_bytes < 0:
            raise ValueError("max_error_matrix_bytes must be non-negative")
        if chunk_patches < 1:
            raise ValueError("chunk_patches must be positive")
        self.options = KernelOptions(max_error_matrix_bytes=max_error_matrix_bytes)
        self.chunk_patches = int(chunk_patches)

    def availability(self) -> tuple[bool, str]:
        return True, ""

    def compile(
        self, product_model, weight_codes: np.ndarray, control_variate
    ) -> ProductKernel:
        kernel = product_model.compile(
            weight_codes, control_variate, options=self.options
        )
        return ChunkedKernel(kernel, self.chunk_patches)


# ----------------------------------------------------------------------
# Numba backend
# ----------------------------------------------------------------------
#
# The kernel bodies are plain-python nested loops written in the shape numba
# JIT-compiles well (prange over patches, contiguous inner loops).  They are
# only ever executed through ``numba.njit`` — on a numba-less install the
# backend reports itself unavailable and is never asked to compile.


def _kernel_masked_matmul(act, w, mask):  # pragma: no cover - numba-compiled
    patches, taps = act.shape
    filters = w.shape[1]
    out = np.zeros((patches, filters), dtype=np.int64)
    for p in range(patches):
        for j in range(taps):
            a = np.int64(act[p, j])
            a = a - (a & mask)
            if a == 0:
                continue
            for f in range(filters):
                out[p, f] += a * w[j, f]
    return out


def _kernel_masked_sums(act, mask):  # pragma: no cover - numba-compiled
    patches, taps = act.shape
    out = np.zeros(patches, dtype=np.int64)
    for p in range(patches):
        total = np.int64(0)
        for j in range(taps):
            total += np.int64(act[p, j]) & mask
        out[p] = total
    return out


def _kernel_lut_sums(act, w, lut):  # pragma: no cover - numba-compiled
    patches, taps = act.shape
    filters = w.shape[1]
    out = np.zeros((patches, filters), dtype=np.int64)
    for p in range(patches):
        for j in range(taps):
            row = lut[:, act[p, j]]
            for f in range(filters):
                out[p, f] += row[w[j, f]]
    return out


# Fused multi-plan bodies: one JIT launch evaluates every plan's block of a
# ``(plans, patches, taps)`` activation stack, so the sweep's per-plan
# dispatch overhead collapses into the outer ``q`` loop *inside* the kernel.


def _kernel_multi_masked_matmul(act, w, masks):  # pragma: no cover - numba-compiled
    plans, patches, taps = act.shape
    filters = w.shape[1]
    out = np.zeros((plans, patches, filters), dtype=np.int64)
    for q in range(plans):
        mask = masks[q]
        for p in range(patches):
            for j in range(taps):
                a = np.int64(act[q, p, j])
                a = a - (a & mask)
                if a == 0:
                    continue
                for f in range(filters):
                    out[q, p, f] += a * w[j, f]
    return out


def _kernel_multi_masked_sums(act, masks):  # pragma: no cover - numba-compiled
    plans, patches, taps = act.shape
    out = np.zeros((plans, patches), dtype=np.int64)
    for q in range(plans):
        mask = masks[q]
        for p in range(patches):
            total = np.int64(0)
            for j in range(taps):
                total += np.int64(act[q, p, j]) & mask
            out[q, p] = total
    return out


def _kernel_multi_lut_sums(act, w, luts):  # pragma: no cover - numba-compiled
    plans, patches, taps = act.shape
    filters = w.shape[1]
    out = np.zeros((plans, patches, filters), dtype=np.int64)
    for q in range(plans):
        for p in range(patches):
            for j in range(taps):
                row = luts[q][:, act[q, p, j]]
                for f in range(filters):
                    out[q, p, f] += row[w[j, f]]
    return out


class _NumbaPerforatedKernel(ProductKernel):
    """JIT perforated (or, with ``m=0``, accurate) product sums."""

    def __init__(self, fns, weight_codes, m, control_variate):
        w = np.ascontiguousarray(np.asarray(weight_codes), dtype=np.int64)
        if w.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D (taps, filters), got {w.shape}")
        super().__init__(*w.shape)
        if control_variate is not None and control_variate.n_filters != self.filters:
            raise ValueError(
                f"control variate has {control_variate.n_filters} filters, "
                f"weights have {self.filters}"
            )
        self._fns = fns
        self._w = w
        self._mask = np.int64((1 << int(m)) - 1)
        self.control_variate = control_variate

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = np.ascontiguousarray(self._check_acts(act_codes))
        sums = self._fns["masked_matmul"](act, self._w, self._mask)
        cv = self.control_variate
        if cv is None:
            return sums
        correction = cv.correction(self._fns["masked_sums"](act, self._mask))
        if cv.quantized:
            return sums + correction.astype(np.int64)
        return sums.astype(np.float64) + correction


class _NumbaLUTKernel(ProductKernel):
    """JIT per-tap LUT gather (no error-matrix materialization at all)."""

    def __init__(self, fns, weight_codes, lut):
        w = np.ascontiguousarray(np.asarray(weight_codes), dtype=np.int64)
        if w.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D (taps, filters), got {w.shape}")
        if w.size and (w.min() < 0 or w.max() >= OPERAND_LEVELS):
            raise ValueError(f"weight codes out of range [0, {OPERAND_LEVELS - 1}]")
        super().__init__(*w.shape)
        self._fns = fns
        self._w = w
        self._lut = np.ascontiguousarray(np.asarray(lut, dtype=np.int64))
        if self._lut.shape != (OPERAND_LEVELS, OPERAND_LEVELS):
            raise ValueError(f"lut must have shape (256, 256), got {self._lut.shape}")

    def product_sums(self, act_codes: np.ndarray) -> np.ndarray:
        act = self._check_acts(act_codes)
        if act.dtype != np.uint8 and act.size and (
            act.min() < 0 or act.max() >= OPERAND_LEVELS
        ):
            raise ValueError(f"activation codes out of range [0, {OPERAND_LEVELS - 1}]")
        act = np.ascontiguousarray(act, dtype=np.int64)
        return self._fns["lut_sums"](act, self._w, self._lut)


class _NumbaMultiPlanKernel:
    """Fused multi-plan launches through the JIT kernel bodies.

    Mirrors the :class:`~repro.core.product_kernels.MultiPlanKernel`
    interface: the perforated/accurate blocks of a plan stack are evaluated
    by one ``_kernel_multi_masked_matmul`` launch (one ``(plans,)`` mask
    vector), the LUT blocks by one ``_kernel_multi_lut_sums`` launch (one
    ``(plans, 256, 256)`` table stack), and anything else falls back to its
    own per-plan kernel — bit-exact with the per-plan numba kernels by
    construction (identical integer arithmetic, per-plan loop moved inside
    the JIT body).
    """

    def __init__(self, fns, product_models, weight_codes, control_variate):
        # Resolved lazily by NumbaBackend.compile_multi to avoid the import
        # cycle with repro.simulation.inference.
        from repro.simulation.inference import (
            AccurateProduct,
            LUTProduct,
            PerforatedProduct,
        )

        w = np.ascontiguousarray(np.asarray(weight_codes), dtype=np.int64)
        if w.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D (taps, filters), got {w.shape}")
        self.taps, self.filters = w.shape
        self._fns = fns
        self._w = w
        self._kinds: list[str] = []
        self._masks: list[int] = []
        self._cvs: list = []
        self._luts: list[np.ndarray] = []
        self._fallbacks: list = []
        for model in product_models:
            if isinstance(model, AccurateProduct):
                self._kinds.append("perf")
                self._masks.append(0)
                self._cvs.append(None)
            elif isinstance(model, PerforatedProduct):
                cv = control_variate if model.use_control_variate else None
                if cv is not None and cv.n_filters != self.filters:
                    raise ValueError(
                        f"control variate has {cv.n_filters} filters, "
                        f"weights have {self.filters}"
                    )
                self._kinds.append("perf")
                self._masks.append((1 << int(model.m)) - 1)
                self._cvs.append(cv)
            elif isinstance(model, LUTProduct):
                lut = np.ascontiguousarray(np.asarray(model.lut, dtype=np.int64))
                if lut.shape != (OPERAND_LEVELS, OPERAND_LEVELS):
                    raise ValueError(
                        f"lut must have shape (256, 256), got {lut.shape}"
                    )
                if w.size and (w.min() < 0 or w.max() >= OPERAND_LEVELS):
                    raise ValueError(
                        f"weight codes out of range [0, {OPERAND_LEVELS - 1}]"
                    )
                self._kinds.append("lut")
                self._masks.append(0)
                self._cvs.append(None)
                self._luts.append(lut)
            else:
                self._kinds.append("fallback")
                self._masks.append(0)
                self._cvs.append(None)
                self._fallbacks.append(
                    model.compile(weight_codes, control_variate)
                )
        self._lut_stack = (
            np.ascontiguousarray(np.stack(self._luts)) if self._luts else None
        )

    @property
    def plans(self) -> int:
        return len(self._kinds)

    def product_sums_multi(
        self, act_codes: np.ndarray, shared: bool = False
    ) -> np.ndarray:
        act = np.asarray(act_codes)
        if act.ndim != 2 or act.shape[1] != self.taps:
            raise ValueError(
                f"activations must have shape (patches, {self.taps}), got {act.shape}"
            )
        if shared:
            n = act.shape[0]
        else:
            if act.shape[0] % self.plans:
                raise ValueError(
                    f"stacked activations ({act.shape[0]} rows) do not divide "
                    f"into {self.plans} equal plan blocks"
                )
            n = act.shape[0] // self.plans

        def block(p: int) -> np.ndarray:
            return act if shared else act[p * n : (p + 1) * n]

        out = np.empty((self.plans * n, self.filters), dtype=np.float64)
        perf = [p for p, k in enumerate(self._kinds) if k == "perf"]
        if perf:
            stack = np.empty((len(perf), n, self.taps), dtype=np.int64)
            for row, p in enumerate(perf):
                stack[row] = block(p)
            masks = np.asarray([self._masks[p] for p in perf], dtype=np.int64)
            sums = self._fns["multi_masked_matmul"](stack, self._w, masks)
            corrections = self._fns["multi_masked_sums"](stack, masks)
            for row, p in enumerate(perf):
                dst = out[p * n : (p + 1) * n]
                cv = self._cvs[p]
                if cv is None:
                    dst[...] = sums[row]
                    continue
                correction = cv.correction(corrections[row])
                if cv.quantized:
                    correction = correction.astype(np.int64)
                np.add(sums[row], correction, out=dst, casting="unsafe")
        luts = [p for p, k in enumerate(self._kinds) if k == "lut"]
        if luts:
            stack = np.empty((len(luts), n, self.taps), dtype=np.int64)
            for row, p in enumerate(luts):
                stack[row] = block(p)
            sums = self._fns["multi_lut_sums"](stack, self._w, self._lut_stack)
            for row, p in enumerate(luts):
                out[p * n : (p + 1) * n] = sums[row]
        fallback_iter = iter(self._fallbacks)
        for p, kind in enumerate(self._kinds):
            if kind == "fallback":
                out[p * n : (p + 1) * n] = next(fallback_iter)(block(p))
        return out

    def __call__(self, act_codes: np.ndarray, shared: bool = False) -> np.ndarray:
        return self.product_sums_multi(act_codes, shared=shared)


class NumbaBackend(EngineBackend):
    """JIT-compiled per-tap loops via numba (optional dependency)."""

    name = "numba"
    fused_multi_plan = True

    def __init__(self):
        self._fns: dict | None = None
        self._probe_error: str | None = None

    def availability(self) -> tuple[bool, str]:
        if _numba is None:
            return False, "the 'numba' package is not installed"
        if self._probe_error is not None:
            return False, self._probe_error
        return True, ""

    def _compiled_fns(self) -> dict:
        """JIT-compile the kernel bodies once per backend instance."""
        if self._fns is None:
            njit = _numba.njit
            self._fns = {
                "masked_matmul": njit(cache=False, nogil=True)(_kernel_masked_matmul),
                "masked_sums": njit(cache=False, nogil=True)(_kernel_masked_sums),
                "lut_sums": njit(cache=False, nogil=True)(_kernel_lut_sums),
                "multi_masked_matmul": njit(cache=False, nogil=True)(
                    _kernel_multi_masked_matmul
                ),
                "multi_masked_sums": njit(cache=False, nogil=True)(
                    _kernel_multi_masked_sums
                ),
                "multi_lut_sums": njit(cache=False, nogil=True)(
                    _kernel_multi_lut_sums
                ),
            }
        return self._fns

    def compile(
        self, product_model, weight_codes: np.ndarray, control_variate
    ) -> ProductKernel:
        self._require_available()
        # Local import: repro.simulation.inference imports this module at
        # load time, so the concrete model types are resolved lazily here.
        from repro.simulation.inference import (
            AccurateProduct,
            LUTProduct,
            PerforatedProduct,
        )

        try:
            fns = self._compiled_fns()
        except Exception as exc:
            # A broken numba install (e.g. llvmlite/ABI mismatch) surfaces
            # here on first compile; record it and fall back permanently.
            # Only the JIT step is guarded — kernel-construction errors
            # (shape/range validation) propagate like any other backend's.
            self._probe_error = f"numba JIT compilation failed: {exc}"
            warnings.warn(
                f"engine backend 'numba' disabled after a compile failure; "
                f"falling back to numpy kernels ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            return product_model.compile(weight_codes, control_variate)
        if isinstance(product_model, AccurateProduct):
            return _NumbaPerforatedKernel(fns, weight_codes, 0, None)
        if isinstance(product_model, PerforatedProduct):
            cv = control_variate if product_model.use_control_variate else None
            return _NumbaPerforatedKernel(fns, weight_codes, product_model.m, cv)
        if isinstance(product_model, LUTProduct):
            return _NumbaLUTKernel(fns, weight_codes, product_model.lut)
        # Models without a specialized numba kernel use their own compiled
        # form — still bit-exact, just not JIT-ed.
        return product_model.compile(weight_codes, control_variate)

    def compile_multi(
        self,
        product_models,
        weight_codes: np.ndarray,
        control_variate,
        kernels=None,
    ):
        self._require_available()
        try:
            fns = self._compiled_fns()
        except Exception as exc:
            self._probe_error = f"numba JIT compilation failed: {exc}"
            warnings.warn(
                f"engine backend 'numba' disabled after a compile failure; "
                f"falling back to numpy multi-plan kernels ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            return NumpyBackend().compile_multi(
                product_models, weight_codes, control_variate
            )
        return _NumbaMultiPlanKernel(
            fns, product_models, weight_codes, control_variate
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, EngineBackend] = {}


def register_backend(backend: EngineBackend, replace: bool = False) -> EngineBackend:
    """Add ``backend`` to the process-wide registry (keyed by its name)."""
    if not backend.name or backend.name == "abstract":
        raise ValueError("backend must define a concrete name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"engine backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> list[str]:
    """Names of all registered backends (available or not), in registration order."""
    return list(_REGISTRY)


def available_backend_names() -> list[str]:
    """Names of the backends whose availability probe passes."""
    return [name for name, backend in _REGISTRY.items() if backend.is_available()]


def has_backend(name: str) -> bool:
    return name in _REGISTRY


def get_backend(name: str) -> EngineBackend:
    """Look up a registered backend by name (availability not checked)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown engine backend {name!r}; registered backends: {known}"
        ) from None


def resolve_backend(
    backend: str | EngineBackend | None,
    allow_fallback: bool = True,
) -> EngineBackend:
    """Resolve a backend name (or instance) to a usable backend.

    ``None`` resolves to the default (``numpy``) backend.  When the
    requested backend exists but is unavailable (e.g. ``numba`` without the
    numba package), the default backend is returned with a warning if
    ``allow_fallback`` is true — this is the "fall back cleanly" contract —
    otherwise :class:`BackendUnavailableError` is raised.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, EngineBackend):
        resolved = backend
    else:
        resolved = get_backend(str(backend))
    available, reason = resolved.availability()
    if available:
        return resolved
    if not allow_fallback:
        raise BackendUnavailableError(
            f"engine backend {resolved.name!r} is unavailable: {reason}"
        )
    warnings.warn(
        f"engine backend {resolved.name!r} is unavailable ({reason}); "
        f"falling back to {DEFAULT_BACKEND!r}",
        RuntimeWarning,
        stacklevel=2,
    )
    return get_backend(DEFAULT_BACKEND)


register_backend(NumpyBackend())
register_backend(NumbaBackend())
register_backend(LowMemoryBackend())


__all__ = [
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "EngineBackend",
    "NumpyBackend",
    "NumbaBackend",
    "LowMemoryBackend",
    "register_backend",
    "backend_names",
    "available_backend_names",
    "has_backend",
    "get_backend",
    "resolve_backend",
]
