"""Approximate product-sum computation for quantized linear operations.

The quantized convolution / dense core
(:class:`repro.quantization.qlayers.QuantizedLinearOp`) needs the raw sum
``sum_j product(wq_j, aq_j)`` per (patch, filter) pair.  This module provides
that sum for every approximation mode of the paper:

* :data:`ApproximationMode.ACCURATE` — exact products (the baseline array);
* :data:`ApproximationMode.PERFORATED` — perforated multiplier without any
  correction (the "w/o V" columns of Table III);
* :data:`ApproximationMode.PERFORATED_CV` — perforated multiplier plus the
  control variate ``V = C sum_j x_j`` (the "Ours" columns);
* arbitrary LUT multipliers via :func:`lut_product_sums` (used by the
  state-of-the-art baselines of Fig. 5).

All perforation paths exploit the functional form of the approximation:
``sum_j wq_j * (aq_j - x_j)`` is a plain matrix product of the truncated
activations, so no per-element lookup is ever needed — exactly the property
([10] is "based on mathematical formulation") the paper requires of the
multiplier.

The functions here are the *reference* (legacy) implementations: stateless,
one call per batch, re-deriving weight-side state every time.  The hot path
of the approximate executor instead uses the compiled per-layer kernels of
:mod:`repro.core.product_kernels`, which hoist that state out of the batch
loop (and replace the 3-D LUT gather of :func:`lut_product_sums` with two
matrix products).  The two implementations are bit-exact against each other;
the ``pytest -m engine`` parity suite enforces it.

``m = 0`` is a valid degenerate perforation everywhere: the products equal
:func:`accurate_product_sums` and the control-variate correction is exactly
zero (no activation bits are dropped).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.control_variate import ControlVariate
from repro.multipliers.lut import apply_lut


class ApproximationMode(enum.Enum):
    """Product model used by the MAC array."""

    ACCURATE = "accurate"
    PERFORATED = "perforated"
    PERFORATED_CV = "perforated_cv"

    @property
    def uses_control_variate(self) -> bool:
        return self is ApproximationMode.PERFORATED_CV


def _check_codes(act_codes: np.ndarray, weight_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    act = np.asarray(act_codes)
    w = np.asarray(weight_codes)
    if act.ndim != 2 or w.ndim != 2:
        raise ValueError("act_codes and weight_codes must be 2-D")
    if act.shape[1] != w.shape[0]:
        raise ValueError(
            f"taps mismatch: activations have {act.shape[1]}, weights have {w.shape[0]}"
        )
    return act.astype(np.int64), w.astype(np.int64)


def accurate_product_sums(act_codes: np.ndarray, weight_codes: np.ndarray) -> np.ndarray:
    """Exact ``sum_j wq_j aq_j`` — the accurate MAC array."""
    act, w = _check_codes(act_codes, weight_codes)
    return act @ w


def perforated_product_sums(
    act_codes: np.ndarray,
    weight_codes: np.ndarray,
    m: int,
    control_variate: ControlVariate | None = None,
) -> np.ndarray:
    """Product sums of the perforated MAC array, optionally CV-corrected.

    Parameters
    ----------
    act_codes:
        ``(patches, taps)`` uint8 activation codes.
    weight_codes:
        ``(taps, filters)`` uint8 weight codes.
    m:
        Perforation parameter (number of dropped partial products).
    control_variate:
        When given, the per-filter correction ``V = C_f * sum_j x_j`` is
        added — this is the MAC+ column of the paper's architecture.

    Returns
    -------
    numpy.ndarray
        ``(patches, filters)`` product sums.  Integer when no control
        variate is applied or the constants are quantized; float otherwise.
    """
    if not 0 <= int(m) < 8:
        raise ValueError(f"m must be within [0, 7], got {m}")
    act, w = _check_codes(act_codes, weight_codes)
    mask = np.int64((1 << int(m)) - 1)
    x = act & mask
    truncated = act - x
    sums = truncated @ w
    if control_variate is None:
        return sums
    if control_variate.n_filters != w.shape[1]:
        raise ValueError(
            f"control variate has {control_variate.n_filters} filters, "
            f"weights have {w.shape[1]}"
        )
    correction = control_variate.correction(x.sum(axis=1))
    if control_variate.quantized:
        return sums + correction.astype(np.int64)
    return sums.astype(np.float64) + correction


def lut_product_sums(
    act_codes: np.ndarray,
    weight_codes: np.ndarray,
    lut: np.ndarray,
    chunk_patches: int = 512,
) -> np.ndarray:
    """Product sums through an arbitrary 256x256 multiplier LUT.

    This is the generic (TFApprox-style) path used for multipliers whose
    error has no exploitable closed form, e.g. the synthetic EvoApprox-like
    library entries used by the Fig. 5 baselines.  Evaluation is chunked
    over patches to bound peak memory at ``chunk_patches * taps * filters``
    lookups.

    This is the legacy reference implementation; repeated evaluation against
    the same weights should use :class:`repro.core.product_kernels.LUTKernel`,
    which eliminates the 3-D gather entirely.
    """
    act, w = _check_codes(act_codes, weight_codes)
    patches, taps = act.shape
    filters = w.shape[1]
    out = np.empty((patches, filters), dtype=np.int64)
    for start in range(0, patches, chunk_patches):
        stop = min(start + chunk_patches, patches)
        block = act[start:stop]  # (p, taps)
        # products[p, j, f] = lut[w[j, f], a[p, j]]
        products = apply_lut(
            lut,
            w[None, :, :],
            block[:, :, None],
        )
        out[start:stop] = products.sum(axis=1)
    return out


def product_sums(
    act_codes: np.ndarray,
    weight_codes: np.ndarray,
    mode: ApproximationMode,
    m: int = 0,
    control_variate: ControlVariate | None = None,
) -> np.ndarray:
    """Dispatch to the product-sum implementation selected by ``mode``."""
    if mode is ApproximationMode.ACCURATE:
        return accurate_product_sums(act_codes, weight_codes)
    if mode is ApproximationMode.PERFORATED:
        return perforated_product_sums(act_codes, weight_codes, m)
    if mode is ApproximationMode.PERFORATED_CV:
        if control_variate is None:
            control_variate = ControlVariate.from_weight_matrix(weight_codes)
        return perforated_product_sums(act_codes, weight_codes, m, control_variate)
    raise ValueError(f"unsupported mode: {mode}")
