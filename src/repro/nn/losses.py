"""Losses and output activations."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` raw scores.
    labels:
        ``(batch,)`` integer class labels.

    Returns
    -------
    (loss, grad):
        Scalar mean loss and the ``(batch, classes)`` gradient.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
        raise ValueError("labels out of range for the given logits")
    probs = softmax(logits)
    batch = logits.shape[0]
    picked = probs[np.arange(batch), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return loss, grad
