"""Mini-batch training loop and evaluation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.graph import Graph
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optimizers import Optimizer, SGD


@dataclass
class TrainingResult:
    """Per-epoch training history."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        """Validation accuracy after the last epoch (NaN if never evaluated)."""
        return self.val_accuracies[-1] if self.val_accuracies else float("nan")


def evaluate_accuracy(
    model: Graph, images: np.ndarray, labels: np.ndarray, batch_size: int = 256
) -> float:
    """Top-1 accuracy of ``model`` on a labelled dataset."""
    labels = np.asarray(labels, dtype=np.int64)
    correct = 0
    for start in range(0, images.shape[0], batch_size):
        batch = images[start : start + batch_size]
        logits = model.forward(batch, training=False)
        correct += int((logits.argmax(axis=1) == labels[start : start + batch_size]).sum())
    return correct / float(images.shape[0])


class Trainer:
    """Trains a :class:`Graph` classifier with softmax cross-entropy.

    Parameters
    ----------
    model:
        The graph to train (parameters are updated in place).
    optimizer:
        Any :class:`repro.nn.optimizers.Optimizer`; defaults to SGD with
        momentum, which is what the reproduced CIFAR families normally use.
    rng:
        Random generator controlling the shuffling, for reproducibility.
    """

    def __init__(
        self,
        model: Graph,
        optimizer: Optimizer | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.model = model
        self.optimizer = optimizer if optimizer is not None else SGD()
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        lr_decay: float = 1.0,
        verbose: bool = False,
    ) -> TrainingResult:
        """Train for ``epochs`` passes over the data.

        Parameters
        ----------
        images, labels:
            Training data (NHWC images, integer labels).
        validation:
            Optional ``(images, labels)`` pair evaluated after every epoch.
        lr_decay:
            Multiplicative learning-rate decay applied after each epoch.
        """
        labels = np.asarray(labels, dtype=np.int64)
        n = images.shape[0]
        if labels.shape != (n,):
            raise ValueError(f"labels must have shape ({n},), got {labels.shape}")
        result = TrainingResult()
        for epoch in range(epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch_x = images[idx]
                batch_y = labels[idx]
                logits = self.model.forward(batch_x, training=True)
                loss, grad = softmax_cross_entropy(logits, batch_y)
                self.model.backward(grad)
                self.optimizer.step(self.model)
                epoch_loss += loss * len(idx)
                correct += int((logits.argmax(axis=1) == batch_y).sum())
            result.losses.append(epoch_loss / n)
            result.train_accuracies.append(correct / n)
            if validation is not None:
                val_acc = evaluate_accuracy(self.model, validation[0], validation[1])
                result.val_accuracies.append(val_acc)
            if verbose:  # pragma: no cover - logging only
                val = (
                    f" val_acc={result.val_accuracies[-1]:.3f}"
                    if validation is not None
                    else ""
                )
                print(
                    f"epoch {epoch + 1}/{epochs}: loss={result.losses[-1]:.4f} "
                    f"train_acc={result.train_accuracies[-1]:.3f}{val}"
                )
            self.optimizer.learning_rate *= lr_decay
        return result
