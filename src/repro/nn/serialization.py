"""Save / load trained model parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.graph import Graph


def save_params(model: Graph, path: str | os.PathLike) -> None:
    """Write all parameters and batch-norm statistics of ``model`` to ``path``."""
    state = model.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(os.fspath(path), **state)


def load_params(model: Graph, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_params` into ``model`` (in place)."""
    with np.load(os.fspath(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
