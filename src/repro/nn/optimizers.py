"""Gradient-descent optimizers operating on :class:`repro.nn.graph.Graph` models."""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph


class Optimizer:
    """Base class: updates model parameters in place from their gradients."""

    def __init__(self, learning_rate: float, weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)

    def step(self, model: Graph) -> None:
        params = model.parameters()
        grads = model.gradients()
        if len(params) != len(grads):
            raise RuntimeError("parameter / gradient count mismatch")
        for (node, key, param), (gnode, gkey, grad) in zip(params, grads):
            if (node, key) != (gnode, gkey):
                raise RuntimeError("parameter / gradient ordering mismatch")
            if self.weight_decay and key == "weight":
                grad = grad + self.weight_decay * param
            self._update(f"{node}.{key}", param, grad)

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
    ):
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - self.learning_rate * grad
        self._velocity[key] = velocity
        param += velocity


class Adam(Optimizer):
    """Adam optimizer."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate, weight_decay)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.get(key, np.zeros_like(param))
        v = self._v.get(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
        self._m[key], self._v[key], self._t[key] = m, v, t
