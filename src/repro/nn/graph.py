"""Model containers: arbitrary DAGs (:class:`Graph`) and :class:`Sequential`.

The six reproduced architectures need branching topologies (residual adds,
Inception concatenations, ShuffleNet splits), so the primary container is a
directed acyclic graph of named nodes.  The graph exposes its topology —
``nodes`` in execution order — because the quantized / approximate executors
in :mod:`repro.simulation` re-run the same topology while swapping the
convolution and dense layers for integer (approximate) implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import BatchNorm, Conv2D, Dense, Layer

#: Reserved node name denoting the model input.
INPUT = "input"


@dataclass
class GraphNode:
    """One node of the model graph."""

    name: str
    layer: Layer
    inputs: list[str]


@dataclass
class Graph:
    """A DAG of layers with a single input and a single output node."""

    nodes: list[GraphNode] = field(default_factory=list)
    output_name: str | None = None

    def __post_init__(self) -> None:
        self._by_name: dict[str, GraphNode] = {node.name: node for node in self.nodes}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, name: str, layer: Layer, inputs: str | list[str] = INPUT) -> str:
        """Append a node; ``inputs`` may be a single node name or a list.

        Returns the node name so construction code can chain naturally:
        ``x = graph.add("conv1", Conv2D(...), x)``.
        """
        if name == INPUT or name in self._by_name:
            raise ValueError(f"invalid or duplicate node name: {name!r}")
        if isinstance(inputs, str):
            inputs = [inputs]
        for parent in inputs:
            if parent != INPUT and parent not in self._by_name:
                raise ValueError(f"unknown input node {parent!r} for node {name!r}")
        if len(inputs) != layer.n_inputs:
            raise ValueError(
                f"layer {name!r} expects {layer.n_inputs} inputs, got {len(inputs)}"
            )
        layer.name = name
        node = GraphNode(name=name, layer=layer, inputs=list(inputs))
        self.nodes.append(node)
        self._by_name[name] = node
        self.output_name = name
        return name

    def node(self, name: str) -> GraphNode:
        """Look up a node by name."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        return_activations: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, dict[str, np.ndarray]]:
        """Run the graph on ``x``.

        With ``return_activations=True`` the full dictionary of node outputs
        (keyed by node name, plus ``"input"``) is returned alongside the
        output — used for calibration of the quantized executors.
        """
        if self.output_name is None:
            raise RuntimeError("graph has no nodes")
        activations: dict[str, np.ndarray] = {INPUT: x}
        for node in self.nodes:
            inputs = [activations[parent] for parent in node.inputs]
            activations[node.name] = node.layer.forward(*inputs, training=training)
        output = activations[self.output_name]
        if return_activations:
            return output, activations
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` through the graph.

        Returns the gradient with respect to the model input (rarely needed,
        but cheap to provide and useful for gradient checking).
        """
        grads: dict[str, np.ndarray] = {self.output_name: grad_output}
        for node in reversed(self.nodes):
            grad = grads.pop(node.name, None)
            if grad is None:
                # Node does not influence the output (should not happen in
                # well-formed models) — skip it.
                continue
            input_grads = node.layer.backward(grad)
            for parent, g in zip(node.inputs, input_grads):
                if parent in grads:
                    grads[parent] = grads[parent] + g
                else:
                    grads[parent] = g
        return grads.get(INPUT, np.zeros(0))

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def layers(self) -> dict[str, Layer]:
        """All layers keyed by node name, in execution order."""
        return {node.name: node.layer for node in self.nodes}

    def conv_dense_nodes(self) -> list[GraphNode]:
        """The MAC-heavy nodes (convolutions and dense layers) in order."""
        return [n for n in self.nodes if isinstance(n.layer, (Conv2D, Dense))]

    def parameters(self) -> list[tuple[str, str, np.ndarray]]:
        """Flat list of ``(node_name, param_name, array)`` for the optimizers."""
        out = []
        for node in self.nodes:
            for key, value in node.layer.params().items():
                out.append((node.name, key, value))
        return out

    def gradients(self) -> list[tuple[str, str, np.ndarray]]:
        """Flat list of gradients aligned with :meth:`parameters`."""
        out = []
        for node in self.nodes:
            for key, value in node.layer.grads().items():
                out.append((node.name, key, value))
        return out

    def count_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(arr.size for _, _, arr in self.parameters()))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """All trainable parameters and batch-norm running statistics."""
        state: dict[str, np.ndarray] = {}
        for node in self.nodes:
            for key, value in node.layer.params().items():
                state[f"{node.name}.{key}"] = value
            if isinstance(node.layer, BatchNorm):
                for key, value in node.layer.state().items():
                    state[f"{node.name}.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`state_dict`."""
        for node in self.nodes:
            for key in node.layer.params():
                full = f"{node.name}.{key}"
                if full not in state:
                    raise KeyError(f"missing parameter {full!r} in state dict")
                target = node.layer.params()[key]
                value = np.asarray(state[full])
                if value.shape != target.shape:
                    raise ValueError(
                        f"shape mismatch for {full!r}: {value.shape} vs {target.shape}"
                    )
                target[...] = value
            if isinstance(node.layer, BatchNorm):
                for key in ("running_mean", "running_var"):
                    full = f"{node.name}.{key}"
                    if full in state:
                        getattr(node.layer, key)[...] = np.asarray(state[full])


class Sequential(Graph):
    """Convenience container for purely sequential models (VGG family)."""

    def __init__(self) -> None:
        super().__init__()
        self._counter = 0

    def append(self, layer: Layer, name: str | None = None) -> str:
        """Append a layer after the previously appended one."""
        if name is None:
            name = f"{type(layer).__name__.lower()}_{self._counter}"
        self._counter += 1
        parent = self.output_name if self.output_name is not None else INPUT
        return self.add(name, layer, parent)
