"""Parameter initializers."""

from __future__ import annotations

import numpy as np


def default_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Return ``rng`` or a default deterministic generator."""
    return rng if rng is not None else np.random.default_rng(0)


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """He (Kaiming) normal initialization, appropriate for ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return default_rng(rng).normal(0.0, std, size=shape).astype(np.float64)


def glorot_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Glorot (Xavier) uniform initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return default_rng(rng).uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
