"""Neural-network layers with forward and backward passes (NHWC layout)."""

from __future__ import annotations

import numpy as np

from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.initializers import he_normal, zeros


class Layer:
    """Base class of all layers.

    A layer transforms one or more input arrays into a single output array.
    Trainable layers expose their parameters and accumulated gradients via
    :meth:`params` and :meth:`grads` (dictionaries keyed by parameter name),
    which is what the optimizers consume.
    """

    #: Set by the graph when the layer is registered; used in reports.
    name: str = ""

    #: Per-batch transient attributes — forward/backward caches and gradient
    #: accumulators — that are rebuilt by the next forward/backward pass.
    #: They are nulled when a layer is pickled: a trained model shipped to
    #: sweep workers carries its parameters, not the im2col columns and
    #: activation masks of the last training batch (which dwarf the weights).
    _TRANSIENT_STATE = (
        "_cache",
        "_mask",
        "_x",
        "_x_shape",
        "dweight",
        "dbias",
        "dgamma",
        "dbeta",
    )

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in self._TRANSIENT_STATE:
            if state.get(key) is not None:
                state[key] = None
        return state

    def forward(self, *inputs: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        raise NotImplementedError

    def params(self) -> dict[str, np.ndarray]:
        """Trainable parameters of the layer (may be empty)."""
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        """Gradients matching :meth:`params` after a backward pass."""
        return {}

    @property
    def n_inputs(self) -> int:
        """Number of input tensors the layer expects."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class Conv2D(Layer):
    """2-D convolution (supports grouped and depthwise convolution).

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.  ``out_channels`` and ``in_channels`` must both be
        divisible by ``groups``.
    kernel_size:
        Square kernel side length.
    stride:
        Spatial stride.
    padding:
        ``"same"`` (output size = ceil(input / stride) for odd kernels),
        ``"valid"`` or an explicit integer amount of symmetric zero padding.
    groups:
        Number of channel groups (``groups == in_channels`` and
        ``out_channels == in_channels`` gives a depthwise convolution).
    use_bias:
        Whether to add a per-filter bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: str | int = "same",
        groups: int = 1,
        use_bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}->{out_channels}) not divisible by groups={groups}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.groups = int(groups)
        self.use_bias = bool(use_bias)
        if padding == "same":
            self.pad = (self.kernel_size - 1) // 2
        elif padding == "valid":
            self.pad = 0
        else:
            self.pad = int(padding)
        cin_per_group = in_channels // groups
        fan_in = self.kernel_size * self.kernel_size * cin_per_group
        self.weight = he_normal(
            (self.kernel_size, self.kernel_size, cin_per_group, out_channels),
            fan_in=fan_in,
            rng=rng,
        )
        self.bias = zeros((out_channels,)) if use_bias else None
        self.dweight = np.zeros_like(self.weight)
        self.dbias = np.zeros_like(self.bias) if use_bias else None
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    def weight_matrix(self, group: int = 0) -> np.ndarray:
        """Weights of one group reshaped to ``(taps, filters_per_group)``.

        This is the layout consumed by the quantized / approximate executors
        and by the MAC-array simulator: one column per output filter, rows
        ordered ``(kh, kw, cin)`` to match :func:`repro.nn.im2col.im2col`.
        """
        cout_per_group = self.out_channels // self.groups
        w_g = self.weight[..., group * cout_per_group : (group + 1) * cout_per_group]
        return w_g.reshape(-1, cout_per_group)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, height, width, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(
                f"{self.name or type(self).__name__}: expected {self.in_channels} "
                f"input channels, got {channels}"
            )
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.pad)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.pad)
        cout_per_group = self.out_channels // self.groups
        cin_per_group = self.in_channels // self.groups
        out = np.empty((batch, out_h, out_w, self.out_channels), dtype=x.dtype)
        cache_cols = []
        for g in range(self.groups):
            x_g = x[..., g * cin_per_group : (g + 1) * cin_per_group]
            cols, _, _ = im2col(x_g, self.kernel_size, self.kernel_size, self.stride, self.pad)
            w_mat = self.weight_matrix(g)
            out_g = cols @ w_mat
            if self.use_bias:
                out_g = out_g + self.bias[g * cout_per_group : (g + 1) * cout_per_group]
            out[..., g * cout_per_group : (g + 1) * cout_per_group] = out_g.reshape(
                batch, out_h, out_w, cout_per_group
            )
            cache_cols.append(cols)
        if training:
            self._cache = {"x_shape": x.shape, "cols": cache_cols}
        return out

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_shape = self._cache["x_shape"]
        batch, height, width, _ = x_shape
        cin_per_group = self.in_channels // self.groups
        cout_per_group = self.out_channels // self.groups
        dx = np.empty(x_shape, dtype=grad.dtype)
        self.dweight = np.zeros_like(self.weight)
        if self.use_bias:
            self.dbias = np.zeros_like(self.bias)
        for g in range(self.groups):
            grad_g = grad[..., g * cout_per_group : (g + 1) * cout_per_group]
            grad_flat = grad_g.reshape(-1, cout_per_group)
            cols = self._cache["cols"][g]
            w_mat = self.weight_matrix(g)
            dw_mat = cols.T @ grad_flat
            self.dweight[..., g * cout_per_group : (g + 1) * cout_per_group] = (
                dw_mat.reshape(
                    self.kernel_size, self.kernel_size, cin_per_group, cout_per_group
                )
            )
            if self.use_bias:
                self.dbias[g * cout_per_group : (g + 1) * cout_per_group] = grad_flat.sum(
                    axis=0
                )
            dcols = grad_flat @ w_mat.T
            dx[..., g * cin_per_group : (g + 1) * cin_per_group] = col2im(
                dcols,
                (batch, height, width, cin_per_group),
                self.kernel_size,
                self.kernel_size,
                self.stride,
                self.pad,
            )
        return (dx,)

    def params(self) -> dict[str, np.ndarray]:
        out = {"weight": self.weight}
        if self.use_bias:
            out["bias"] = self.bias
        return out

    def grads(self) -> dict[str, np.ndarray]:
        out = {"weight": self.dweight}
        if self.use_bias:
            out["bias"] = self.dbias
        return out


class Dense(Layer):
    """Fully connected layer operating on ``(batch, features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self.weight = he_normal(
            (self.in_features, self.out_features), fan_in=self.in_features, rng=rng
        )
        self.bias = zeros((self.out_features,)) if use_bias else None
        self.dweight = np.zeros_like(self.weight)
        self.dbias = np.zeros_like(self.bias) if use_bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name or 'Dense'}: expected (batch, {self.in_features}), got {x.shape}"
            )
        if training:
            self._x = x
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.dweight = self._x.T @ grad
        if self.use_bias:
            self.dbias = grad.sum(axis=0)
        return (grad @ self.weight.T,)

    def params(self) -> dict[str, np.ndarray]:
        out = {"weight": self.weight}
        if self.use_bias:
            out["bias"] = self.bias
        return out

    def grads(self) -> dict[str, np.ndarray]:
        out = {"weight": self.dweight}
        if self.use_bias:
            out["bias"] = self.dbias
        return out


class BatchNorm(Layer):
    """Batch normalization over the channel axis of NHWC (or feature axis of 2-D) inputs."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        self.channels = int(channels)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = np.ones(channels, dtype=np.float64)
        self.beta = np.zeros(channels, dtype=np.float64)
        self.running_mean = np.zeros(channels, dtype=np.float64)
        self.running_var = np.ones(channels, dtype=np.float64)
        self.dgamma = np.zeros_like(self.gamma)
        self.dbeta = np.zeros_like(self.beta)
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[-1] != self.channels:
            raise ValueError(
                f"{self.name or 'BatchNorm'}: expected {self.channels} channels, "
                f"got {x.shape[-1]}"
            )
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = {"x_hat": x_hat, "inv_std": inv_std, "axes": axes, "n": None}
        return self.gamma * x_hat + self.beta

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        axes = self._cache["axes"]
        n = float(np.prod([grad.shape[axis] for axis in axes]))
        self.dgamma = (grad * x_hat).sum(axis=axes)
        self.dbeta = grad.sum(axis=axes)
        dx_hat = grad * self.gamma
        dx = (
            dx_hat
            - dx_hat.mean(axis=axes)
            - x_hat * (dx_hat * x_hat).sum(axis=axes) / n
        ) * inv_std
        return (dx,)

    def params(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def grads(self) -> dict[str, np.ndarray]:
        return {"gamma": self.dgamma, "beta": self.dbeta}

    def state(self) -> dict[str, np.ndarray]:
        """Non-trainable state (running statistics) for serialization."""
        return {"running_mean": self.running_mean, "running_var": self.running_var}


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return (grad * self._mask,)


class _Pool2D(Layer):
    """Shared machinery of non-overlapping max / average pooling."""

    def __init__(self, pool_size: int = 2):
        self.pool_size = int(pool_size)
        self._cache: dict | None = None

    def _windows(self, x: np.ndarray) -> np.ndarray:
        batch, height, width, channels = x.shape
        p = self.pool_size
        if height % p or width % p:
            raise ValueError(
                f"pooling requires spatial dims divisible by {p}, got {(height, width)}"
            )
        return x.reshape(batch, height // p, p, width // p, p, channels)


class MaxPool2D(_Pool2D):
    """Non-overlapping max pooling (stride equals the pool size)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows = self._windows(x)
        out = windows.max(axis=(2, 4))
        if training:
            # Ties are resolved in backward by splitting the gradient evenly
            # among the maximal elements of the window.
            mask = windows == out[:, :, None, :, None, :]
            self._cache = {"mask": mask, "x_shape": x.shape}
        return out

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        mask = self._cache["mask"]
        counts = mask.sum(axis=(2, 4), keepdims=True)
        spread = grad[:, :, None, :, None, :] * mask / counts
        return (spread.reshape(self._cache["x_shape"]),)


class AvgPool2D(_Pool2D):
    """Non-overlapping average pooling."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows = self._windows(x)
        if training:
            self._cache = {"x_shape": x.shape}
        return windows.mean(axis=(2, 4))

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        p = self.pool_size
        batch, out_h, out_w, channels = grad.shape
        spread = np.broadcast_to(
            grad[:, :, None, :, None, :] / (p * p),
            (batch, out_h, p, out_w, p, channels),
        )
        return (spread.reshape(self._cache["x_shape"]),)


class GlobalAvgPool(Layer):
    """Average over the spatial dimensions: ``(N, H, W, C) -> (N, C)``."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        batch, height, width, channels = self._x_shape
        spread = np.broadcast_to(
            grad[:, None, None, :] / (height * width), self._x_shape
        )
        return (spread.copy(),)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        return (grad.reshape(self._x_shape),)


class Add(Layer):
    """Elementwise sum of several inputs (residual connections)."""

    def __init__(self, n_inputs: int = 2):
        self._n = int(n_inputs)

    @property
    def n_inputs(self) -> int:
        return self._n

    def forward(self, *inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if len(inputs) != self._n:
            raise ValueError(f"Add expects {self._n} inputs, got {len(inputs)}")
        out = inputs[0]
        for extra in inputs[1:]:
            out = out + extra
        return out

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(grad for _ in range(self._n))


class Concat(Layer):
    """Channel-axis concatenation of several inputs (Inception / ShuffleNet)."""

    def __init__(self, n_inputs: int):
        self._n = int(n_inputs)
        self._splits: list[int] | None = None

    @property
    def n_inputs(self) -> int:
        return self._n

    def forward(self, *inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if len(inputs) != self._n:
            raise ValueError(f"Concat expects {self._n} inputs, got {len(inputs)}")
        if training:
            self._splits = [x.shape[-1] for x in inputs]
        return np.concatenate(inputs, axis=-1)

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self._splits is None:
            raise RuntimeError("backward called before a training forward pass")
        out = []
        start = 0
        for width in self._splits:
            out.append(grad[..., start : start + width])
            start += width
        return tuple(out)


class ChannelShuffle(Layer):
    """ShuffleNet channel shuffle: interleave channels across groups."""

    def __init__(self, groups: int):
        self.groups = int(groups)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        channels = x.shape[-1]
        if channels % self.groups:
            raise ValueError(
                f"channels ({channels}) not divisible by groups ({self.groups})"
            )
        per_group = channels // self.groups
        shape = x.shape[:-1]
        reshaped = x.reshape(*shape, self.groups, per_group)
        return np.swapaxes(reshaped, -1, -2).reshape(*shape, channels)

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        channels = grad.shape[-1]
        per_group = channels // self.groups
        shape = grad.shape[:-1]
        reshaped = grad.reshape(*shape, per_group, self.groups)
        return (np.swapaxes(reshaped, -1, -2).reshape(*shape, channels),)


class Pad(Layer):
    """Zero-pad the channel axis (parameter-free ResNet "option A" shortcut)."""

    def __init__(self, extra_channels: int):
        self.extra_channels = int(extra_channels)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        pad_spec = [(0, 0)] * (x.ndim - 1) + [(0, self.extra_channels)]
        return np.pad(x, pad_spec, mode="constant")

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, ...]:
        if self.extra_channels == 0:
            return (grad,)
        return (grad[..., : -self.extra_channels],)
