"""im2col / col2im helpers for NHWC convolution.

Convolutions are lowered to matrix multiplications: every receptive-field
patch becomes one row of a ``(patches, kh*kw*cin)`` matrix, and the filters
become a ``(kh*kw*cin, cout)`` matrix.  This is also exactly the layout the
quantized / approximate executors need, because the systolic MAC array of
Section IV consumes one weight column per filter and streams activation
patches through it.

The gather indices depend only on the convolution geometry, so
:func:`im2col_indices` memoizes them (LRU, keyed by the geometry tuple):
repeated batches through the same layer — the common case in accuracy
sweeps — pay the index construction once.  The cached arrays are returned
read-only and shared between callers.
"""

from __future__ import annotations

import functools

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


@functools.lru_cache(maxsize=256)
def _cached_im2col_indices(
    height: int,
    width: int,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    base_r = np.repeat(np.arange(out_h) * stride, out_w)
    base_c = np.tile(np.arange(out_w) * stride, out_h)
    off_r = np.repeat(np.arange(kernel_h), kernel_w)
    off_c = np.tile(np.arange(kernel_w), kernel_h)
    rows = base_r[:, None] + off_r[None, :]
    cols = base_c[:, None] + off_c[None, :]
    rows.flags.writeable = False
    cols.flags.writeable = False
    return rows, cols, out_h, out_w


def im2col_indices(
    height: int,
    width: int,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Row/column gather indices for im2col on a padded ``(H, W)`` plane.

    Returns ``(rows, cols, out_h, out_w)`` where ``rows`` and ``cols`` have
    shape ``(out_h * out_w, kernel_h * kernel_w)`` and index into the padded
    input plane.  The index arrays are memoized per geometry and returned as
    shared read-only views.
    """
    return _cached_im2col_indices(
        int(height), int(width), int(kernel_h), int(kernel_w), int(stride), int(pad)
    )


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
    pad_value: float | int = 0,
) -> tuple[np.ndarray, int, int]:
    """Unfold an NHWC tensor into patch rows.

    Parameters
    ----------
    x:
        Input of shape ``(batch, height, width, channels)``.
    kernel_h, kernel_w, stride, pad:
        Convolution geometry (symmetric padding).
    pad_value:
        Constant used for the padded border (default 0).  The quantized
        executor unfolds uint8 *codes* rather than real values and pads with
        the zero-point code — the code of the real value 0 — so that
        quantize-then-unfold equals unfold-then-quantize elementwise.

    Returns
    -------
    (columns, out_h, out_w):
        ``columns`` has shape ``(batch * out_h * out_w, kernel_h * kernel_w *
        channels)`` with the tap ordering ``(kh, kw, channel)`` — matching the
        filter reshape used by :class:`repro.nn.layers.Conv2D`.
    """
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    batch, height, width, channels = x.shape
    if pad:
        x = np.pad(
            x,
            ((0, 0), (pad, pad), (pad, pad), (0, 0)),
            mode="constant",
            constant_values=pad_value,
        )
    rows, cols, out_h, out_w = im2col_indices(
        height, width, kernel_h, kernel_w, stride, pad
    )
    # Gather: result (batch, patches, taps_spatial, channels)
    patches = x[:, rows, cols, :]
    columns = patches.reshape(batch * out_h * out_w, kernel_h * kernel_w * channels)
    return columns, out_h, out_w


def col2im(
    columns: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold patch-row gradients back onto the (padded) input — adjoint of im2col."""
    batch, height, width, channels = input_shape
    rows, cols, out_h, out_w = im2col_indices(
        height, width, kernel_h, kernel_w, stride, pad
    )
    padded = np.zeros(
        (batch, height + 2 * pad, width + 2 * pad, channels), dtype=columns.dtype
    )
    patches = columns.reshape(batch, out_h * out_w, kernel_h * kernel_w, channels)
    # Scatter-add each tap back to its padded-plane position.
    np.add.at(padded, (slice(None), rows, cols, slice(None)), patches)
    if pad:
        return padded[:, pad:-pad, pad:-pad, :]
    return padded
