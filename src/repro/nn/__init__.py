"""Pure-numpy deep-learning engine (training and inference).

The paper evaluates six CIFAR networks through an approximate-hardware-aware
TensorFlow flow (TFApprox).  No deep-learning framework is available in this
environment, so this package provides the substrate from scratch:

* tensor layout: ``NHWC`` float32/float64 arrays;
* layers: convolution (incl. grouped / depthwise), dense, batch-norm, ReLU,
  pooling, global average pooling, residual add, concatenation, channel
  shuffle, flatten — each with forward *and* backward passes;
* models: :class:`~repro.nn.graph.Graph` (arbitrary DAGs, needed for the
  ResNet / GoogLeNet / ShuffleNet families) and
  :class:`~repro.nn.graph.Sequential`;
* training: softmax cross-entropy loss, SGD-with-momentum and Adam
  optimizers, a mini-batch :class:`~repro.nn.training.Trainer`;
* serialization of trained parameters to ``.npz``.

The engine is intentionally small but complete: every layer used by the six
reproduced architectures supports training, and the inference path is reused
by the quantized / approximate executors in :mod:`repro.simulation`.
"""

from repro.nn.im2col import im2col_indices, im2col, col2im, conv_output_size
from repro.nn.layers import (
    Layer,
    Conv2D,
    Dense,
    BatchNorm,
    ReLU,
    MaxPool2D,
    AvgPool2D,
    GlobalAvgPool,
    Flatten,
    Add,
    Concat,
    ChannelShuffle,
    Pad,
)
from repro.nn.graph import Graph, Sequential
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.optimizers import SGD, Adam
from repro.nn.training import Trainer, TrainingResult, evaluate_accuracy
from repro.nn.serialization import save_params, load_params

__all__ = [
    "im2col_indices",
    "im2col",
    "col2im",
    "conv_output_size",
    "Layer",
    "Conv2D",
    "Dense",
    "BatchNorm",
    "ReLU",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool",
    "Flatten",
    "Add",
    "Concat",
    "ChannelShuffle",
    "Pad",
    "Graph",
    "Sequential",
    "softmax",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingResult",
    "evaluate_accuracy",
    "save_params",
    "load_params",
]
