"""Tensor quantization, dequantization and calibration helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantization.schemes import QMAX, QMIN, QuantParams


def calibrate_minmax(tensor: np.ndarray) -> QuantParams:
    """Derive quantization parameters from the min/max of ``tensor``."""
    arr = np.asarray(tensor, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot calibrate an empty tensor")
    return QuantParams.from_range(float(arr.min()), float(arr.max()))


def calibrate_percentile(tensor: np.ndarray, percentile: float = 99.9) -> QuantParams:
    """Derive quantization parameters from symmetric percentiles.

    Clipping a small fraction of outliers typically improves post-training
    quantization accuracy for activation tensors with long tails.

    Parameters
    ----------
    tensor:
        Observed activation samples.
    percentile:
        Upper percentile to keep, in ``(50, 100]``.  ``100`` degenerates to
        min/max calibration.
    """
    if not 50.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (50, 100], got {percentile}")
    arr = np.asarray(tensor, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot calibrate an empty tensor")
    lo = float(np.percentile(arr, 100.0 - percentile))
    hi = float(np.percentile(arr, percentile))
    return QuantParams.from_range(lo, hi)


def quantize(
    tensor: np.ndarray, params: QuantParams, out: np.ndarray | None = None
) -> np.ndarray:
    """Quantize a real tensor to uint8 codes using ``params``.

    Parameters
    ----------
    tensor:
        Real-valued input of any shape.
    params:
        Quantization parameters.
    out:
        Optional preallocated uint8 array of the same shape receiving the
        codes — lets hot loops (e.g. the approximate executor) reuse a
        batch-persistent buffer instead of allocating per call.
    """
    arr = np.asarray(tensor, dtype=np.float64)
    q = np.rint(arr / params.scale) + params.zero_point
    np.clip(q, QMIN, QMAX, out=q)
    if out is None:
        return q.astype(np.uint8)
    if out.dtype != np.uint8 or out.shape != arr.shape:
        raise ValueError(
            f"out must be uint8 with shape {arr.shape}, got {out.dtype} {out.shape}"
        )
    np.copyto(out, q, casting="unsafe")
    return out


def dequantize(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Recover real values from uint8 codes."""
    q = np.asarray(codes, dtype=np.float64)
    return (q - float(params.zero_point)) * params.scale


@dataclass(frozen=True)
class QuantizedTensor:
    """A uint8 tensor bundled with its quantization parameters."""

    codes: np.ndarray
    params: QuantParams

    def __post_init__(self) -> None:
        if self.codes.dtype != np.uint8:
            raise TypeError(f"codes must be uint8, got {self.codes.dtype}")

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.codes.shape)

    def dequantize(self) -> np.ndarray:
        """Return the real-valued tensor represented by this object."""
        return dequantize(self.codes, self.params)


def quantize_tensor(
    tensor: np.ndarray, params: QuantParams | None = None
) -> QuantizedTensor:
    """Quantize ``tensor``, calibrating parameters from it when not given."""
    if params is None:
        params = calibrate_minmax(tensor)
    return QuantizedTensor(codes=quantize(tensor, params), params=params)
