"""Affine uint8 quantization parameters.

A real value ``r`` is represented by an unsigned 8-bit integer ``q`` through

    r = scale * (q - zero_point)

which is the scheme used by TensorFlow-Lite style integer inference and by
the TFApprox flow the paper builds on.  Both weights and activations use
unsigned 8-bit codes so that the hardware multiplier is an unsigned 8x8
multiplier, matching the MAC unit of Section IV of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Number of representable uint8 levels.
UINT8_LEVELS = 256

#: Smallest representable code.
QMIN = 0

#: Largest representable code.
QMAX = 255


@dataclass(frozen=True)
class QuantParams:
    """Scale / zero-point pair of an affine uint8 quantizer.

    Attributes
    ----------
    scale:
        Positive real step size between adjacent integer codes.
    zero_point:
        Integer code that represents the real value ``0.0``.  Always within
        ``[0, 255]`` so that zero is exactly representable (important for
        zero padding in convolutions).
    """

    scale: float
    zero_point: int

    def __post_init__(self) -> None:
        if not np.isfinite(self.scale) or self.scale <= 0.0:
            raise ValueError(f"scale must be positive and finite, got {self.scale}")
        if not QMIN <= self.zero_point <= QMAX:
            raise ValueError(
                f"zero_point must be within [{QMIN}, {QMAX}], got {self.zero_point}"
            )

    @classmethod
    def from_range(cls, rmin: float, rmax: float) -> "QuantParams":
        """Build parameters covering the real range ``[rmin, rmax]``.

        The range is first expanded (if needed) to include zero so the zero
        point is exactly representable, as required for padding and for the
        bias-free formulation of the integer convolution.
        """
        rmin = float(min(rmin, 0.0))
        rmax = float(max(rmax, 0.0))
        if rmax == rmin:
            # Degenerate all-zero tensor: pick an arbitrary unit scale.
            return cls(scale=1.0, zero_point=0)
        scale = (rmax - rmin) / float(QMAX - QMIN)
        if scale <= 0.0:
            # A subnormal range underflows the division to zero; every value
            # in it quantizes to the zero code, so a unit scale is as exact
            # as any other positive one.
            return cls(scale=1.0, zero_point=0)
        zero_point = int(round(QMIN - rmin / scale))
        zero_point = int(np.clip(zero_point, QMIN, QMAX))
        return cls(scale=scale, zero_point=zero_point)

    def quantize_value(self, r: float) -> int:
        """Quantize a single real value to its uint8 code."""
        q = int(round(r / self.scale)) + self.zero_point
        return int(np.clip(q, QMIN, QMAX))

    def dequantize_value(self, q: int) -> float:
        """Recover the real value represented by code ``q``."""
        return self.scale * (float(q) - float(self.zero_point))

    @property
    def range(self) -> tuple[float, float]:
        """Real range exactly representable by this quantizer."""
        return (
            self.scale * (QMIN - self.zero_point),
            self.scale * (QMAX - self.zero_point),
        )
