"""8-bit quantization substrate.

The paper's accelerator operates on unsigned 8-bit quantized weights and
activations (the weight histograms in Fig. 1 span ``0..255``).  This package
provides the affine (asymmetric) quantization scheme used throughout the
reproduction:

* :class:`~repro.quantization.schemes.QuantParams` — scale / zero-point pair
  describing a uint8 affine quantizer.
* :func:`~repro.quantization.quantize.quantize` /
  :func:`~repro.quantization.quantize.dequantize` — tensor conversion.
* :func:`~repro.quantization.quantize.calibrate_minmax` /
  :func:`~repro.quantization.quantize.calibrate_percentile` — derive
  quantization parameters from observed tensors.
* :class:`~repro.quantization.qlayers.QuantizedLinearOp` — the integer
  matrix-multiply core shared by quantized convolution and dense layers,
  with a pluggable product model (accurate or approximate multiplier).
"""

from repro.quantization.schemes import QuantParams, UINT8_LEVELS
from repro.quantization.quantize import (
    quantize,
    dequantize,
    calibrate_minmax,
    calibrate_percentile,
    quantize_tensor,
)
from repro.quantization.qlayers import QuantizedLinearOp

__all__ = [
    "QuantParams",
    "UINT8_LEVELS",
    "quantize",
    "dequantize",
    "calibrate_minmax",
    "calibrate_percentile",
    "quantize_tensor",
    "QuantizedLinearOp",
]
