"""Integer execution core shared by quantized convolution and dense layers.

With the affine scheme ``r = s (q - z)`` a real dot product of ``k`` taps
expands into integer arithmetic as

    sum_j w_j a_j = s_w s_a * ( sum_j wq_j aq_j
                                - z_w sum_j aq_j
                                - z_a sum_j wq_j
                                + k z_w z_a )

Only the first term, ``sum_j wq_j aq_j``, involves per-element products and
is therefore the term executed on the (possibly approximate) MAC array.  The
remaining terms are exact integer corrections.  :class:`QuantizedLinearOp`
keeps the weights and the exact correction terms and accepts the raw product
sum from any product model — the accurate matmul by default, or the
approximate / control-variate-corrected sums produced by
:mod:`repro.core.approx_conv`.
"""

from __future__ import annotations

import numpy as np

from repro.quantization.schemes import QuantParams


class QuantizedLinearOp:
    """A quantized ``(patches x taps) @ (taps x filters)`` operation.

    Parameters
    ----------
    weight_codes:
        uint8 array of shape ``(taps, filters)`` — the quantized weights laid
        out exactly as the MAC array consumes them (one column per filter).
    weight_params:
        Quantization parameters of the weights.
    bias:
        Optional real-valued bias per filter, added after dequantization.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        weight_params: QuantParams,
        bias: np.ndarray | None = None,
    ):
        weight_codes = np.asarray(weight_codes)
        if weight_codes.ndim != 2:
            raise ValueError(
                f"weight_codes must be 2-D (taps, filters), got {weight_codes.shape}"
            )
        if weight_codes.dtype != np.uint8:
            raise TypeError(f"weight_codes must be uint8, got {weight_codes.dtype}")
        self.weight_codes = weight_codes
        self.weight_params = weight_params
        self.taps, self.filters = weight_codes.shape
        if bias is None:
            bias = np.zeros(self.filters, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (self.filters,):
            raise ValueError(f"bias must have shape ({self.filters},), got {bias.shape}")
        self.bias = bias
        # Exact per-filter weight-code sums used by the zero-point correction.
        self._weight_code_sums = weight_codes.astype(np.int64).sum(axis=0)

    # ------------------------------------------------------------------
    def exact_product_sum(self, act_codes: np.ndarray) -> np.ndarray:
        """Accurate ``sum_j wq_j aq_j`` for every (patch, filter) pair."""
        act = self._check_activations(act_codes)
        return act.astype(np.int64) @ self.weight_codes.astype(np.int64)

    def output_real(
        self,
        act_codes: np.ndarray,
        act_params: QuantParams,
        product_sum: np.ndarray | None = None,
    ) -> np.ndarray:
        """Dequantized real output of the quantized linear operation.

        Parameters
        ----------
        act_codes:
            uint8 activations of shape ``(patches, taps)``.
        act_params:
            Quantization parameters of the activations.
        product_sum:
            Raw ``sum_j product(wq_j, aq_j)`` of shape ``(patches, filters)``.
            When ``None``, the exact sum is used.  Approximate product models
            (perforation, LUT multipliers, control-variate correction) pass
            their own sums here.
        """
        act = self._check_activations(act_codes)
        if product_sum is None:
            product_sum = self.exact_product_sum(act)
        product_sum = np.asarray(product_sum, dtype=np.float64)
        expected = (act.shape[0], self.filters)
        if product_sum.shape != expected:
            raise ValueError(
                f"product_sum must have shape {expected}, got {product_sum.shape}"
            )
        act_sums = act.astype(np.int64).sum(axis=1, keepdims=True).astype(np.float64)
        z_w = float(self.weight_params.zero_point)
        z_a = float(act_params.zero_point)
        corrected = (
            product_sum
            - z_w * act_sums
            - z_a * self._weight_code_sums.astype(np.float64)[None, :]
            + float(self.taps) * z_w * z_a
        )
        scale = self.weight_params.scale * act_params.scale
        return scale * corrected + self.bias[None, :]

    def output_real_stacked(
        self,
        act_codes: np.ndarray,
        act_params: QuantParams,
        product_sums: np.ndarray,
        plans: int,
    ) -> np.ndarray:
        """Dequantized outputs of ``plans`` product-sum blocks sharing one
        activation block (block ``p`` = rows ``[p*N, (p+1)*N)``).

        Bit-exact with tiling ``act_codes`` ``plans`` times and calling
        :meth:`output_real` once — every correction is elementwise with the
        same operands in the same order — but the act-dependent terms
        (the int64 widening + per-patch sums of the shared codes) are
        computed once instead of once per block.
        """
        act = self._check_activations(act_codes)
        product_sums = np.array(product_sums, dtype=np.float64)
        n = act.shape[0]
        expected = (plans * n, self.filters)
        if product_sums.shape != expected:
            raise ValueError(
                f"product_sums must have shape {expected}, got {product_sums.shape}"
            )
        # int64-accumulated reduce: identical sums to astype(int64).sum()
        # (integer arithmetic) without materializing the 8x-wider act
        # temporary on the stacked hot path.
        act_sums = act.sum(axis=1, keepdims=True, dtype=np.int64).astype(np.float64)
        z_w = float(self.weight_params.zero_point)
        z_a = float(act_params.zero_point)
        # The elementwise operations and their order match output_real
        # exactly (bit-exact results); they are applied in place on the
        # owned float64 copy, sparing one (plans*n, filters) temporary per
        # step of the correction chain.
        out = product_sums.reshape(plans, n, self.filters)
        np.subtract(out, (z_w * act_sums)[None], out=out)
        np.subtract(
            out, (z_a * self._weight_code_sums.astype(np.float64))[None, None, :],
            out=out,
        )
        np.add(out, float(self.taps) * z_w * z_a, out=out)
        scale = self.weight_params.scale * act_params.scale
        np.multiply(out, scale, out=out)
        np.add(out, self.bias[None, None, :], out=out)
        return out.reshape(expected)

    # ------------------------------------------------------------------
    def _check_activations(self, act_codes: np.ndarray) -> np.ndarray:
        act = np.asarray(act_codes)
        if act.ndim != 2 or act.shape[1] != self.taps:
            raise ValueError(
                f"activations must have shape (patches, {self.taps}), got {act.shape}"
            )
        if act.dtype != np.uint8:
            raise TypeError(f"activations must be uint8, got {act.dtype}")
        return act
