"""One stats schema for the whole runtime stack.

Before the jobs layer, every call site shaped its counters ad hoc —
``EvaluationService.stats()`` returned one flat dict, DSE campaign stats
another, and ``repro info`` a third.  This module pins the shared shape:

.. code-block:: json

    {
      "schema": "repro-runtime-stats/v1.1",
      "engine":   { "requested_workers": ..., "workers": ..., ... },
      "jobs":     { "submitted": ..., "depth": ..., "rejected": ..., ... },
      "cache":    { "entries": ..., "hits": ..., "misses": ..., "evictions": ..., ... },
      "sessions": { "<session id>": { ... }, ... }
    }

``engine`` is always present; the jobs-layer sections appear exactly when
the emitting object has that layer (a bare
:class:`~repro.runtime.service.EvaluationService` reports only
``engine``).  ``requested_workers`` vs ``workers`` is the one contract
every emitter follows: the former is what the caller asked for (``None``
for auto-sizing), the latter the effective pool size actually running.

v1.1 extends ``engine`` *additively* with the fused multi-plan
observability counters (``fused_launches``, ``fused_plans_total``,
``plans_per_launch_avg``) and the cross-plan reuse cache counters
(``prefix_cache_hits``/``misses``, ``act_cache_hits``/``misses``); every
v1 key keeps its meaning, so v1 consumers keep working.
"""

from __future__ import annotations

#: Version tag embedded in every stats payload.
STATS_SCHEMA = "repro-runtime-stats/v1.1"


def runtime_stats(
    engine: dict,
    jobs: dict | None = None,
    cache: dict | None = None,
    sessions: dict | None = None,
) -> dict:
    """Assemble one schema-tagged stats payload from per-layer sections."""
    stats: dict = {"schema": STATS_SCHEMA, "engine": dict(engine)}
    if jobs is not None:
        stats["jobs"] = dict(jobs)
    if cache is not None:
        stats["cache"] = dict(cache)
    if sessions is not None:
        stats["sessions"] = dict(sessions)
    return stats


__all__ = ["STATS_SCHEMA", "runtime_stats"]
