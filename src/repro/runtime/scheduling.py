"""Prefix-aware scheduling of evaluation cells.

An evaluation *cell* is one ``(model, plan)`` pair.  Consecutive cells that
share a per-layer fingerprint prefix let the executor's plan-context
checkpoints resume mid-network instead of re-running the shared prefix
(:meth:`repro.simulation.inference.ApproximateExecutor.set_plan_context`),
so the order cells run in is a first-order performance knob.  This module
owns that ordering:

* :func:`order_plan_cells` — the classic sweep schedule over a
  ``models x plans`` cross product, returning ``(model_index, plan_index)``
  pairs grouped by model and sorted lexicographically by fingerprint;
* :func:`schedule_cells` — the generalization the
  :class:`~repro.runtime.service.EvaluationService` uses for *arbitrary*
  submitted cell lists (any mix of models and plans), returning a
  permutation of cell indices;
* :func:`contiguous_chunks` — the worker-chunking contract: equal ceil-div
  slices of the schedule, so each worker receives one contiguous block and
  the adjacency arranged by the sort survives distribution.

Sorting is stable everywhere: cells with identical fingerprints keep their
input order, which the scheduler edge-case tests pin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, TypeVar

from repro.simulation.inference import ExecutionPlan, plan_fingerprint_sort_key

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.simulation.campaign import TrainedModel

T = TypeVar("T")


def model_mac_names(trained: "TrainedModel") -> tuple[str, ...]:
    """MAC (conv/dense) layer names of one trained model, in execution order.

    The same key the executor's checkpoint-depth computation uses, so
    schedule adjacency matches the checkpoint structure exactly.
    """
    return tuple(node.name for node in trained.model.conv_dense_nodes())


def schedule_cells(
    cells: Sequence[tuple[int, ExecutionPlan]],
    mac_names_by_model: dict[int, tuple[str, ...]],
) -> list[int]:
    """Prefix-aware execution order of arbitrary ``(model_index, plan)`` cells.

    Returns a permutation of ``range(len(cells))``: cells are grouped by
    model (ascending index) and, within one model, ordered
    lexicographically by the plan's per-MAC-layer fingerprint sequence —
    plans sharing a layer prefix become adjacent.  The sort is stable, so
    behaviorally identical plans keep their submission order.
    """
    keys: list[tuple[int, tuple[str, ...]]] = []
    for model_index, plan in cells:
        names = mac_names_by_model[model_index]
        keys.append((model_index, plan_fingerprint_sort_key(plan.fingerprints(names))))
    return sorted(range(len(cells)), key=keys.__getitem__)


def order_plan_cells(
    models: "list[TrainedModel]", plans: Sequence[tuple[str, ExecutionPlan]]
) -> list[tuple[int, int]]:
    """Prefix-aware cell schedule of a ``models x plans`` sweep.

    Cells are grouped by model (one calibrated executor per model is kept
    per worker), and within one model the plans are ordered
    lexicographically by their per-MAC-layer fingerprint sequence.  Plans
    sharing a layer prefix therefore become *adjacent*, which maximizes the
    executor's prefix-checkpoint and activation-code cache hits when cells
    run in schedule order.
    """
    cells: list[tuple[int, int]] = []
    for model_index, trained in enumerate(models):
        mac_names = model_mac_names(trained)
        sort_keys = {
            plan_index: plan_fingerprint_sort_key(plan.fingerprints(mac_names))
            for plan_index, (_, plan) in enumerate(plans)
        }
        ordered = sorted(range(len(plans)), key=sort_keys.__getitem__)
        cells.extend((model_index, plan_index) for plan_index in ordered)
    return cells


def contiguous_chunks(schedule: Sequence[T], max_chunks: int) -> list[list[T]]:
    """Split ``schedule`` into at most ``max_chunks`` contiguous slices.

    Equal ceil-div chunk sizes (the last chunk may be shorter) so the
    chunks cover the schedule exactly, in order — each worker receives one
    contiguous block and prefix-sharing neighbors stay on the same worker.
    """
    if not schedule:
        return []
    if max_chunks < 1:
        raise ValueError("max_chunks must be a positive integer")
    chunksize = -(-len(schedule) // max_chunks)  # ceil-div
    return [
        list(schedule[i : i + chunksize]) for i in range(0, len(schedule), chunksize)
    ]


__all__ = [
    "model_mac_names",
    "schedule_cells",
    "order_plan_cells",
    "contiguous_chunks",
]
