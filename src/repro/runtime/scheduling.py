"""Prefix-aware scheduling of evaluation cells.

An evaluation *cell* is one ``(model, plan)`` pair.  Consecutive cells that
share a per-layer fingerprint prefix let the executor's plan-context
checkpoints resume mid-network instead of re-running the shared prefix
(:meth:`repro.simulation.inference.ApproximateExecutor.set_plan_context`),
so the order cells run in is a first-order performance knob.  This module
owns that ordering:

* :func:`order_plan_cells` — the classic sweep schedule over a
  ``models x plans`` cross product, returning ``(model_index, plan_index)``
  pairs grouped by model and sorted lexicographically by fingerprint;
* :func:`schedule_cells` — the generalization the
  :class:`~repro.runtime.service.EvaluationService` uses for *arbitrary*
  submitted cell lists (any mix of models and plans), returning a
  permutation of cell indices;
* :func:`contiguous_chunks` — the count-balanced worker-chunking contract:
  ``min(len(schedule), max_chunks)`` contiguous slices whose sizes differ
  by at most one, so each worker receives one contiguous block and the
  adjacency arranged by the sort survives distribution;
* :func:`cost_balanced_chunks` — the cost-model-driven generalization: the
  schedule is partitioned by *predicted cell cost*
  (:class:`~repro.runtime.cost_model.CellCostModel`) instead of cell
  count, with cuts nudged toward prefix-divergence boundaries
  (:func:`shared_prefix_depths`) so splitting loses as little checkpoint
  reuse as possible.  This is what stops one LUT-heavy chunk from
  straggling a whole batch.

Every chunking function preserves the prefix-adjacency contract: chunks
are contiguous slices of the schedule, concatenating them reproduces the
schedule exactly, and chunking never changes *what* is evaluated — only
where it runs.  Sorting is stable everywhere: cells with identical
fingerprints keep their input order, which the scheduler edge-case tests
pin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence, TypeVar

from repro.simulation.inference import ExecutionPlan, plan_fingerprint_sort_key

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.simulation.campaign import TrainedModel

T = TypeVar("T")

#: Default cap on how many plans one fused multi-plan launch stacks.  The
#: fused path's memory scales with the stacked block count at the deepest
#: divergence (every live activation is repeated per diverging plan), so
#: groups are bounded; 8 keeps the stacked activations of the reference
#: networks within the footprint of a few per-plan batches while already
#: amortizing nearly all of the per-launch dispatch overhead.
DEFAULT_PLAN_GROUP_SIZE = 8


def model_mac_names(trained: "TrainedModel") -> tuple[str, ...]:
    """MAC (conv/dense) layer names of one trained model, in execution order.

    The same key the executor's checkpoint-depth computation uses, so
    schedule adjacency matches the checkpoint structure exactly.
    """
    return tuple(node.name for node in trained.model.conv_dense_nodes())


def schedule_cells(
    cells: Sequence[tuple[int, ExecutionPlan]],
    mac_names_by_model: dict[int, tuple[str, ...]],
) -> list[int]:
    """Prefix-aware execution order of arbitrary ``(model_index, plan)`` cells.

    Returns a permutation of ``range(len(cells))``: cells are grouped by
    model (ascending index) and, within one model, ordered
    lexicographically by the plan's per-MAC-layer fingerprint sequence —
    plans sharing a layer prefix become adjacent.  The sort is stable, so
    behaviorally identical plans keep their submission order.
    """
    keys: list[tuple[int, tuple[str, ...]]] = []
    for model_index, plan in cells:
        names = mac_names_by_model[model_index]
        keys.append((model_index, plan_fingerprint_sort_key(plan.fingerprints(names))))
    return sorted(range(len(cells)), key=keys.__getitem__)


def order_plan_cells(
    models: "list[TrainedModel]", plans: Sequence[tuple[str, ExecutionPlan]]
) -> list[tuple[int, int]]:
    """Prefix-aware cell schedule of a ``models x plans`` sweep.

    Cells are grouped by model (one calibrated executor per model is kept
    per worker), and within one model the plans are ordered
    lexicographically by their per-MAC-layer fingerprint sequence.  Plans
    sharing a layer prefix therefore become *adjacent*, which maximizes the
    executor's prefix-checkpoint and activation-code cache hits when cells
    run in schedule order.
    """
    cells: list[tuple[int, int]] = []
    for model_index, trained in enumerate(models):
        mac_names = model_mac_names(trained)
        sort_keys = {
            plan_index: plan_fingerprint_sort_key(plan.fingerprints(mac_names))
            for plan_index, (_, plan) in enumerate(plans)
        }
        ordered = sorted(range(len(plans)), key=sort_keys.__getitem__)
        cells.extend((model_index, plan_index) for plan_index in ordered)
    return cells


def plan_group_slices(
    schedule: Sequence[tuple[int, ExecutionPlan]],
    max_group_plans: int = DEFAULT_PLAN_GROUP_SIZE,
    split_depths: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """Plan-group boundaries of a prefix-sorted schedule, as ``(start, stop)``.

    A *plan group* is a maximal run of consecutive same-model cells, capped
    at ``max_group_plans`` — the unit one fused multi-plan launch evaluates
    (:meth:`repro.simulation.inference.ApproximateExecutor.forward_many`)
    and the granularity :func:`cost_balanced_chunks` should cut at so a
    group is never split across workers.  On a fingerprint-sorted schedule
    the cells of a group share the deepest prefixes the plan set offers, so
    the fused walk dedupes maximal work.  Concatenating the slices covers
    ``schedule`` exactly, in order.

    ``split_depths`` (from :func:`shared_prefix_depths`, one entry per
    consecutive-cell boundary) additionally aligns groups with *divergence
    families*: a group also ends where the next boundary's agreement depth
    drops below the shallowest depth already inside the group.  On a
    fingerprint-sorted schedule a per-layer sensitivity screen produces
    runs of plans that all diverge at one layer (constant boundary depth)
    separated by depth drops; cutting at the drops keeps each family —
    whose members share their divergence layer's input, the sharing the
    fused launch actually exploits — in one launch instead of splitting it
    at an arbitrary count boundary.
    """
    if int(max_group_plans) < 1:
        raise ValueError(
            f"max_group_plans must be a positive integer, got {max_group_plans}"
        )
    if split_depths is not None and len(split_depths) < len(schedule) - 1:
        raise ValueError(
            f"need one depth per cell boundary: {len(split_depths)} depths "
            f"for {len(schedule)} cells"
        )
    slices: list[tuple[int, int]] = []
    start = 0
    while start < len(schedule):
        stop = start
        model_index = schedule[start][0]
        group_depth: int | None = None
        while (
            stop < len(schedule)
            and schedule[stop][0] == model_index
            and stop - start < int(max_group_plans)
        ):
            if split_depths is not None and stop > start:
                boundary = int(split_depths[stop - 1])
                if group_depth is not None and boundary < group_depth:
                    break
                group_depth = (
                    boundary if group_depth is None else min(group_depth, boundary)
                )
            stop += 1
        slices.append((start, stop))
        start = stop
    return slices


def contiguous_chunks(schedule: Sequence[T], max_chunks: int) -> list[list[T]]:
    """Split ``schedule`` into count-balanced contiguous slices.

    Exactly ``min(len(schedule), max_chunks)`` non-empty chunks whose sizes
    differ by at most one, covering the schedule exactly, in order — each
    worker receives one contiguous block and prefix-sharing neighbors stay
    on the same worker.

    (The historical ceil-div split could leave workers idle: 9 cells on 8
    workers produced 5 chunks of 2 with 3 workers unemployed; the balanced
    split produces 8 chunks — one of 2, seven of 1.)
    """
    if not schedule:
        return []
    if max_chunks < 1:
        raise ValueError("max_chunks must be a positive integer")
    num_chunks = min(len(schedule), int(max_chunks))
    base, extra = divmod(len(schedule), num_chunks)
    chunks: list[list[T]] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(list(schedule[start : start + size]))
        start += size
    return chunks


def shared_prefix_depths(
    schedule: Sequence[tuple[int, ExecutionPlan]],
    mac_names_by_model: Mapping[int, Sequence[str]],
) -> list[int]:
    """Fingerprint-agreement depth between consecutive scheduled cells.

    ``depths[i]`` is the number of leading MAC layers on which
    ``schedule[i]`` and ``schedule[i + 1]`` compute bit-identical
    activations (0 when the cells belong to different models).  A cut at a
    zero-depth boundary costs no checkpoint reuse at all; a cut at depth
    ``d`` re-runs a ``d``-layer prefix once — which is what
    :func:`cost_balanced_chunks` minimizes when placing cuts.
    """
    depths: list[int] = []
    fingerprints = [
        plan.fingerprints(mac_names_by_model[model_index])
        for model_index, plan in schedule
    ]
    for index in range(len(schedule) - 1):
        if schedule[index][0] != schedule[index + 1][0]:
            depths.append(0)
            continue
        left, right = fingerprints[index], fingerprints[index + 1]
        depth = 0
        for a, b in zip(left, right):
            if a != b:
                break
            depth += 1
        depths.append(depth)
    return depths


def cost_balanced_chunks(
    schedule: Sequence[T],
    costs: Sequence[float],
    max_chunks: int,
    split_depths: Sequence[int] | None = None,
) -> list[list[T]]:
    """Split ``schedule`` into contiguous chunks of near-equal predicted cost.

    Exactly ``min(len(schedule), max_chunks)`` non-empty contiguous slices
    covering the schedule in order (the same adjacency contract as
    :func:`contiguous_chunks`), but balanced by the per-cell ``costs``
    instead of cell count: the ``j``-th cut lands where the cumulative
    cost is closest to ``total * j / k``, so a schedule with one expensive
    (LUT-heavy) tail yields one small expensive chunk and several larger
    cheap ones — the shape work stealing needs.

    ``split_depths`` (from :func:`shared_prefix_depths`) optionally biases
    each cut toward prefix-divergence boundaries: cutting where
    consecutive cells share a deep fingerprint prefix re-runs that prefix
    once, so such positions pay a penalty proportional to their depth
    (in units of the mean cell cost) when competing for the cut.

    Degenerates to :func:`contiguous_chunks` when the costs carry no
    information (all zero/non-positive total).
    """
    if not schedule:
        return []
    if max_chunks < 1:
        raise ValueError("max_chunks must be a positive integer")
    if len(costs) != len(schedule):
        raise ValueError(
            f"need one cost per cell: {len(costs)} costs for "
            f"{len(schedule)} cells"
        )
    n = len(schedule)
    k = min(n, int(max_chunks))
    total = float(sum(max(0.0, float(cost)) for cost in costs))
    if k <= 1:
        return [list(schedule)]
    if total <= 0.0:
        return contiguous_chunks(schedule, k)
    cumulative = [0.0]
    for cost in costs:
        cumulative.append(cumulative[-1] + max(0.0, float(cost)))
    mean_cost = total / n
    max_depth = max(split_depths, default=0) if split_depths else 0
    cuts = [0]
    for j in range(1, k):
        ideal = total * j / k
        # Leave at least one cell for every chunk still to come.
        lo = cuts[-1] + 1
        hi = n - (k - j)
        best_pos = lo
        best_penalty = float("inf")
        for pos in range(lo, hi + 1):
            penalty = abs(cumulative[pos] - ideal)
            if split_depths and max_depth > 0:
                # Cutting between pos-1 and pos re-runs a shared prefix of
                # this depth once; price that against the balance gain.
                penalty += (split_depths[pos - 1] / max_depth) * mean_cost
            if penalty < best_penalty:
                best_penalty = penalty
                best_pos = pos
        cuts.append(best_pos)
    cuts.append(n)
    return [list(schedule[cuts[i] : cuts[i + 1]]) for i in range(k)]


__all__ = [
    "DEFAULT_PLAN_GROUP_SIZE",
    "model_mac_names",
    "schedule_cells",
    "order_plan_cells",
    "plan_group_slices",
    "contiguous_chunks",
    "shared_prefix_depths",
    "cost_balanced_chunks",
]
