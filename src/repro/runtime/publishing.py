"""Publish-once shared-memory channel for trained models and datasets.

The evaluation runtime never ships a private copy of every trained model —
or of the evaluation datasets, which dwarf the weights for small models —
to every worker process.  Both ride the generic
:class:`repro.core.shared_store.SharedArrayStore` (one POSIX
``multiprocessing.shared_memory`` block, memory-mapped temp file fallback):

* :func:`publish_trained_models` pickles each model with its parameter
  arrays replaced by persistent-id tokens, so the model *structure* travels
  by pickle while the parameter *data* lives once in the shared block;
* :func:`publish_datasets` tokenizes the train/test image and label arrays
  of every dataset the same way.

Workers attach **read-only views into the shared block**
(:meth:`SharedTrainedModels.attach` / :meth:`SharedDatasets.attach`), so N
workers hold one copy of the bytes instead of N.  The publishing process —
in practice the :class:`~repro.runtime.service.EvaluationService` — calls
``unlink`` exactly once, after all consumers are done.

This module is the extraction of the publisher/pickler machinery that
historically lived in :mod:`repro.simulation.campaign`; the campaign module
re-exports every public name for backward compatibility.
"""

from __future__ import annotations

import io
import pickle
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.shared_store import SharedArrayStore
from repro.datasets.synthetic import Dataset

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.simulation.campaign import TrainedModel


class _ParamPickler(pickle.Pickler):
    """Pickler externalizing registered parameter arrays as persistent ids.

    Arrays registered (by object identity) in ``tokens`` are emitted as a
    token string instead of their bytes; everything else pickles normally.
    This keeps the model *structure* in the pickle while the parameter
    *data* lives once in the shared block.
    """

    def __init__(self, file, tokens: dict[int, str]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._tokens = tokens

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray):
            return self._tokens.get(id(obj))
        return None


class _ParamUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent-id tokens to views of a shared store."""

    def __init__(self, file, store: SharedArrayStore):
        super().__init__(file)
        self._store = store

    def persistent_load(self, token):
        return self._store.get(token)


class SharedTrainedModels:
    """Trained models published once for zero-copy attachment by workers.

    Produced by :func:`publish_trained_models`.  The parameter arrays of
    every model live in one :class:`~repro.core.shared_store.SharedArrayStore`
    block (POSIX shared memory, or a memory-mapped temp file as fallback —
    see :attr:`kind`); the pickled models reference them via persistent-id
    tokens.  :meth:`attach` rebuilds the :class:`TrainedModel` list with
    parameters as read-only views into the block, never copying them.  The
    publishing process must call :meth:`unlink` once all consumers are done.
    """

    def __init__(self, pickles: list[bytes], store: SharedArrayStore):
        self.pickles = pickles
        self.store = store
        self._models: "list[TrainedModel] | None" = None

    # Back-compat accessors mirroring the pre-SharedArrayStore attributes.
    @property
    def spec(self) -> dict[str, tuple[int, tuple, str]]:
        return self.store.spec

    @property
    def kind(self) -> str:
        return self.store.kind

    @property
    def name(self) -> str:
        return self.store.name

    @property
    def size(self) -> int:
        return self.store.size

    def __getstate__(self):
        # The per-process model cache never travels to workers.
        state = self.__dict__.copy()
        state["_models"] = None
        return state

    def attach(self) -> "list[TrainedModel]":
        """Models with parameters viewing the shared block (cached per process)."""
        if self._models is None:
            self._models = [
                _ParamUnpickler(io.BytesIO(blob), self.store).load()
                for blob in self.pickles
            ]
        return self._models

    def nbytes_shared(self) -> int:
        """Total parameter bytes placed in the shared block."""
        return self.store.nbytes_shared()

    def unlink(self) -> None:
        """Release the shared block (publisher side; idempotent)."""
        self._models = None
        self.store.unlink()


def publish_trained_models(
    trained_models: "Iterable[TrainedModel]",
    prefer_shared_memory: bool = True,
) -> SharedTrainedModels:
    """Publish the parameter arrays of ``trained_models`` for worker attachment.

    Every array returned by each model's ``state_dict`` (weights, biases,
    batch-norm statistics) is copied once into a single shared block, and
    each :class:`TrainedModel` is pickled with those arrays externalized.
    Workers call :meth:`SharedTrainedModels.attach` to rebuild the models
    with parameters as read-only views — no per-worker copies, no re-pickling
    of parameter data.

    POSIX shared memory is used when available; when it cannot be created
    (or ``prefer_shared_memory`` is false) the block degrades to a
    memory-mapped file in the temp directory, which workers map read-only.
    """
    models = list(trained_models)
    # ``tokens`` keys arrays by id(); every keyed array is immediately
    # pinned in ``arrays`` (which outlives the pickling below), so a
    # tracked id can never be garbage-collected and recycled by a later,
    # distinct array — the aliasing that plagued state_dict implementations
    # returning fresh (otherwise unreferenced) arrays per call.
    tokens: dict[int, str] = {}
    arrays: dict[str, np.ndarray] = {}
    for index, trained in enumerate(models):
        for key, array in trained.model.state_dict().items():
            if id(array) in tokens:  # array shared between models: store once
                continue
            token = f"{index}:{key}"
            tokens[id(array)] = token
            arrays[token] = array

    store = SharedArrayStore.publish(arrays, prefer_shared_memory=prefer_shared_memory)
    pickles: list[bytes] = []
    for trained in models:
        sink = io.BytesIO()
        _ParamPickler(sink, tokens).dump(trained)
        pickles.append(sink.getvalue())
    return SharedTrainedModels(pickles, store)


#: Dataset fields published to (and rebuilt from) the shared block.
_DATASET_ARRAY_FIELDS = ("train_images", "train_labels", "test_images", "test_labels")


class SharedDatasets:
    """Evaluation datasets published once for zero-copy worker attachment.

    Produced by :func:`publish_datasets`.  The image and label arrays of
    every dataset live in one shared block; :meth:`attach` rebuilds the
    ``{name: Dataset}`` mapping with those arrays as read-only views, so the
    runtime's worker processes share one copy of the evaluation data.  The
    publishing process must call :meth:`unlink` once all consumers are done.
    """

    def __init__(self, metas: dict[str, dict], store: SharedArrayStore):
        self.metas = metas
        self.store = store
        self._datasets: dict[str, Dataset] | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_datasets"] = None
        return state

    def attach(self) -> dict[str, Dataset]:
        """Datasets with arrays viewing the shared block (cached per process)."""
        if self._datasets is None:
            self._datasets = {
                name: Dataset(
                    name=name,
                    num_classes=meta["num_classes"],
                    **{
                        field_name: self.store.get(token)
                        for field_name, token in meta["arrays"].items()
                    },
                )
                for name, meta in self.metas.items()
            }
        return self._datasets

    def nbytes_shared(self) -> int:
        """Total dataset bytes placed in the shared block."""
        return self.store.nbytes_shared()

    def unlink(self) -> None:
        """Release the shared block (publisher side; idempotent)."""
        self._datasets = None
        self.store.unlink()


def publish_datasets(
    datasets: dict[str, Dataset],
    prefer_shared_memory: bool = True,
) -> SharedDatasets:
    """Publish the train/test arrays of ``datasets`` for worker attachment.

    The evaluation images dwarf the trained weights for small models, so a
    multi-process session that ships datasets by pickle pays the dominant
    memory cost once per worker.  Publishing moves those bytes into one
    shared block; workers attach read-only views through
    :meth:`SharedDatasets.attach`.
    """
    arrays: dict[str, np.ndarray] = {}
    metas: dict[str, dict] = {}
    for name, dataset in datasets.items():
        field_tokens: dict[str, str] = {}
        for field_name in _DATASET_ARRAY_FIELDS:
            token = f"{name}:{field_name}"
            arrays[token] = getattr(dataset, field_name)
            field_tokens[field_name] = token
        metas[name] = {"num_classes": dataset.num_classes, "arrays": field_tokens}
    store = SharedArrayStore.publish(arrays, prefer_shared_memory=prefer_shared_memory)
    return SharedDatasets(metas, store)


__all__ = [
    "SharedTrainedModels",
    "SharedDatasets",
    "publish_trained_models",
    "publish_datasets",
]
