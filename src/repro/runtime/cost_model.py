"""Cost model pricing evaluation cells for cost-balanced scheduling.

The runtime's scheduler historically split a batch into equal cell-*count*
chunks, which implicitly assumes every cell costs the same.  It does not:
a LUT-mapped layer streams every product through a 256x256 table and runs
roughly 40x slower than a perforated or accurate layer on the same shapes
(``results/BENCH_engine.json`` ``engine_throughput``: ~460k products/s
accurate, ~390k perforated, ~8.5k LUT on the numpy backend).  One LUT-heavy
cell in an otherwise cheap chunk turns that chunk into the batch's
straggler and serializes the pool.

:class:`CellCostModel` predicts the relative cost of one ``(model, plan)``
cell so :func:`repro.runtime.scheduling.cost_balanced_chunks` can partition
the schedule by *predicted work* instead of cell count:

* **per-layer work** — each MAC layer's multiply-accumulate count,
  extracted once per hosted model via
  :func:`repro.accelerator.scheduling.layer_shapes_of_model` (the same
  im2col lowering the cycle model uses);
* **per-technique throughput factors** — how much slower one product of a
  technique is than an accurate product; defaults calibrated from the
  ``engine_throughput`` bench above, refined **online** from measured
  chunk wall-clocks (:meth:`observe`), so a host whose BLAS/LUT balance
  differs from the calibration box converges to its own ratios;
* the technique of a layer is read from the plan's per-layer
  :meth:`~repro.simulation.inference.ProductModel.fingerprint` — the same
  token the prefix scheduler sorts by, so pricing needs no new plumbing.

Predictions are *relative* (unit: accurate-MAC equivalents).  Balancing
only needs ratios; :meth:`predict_seconds` additionally converts through
the online-estimated seconds-per-unit when at least one chunk has been
observed.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.simulation.inference import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.simulation.campaign import TrainedModel

#: Relative cost of one product per technique kind, normalized to the
#: accurate array.  Calibrated from the ``engine_throughput`` bench (numpy
#: backend): perforated runs at ~85 % of accurate throughput (1.2x cost)
#: and the LUT path at ~1/55 (we price it at 48 = 40x the perforated cost,
#: the ratio the bench pins).  Unknown kinds (custom product models) price
#: as perforated — close enough until :meth:`CellCostModel.observe`
#: refines them.
DEFAULT_TECHNIQUE_COST: dict[str, float] = {
    "accurate": 1.0,
    "perforated": 1.2,
    "lut": 48.0,
}

#: Fallback factor for fingerprint kinds absent from the table.
DEFAULT_UNKNOWN_COST = 1.2

#: A chunk is *dominated* by a technique kind when that kind contributes at
#: least this share of its predicted cost; only dominated chunks refine the
#: kind's throughput factor (mixed chunks refine the seconds-per-unit
#: scale instead — see :meth:`CellCostModel.observe`).
DOMINANT_SHARE = 0.75


def fingerprint_kind(fingerprint: tuple) -> str:
    """Technique kind of one per-layer fingerprint token.

    Structural fingerprints lead with their kind (``("accurate",)``,
    ``("perforated", m, cv)``, ``("lut", digest)``); identity fingerprints
    of custom product models lead with the class qualname, which serves as
    their kind so repeated custom models share one learned factor.
    """
    if fingerprint and isinstance(fingerprint[0], str):
        return fingerprint[0]
    return "unknown"


def model_layer_work(trained: "TrainedModel", image_shape: tuple) -> dict[str, float]:
    """Per-MAC-layer work (multiply-accumulate count) of one trained model.

    Runs the one-image dummy forward of
    :func:`~repro.accelerator.scheduling.layer_shapes_of_model`; falls back
    to uniform unit work per layer if shape extraction fails (an exotic
    graph must degrade the *balance*, never the evaluation).
    """
    from repro.accelerator.scheduling import layer_shapes_of_model

    names = [node.name for node in trained.model.conv_dense_nodes()]
    try:
        shapes = layer_shapes_of_model(trained.model, tuple(image_shape))
        return {shape.name: float(shape.macs) for shape in shapes}
    except Exception:
        return {name: 1.0 for name in names}


class CellCostModel:
    """Prices ``(model, plan)`` cells from per-layer technique throughput.

    Parameters
    ----------
    layer_work:
        ``{model_index: {layer_name: work units}}`` — the plan-invariant
        per-layer work of every hosted model (MAC counts; see
        :func:`model_layer_work`).
    technique_cost:
        Initial per-kind throughput factors; defaults to
        :data:`DEFAULT_TECHNIQUE_COST` (bench-calibrated).
    smoothing:
        EWMA weight of one new observation during online refinement
        (0 disables refinement, 1 trusts only the latest chunk).
    """

    def __init__(
        self,
        layer_work: Mapping[int, Mapping[str, float]],
        technique_cost: Mapping[str, float] | None = None,
        smoothing: float = 0.3,
    ):
        if not 0.0 <= float(smoothing) <= 1.0:
            raise ValueError(f"smoothing must be within [0, 1], got {smoothing}")
        self._layer_work = {
            int(index): dict(work) for index, work in layer_work.items()
        }
        base = DEFAULT_TECHNIQUE_COST if technique_cost is None else technique_cost
        self._technique_cost = dict(base)
        self.smoothing = float(smoothing)
        self._seconds_per_unit: float | None = None
        self._observations = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def technique_factor(self, kind: str) -> float:
        """Current relative cost of one product of ``kind`` (accurate = 1)."""
        return self._technique_cost.get(kind, DEFAULT_UNKNOWN_COST)

    def cell_cost(
        self,
        model_index: int,
        plan: ExecutionPlan,
        mac_names: Sequence[str],
    ) -> float:
        """Predicted cost of one cell, in accurate-MAC equivalents."""
        work = self._layer_work.get(int(model_index), {})
        total = 0.0
        for name, fingerprint in zip(mac_names, plan.fingerprints(mac_names)):
            total += work.get(name, 1.0) * self.technique_factor(
                fingerprint_kind(fingerprint)
            )
        return total

    def group_cost(
        self,
        model_index: int,
        plans: Sequence[ExecutionPlan],
        mac_names: Sequence[str],
    ) -> float:
        """Predicted cost of one *fused* plan group, in accurate-MAC units.

        A plan group rides one fused multi-plan launch per MAC layer
        (:meth:`~repro.simulation.inference.ApproximateExecutor.forward_many`):
        at depth ``d`` the stacked launch evaluates one block per *distinct*
        fingerprint prefix of length ``d + 1`` — the shared prefix runs
        once, and plans that already diverged but assign the same model to
        deeper layers still share nothing further.  The group therefore
        prices as the sum over depths of (distinct prefixes at that depth)
        x (layer work) x (technique factor of the block's model), which is
        what makes a group of prefix-sharing plans cheaper than the sum of
        its per-plan :meth:`cell_cost` — the dedupe the scheduler should
        balance on.
        """
        work = self._layer_work.get(int(model_index), {})
        sequences = {plan.fingerprints(mac_names) for plan in plans}
        total = 0.0
        for depth, name in enumerate(mac_names):
            layer_work = work.get(name, 1.0)
            seen: set[tuple] = set()
            for sequence in sequences:
                prefix = sequence[: depth + 1]
                if prefix in seen:
                    continue
                seen.add(prefix)
                total += layer_work * self.technique_factor(
                    fingerprint_kind(sequence[depth])
                )
        return total

    def chunk_units_by_kind(
        self,
        chunk: Sequence[tuple[int, ExecutionPlan]],
        mac_names_by_model: Mapping[int, Sequence[str]],
    ) -> dict[str, float]:
        """Raw work units of one chunk, keyed by technique kind.

        The *unweighted* per-kind totals (no throughput factors applied) —
        the shape :meth:`observe` consumes, so refinement can re-derive a
        kind's factor from a measured wall-clock.
        """
        units: dict[str, float] = {}
        for model_index, plan in chunk:
            work = self._layer_work.get(int(model_index), {})
            mac_names = mac_names_by_model[model_index]
            for name, fingerprint in zip(mac_names, plan.fingerprints(mac_names)):
                kind = fingerprint_kind(fingerprint)
                units[kind] = units.get(kind, 0.0) + work.get(name, 1.0)
        return units

    def predicted_cost(self, units_by_kind: Mapping[str, float]) -> float:
        """Weighted cost of per-kind unit totals under the current factors."""
        return sum(
            units * self.technique_factor(kind)
            for kind, units in units_by_kind.items()
        )

    def predict_seconds(self, cost: float) -> float | None:
        """Predicted wall-clock of ``cost`` units, once calibrated online."""
        if self._seconds_per_unit is None:
            return None
        return float(cost) * self._seconds_per_unit

    # ------------------------------------------------------------------
    # Online refinement
    # ------------------------------------------------------------------
    @property
    def observations(self) -> int:
        """Number of measured chunks folded into the model so far."""
        return self._observations

    @property
    def seconds_per_unit(self) -> float | None:
        """Online-estimated seconds per accurate-MAC-equivalent unit."""
        return self._seconds_per_unit

    def observe(
        self, units_by_kind: Mapping[str, float], wall_clock_s: float
    ) -> None:
        """Fold one measured chunk wall-clock into the model.

        Two-level refinement, deterministic given the observation stream:

        * a chunk **dominated** by one technique kind (>= 75 % of its
          predicted cost) re-derives that kind's throughput factor from
          the measurement — the chunk's wall-clock, converted through the
          current seconds-per-unit scale, minus the minority kinds' share;
        * every chunk updates the **seconds-per-unit** scale (EWMA), which
          anchors :meth:`predict_seconds`.

        Mispriced defaults therefore converge: a host whose LUT path is
        80x (not 48x) slower keeps producing LUT-dominated chunks that
        overshoot their prediction, and each one pulls the LUT factor up.
        """
        wall_clock_s = float(wall_clock_s)
        predicted = self.predicted_cost(units_by_kind)
        if wall_clock_s <= 0.0 or predicted <= 0.0:
            return
        with self._lock:
            alpha = self.smoothing
            if self._seconds_per_unit is not None and alpha > 0.0:
                dominant = max(
                    units_by_kind,
                    key=lambda kind: units_by_kind[kind]
                    * self.technique_factor(kind),
                )
                share = (
                    units_by_kind[dominant] * self.technique_factor(dominant)
                ) / predicted
                if share >= DOMINANT_SHARE and units_by_kind[dominant] > 0.0:
                    # Total units implied by the measurement, minus what the
                    # minority kinds account for, re-prices the dominant kind.
                    implied_total = wall_clock_s / self._seconds_per_unit
                    minority = predicted - (
                        units_by_kind[dominant] * self.technique_factor(dominant)
                    )
                    implied_factor = (implied_total - minority) / units_by_kind[
                        dominant
                    ]
                    if implied_factor > 0.0:
                        current = self.technique_factor(dominant)
                        self._technique_cost[dominant] = (
                            1.0 - alpha
                        ) * current + alpha * implied_factor
                    predicted = self.predicted_cost(units_by_kind)
            scale = wall_clock_s / predicted
            if self._seconds_per_unit is None or alpha == 0.0:
                self._seconds_per_unit = scale
            else:
                self._seconds_per_unit = (
                    1.0 - alpha
                ) * self._seconds_per_unit + alpha * scale
            self._observations += 1

    # ------------------------------------------------------------------
    @classmethod
    def from_models(
        cls,
        trained_models: "Sequence[TrainedModel]",
        image_shapes: Sequence[tuple],
        technique_cost: Mapping[str, float] | None = None,
        smoothing: float = 0.3,
    ) -> "CellCostModel":
        """Cost model of a hosted model list (one dummy forward per model)."""
        layer_work = {
            index: model_layer_work(trained, shape)
            for index, (trained, shape) in enumerate(
                zip(trained_models, image_shapes)
            )
        }
        return cls(layer_work, technique_cost=technique_cost, smoothing=smoothing)


__all__ = [
    "DEFAULT_TECHNIQUE_COST",
    "DEFAULT_UNKNOWN_COST",
    "DOMINANT_SHARE",
    "fingerprint_kind",
    "model_layer_work",
    "CellCostModel",
]
