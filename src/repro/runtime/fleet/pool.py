"""The backend pool: per-shard HTTP clients with failure tracking + health checks.

Every shard gets one :class:`Backend` wrapping an
:class:`~repro.runtime.jobs.client.HttpJobClient` (which already retries
idempotent GETs with capped exponential backoff).  A request that still
fails at the transport level after those retries marks the shard and
raises :class:`BackendDownError` — the gateway maps it to a **fast,
machine-readable 503** (``reason: "shard_down"``) instead of hanging the
caller.  HTTP-level errors (4xx/5xx, including admission 429s) are *not*
failures: the shard answered, and its answer is relayed verbatim.

A background health monitor (:meth:`BackendPool.start_monitor`) probes the
fleet: healthy shards are pinged on ``/healthz`` so a silently-dead daemon
is evicted before the next real request trips over it, and an **evicted
shard only rejoins after re-verifying its identity** — its ``/models``
descriptors must report exactly the ``(name, dataset, context_key)``
triples the routing table recorded at startup.  A restarted daemon hosting
different models, or the same models with a different measurement setup,
stays out: routing to it would silently break the fleet's bit-exactness.
"""

from __future__ import annotations

import threading

from repro.runtime.fleet.router import FleetError
from repro.runtime.jobs.client import HttpJobClient, JobClientError


class BackendDownError(FleetError):
    """A shard that did not answer (transport failure after retries)."""

    def __init__(self, shard: str, message: str):
        super().__init__(f"shard {shard!r} is down: {message}")
        self.shard = shard
        self.reason = "shard_down"


class Backend:
    """One shard: a named HTTP client plus its health state."""

    def __init__(
        self,
        name: str,
        url: str,
        request_timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        fail_threshold: int = 1,
    ):
        if int(fail_threshold) < 1:
            raise ValueError(f"fail_threshold must be positive, got {fail_threshold}")
        self.name = name
        self.url = url.rstrip("/")
        self.client = HttpJobClient(
            self.url,
            request_timeout=request_timeout,
            retries=retries,
            backoff=backoff,
        )
        self.fail_threshold = int(fail_threshold)
        self._lock = threading.Lock()
        self.healthy = True
        self.consecutive_failures = 0
        self.last_error: str | None = None
        self.evictions = 0
        #: (name, dataset, context_key) triples a recovering shard must match.
        self.expected_triples: "set[tuple[str, str, str]] | None" = None

    # ------------------------------------------------------------------
    def note_failure(self, message: str) -> None:
        with self._lock:
            self.consecutive_failures += 1
            self.last_error = message
            if self.healthy and self.consecutive_failures >= self.fail_threshold:
                self.healthy = False
                self.evictions += 1

    def note_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.healthy = True
            self.last_error = None

    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """Forward one round trip; transport death becomes :class:`BackendDownError`.

        The client has already retried idempotent GETs by the time a
        transport-level :class:`JobClientError` (``status is None``)
        escapes, so one escape is a confirmed outage, not a blip.
        """
        try:
            result = self.client.request(method, path, payload)
        except JobClientError as error:
            if error.status is None:
                self.note_failure(str(error))
                raise BackendDownError(self.name, str(error)) from None
            raise  # the shard answered: relay its verdict, don't evict
        self.note_success()
        return result

    def probe(self) -> None:
        """One health-monitor pass over this backend.

        Healthy: ping ``/healthz`` (eviction on transport death).
        Unhealthy: fetch ``/models`` and only readmit when the shard
        reports exactly the recorded identity triples.
        """
        if self.healthy:
            try:
                self.request("GET", "/healthz")
            except BackendDownError:
                pass
            return
        try:
            infos = self.client.request("GET", "/models")["models"]
        except (JobClientError, KeyError, TypeError):
            return  # still down (or answering garbage): stay evicted
        if self.expected_triples is not None:
            reported = {
                (str(info["name"]), str(info["dataset"]), str(info["context_key"]))
                for info in infos
            }
            if reported != self.expected_triples:
                with self._lock:
                    self.last_error = (
                        "shard answered with a different model set than the "
                        "routing table recorded; refusing to re-admit it"
                    )
                return
        self.note_success()

    def stats(self) -> dict:
        with self._lock:
            return {
                "url": self.url,
                "healthy": self.healthy,
                "consecutive_failures": self.consecutive_failures,
                "evictions": self.evictions,
                "last_error": self.last_error,
            }


class BackendPool:
    """The fleet's shard set plus its background health monitor."""

    def __init__(self, backends: "list[Backend]"):
        if not backends:
            raise ValueError("a fleet needs at least one backend")
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {names}")
        self.backends = {backend.name: backend for backend in backends}
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()

    def __iter__(self):
        return iter(self.backends.values())

    def __getitem__(self, shard: str) -> Backend:
        return self.backends[shard]

    # ------------------------------------------------------------------
    def start_monitor(self, interval: float = 1.0) -> None:
        """Start the periodic health prober (idempotent)."""
        if self._monitor is not None:
            return
        interval = float(interval)

        def loop() -> None:
            while not self._stop.wait(interval):
                for backend in list(self.backends.values()):
                    if self._stop.is_set():
                        return
                    backend.probe()

        self._monitor = threading.Thread(
            target=loop, name="repro-fleet-health", daemon=True
        )
        self._monitor.start()

    def close(self) -> None:
        """Stop the health monitor (idempotent; backends hold no sockets)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None

    def stats(self) -> dict:
        return {name: backend.stats() for name, backend in self.backends.items()}


__all__ = ["Backend", "BackendPool", "BackendDownError"]
