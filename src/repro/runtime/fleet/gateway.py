"""The fleet gateway: one front door over N sharded ``repro serve`` daemons.

Speaks the *same* job API as a single daemon — ``GET /healthz``, ``GET
/stats``, ``GET /models``, ``POST /jobs``, ``GET /jobs/<ref>`` — so every
existing client (``repro sweep|table3|dse --remote URL``,
:class:`~repro.runtime.jobs.client.HttpJobClient`, plain curl) works
unchanged against a gateway URL.  What changes is what is behind it:

* ``/models`` renumbers every shard's hosted models into one global index
  space (the :class:`~repro.runtime.fleet.router.RoutingTable`, built at
  startup, disjoint by construction);
* ``POST /jobs`` resolves the model reference, rewrites it to the owning
  shard's *local* index and forwards the payload otherwise untouched — the
  plan JSON travels through the gateway byte-for-byte, so content-addressed
  cell keys (and therefore cache hits and ledger records) are exactly what
  submitting to the shard directly would produce;
* job handles become ``<shard>/<job id>`` refs, so ``GET /jobs/<ref>``
  routes the poll back to the owning shard;
* ``/stats`` fans out and aggregates every healthy shard's
  ``repro-runtime-stats/v1.1`` payload (numeric counters summed, the cache
  hit ratio recomputed from the summed counters, sessions namespaced
  ``<shard>/<session>``) plus ``gateway`` and ``shards`` sections;
* a shard that stops answering is reported as a fast ``503`` with a
  machine-readable body (``reason: "shard_down"``, the shard's name) —
  never a hang — while the rest of the fleet keeps serving; ``/healthz``
  degrades to ``"degraded"`` instead of lying.

The gateway holds no evaluation state of its own: it owns the routing
table and the failure bookkeeping, nothing else.  Determinism lives on the
shards (single dispatcher, content-addressed cache); the gateway's job is
to never blur which shard owns which cell.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.runtime.fleet.pool import BackendDownError, BackendPool
from repro.runtime.fleet.router import RoutingTable
from repro.runtime.jobs.client import JobClientError
from repro.runtime.jobs.queue import AdmissionError
from repro.runtime.stats import STATS_SCHEMA


def _merge_numeric(target: dict, extra: dict) -> dict:
    """Recursively sum numeric leaves of ``extra`` into ``target``.

    Dicts merge key-wise; ints/floats add (bools excluded); anything else
    keeps the first value seen.  This is the fleet-aggregation rule for
    the ``engine``/``jobs``/``cache`` stats sections: counters and
    capacities sum across shards, labels stay representative.
    """
    for key, value in extra.items():
        if isinstance(value, dict):
            target[key] = _merge_numeric(
                target.get(key, {}) if isinstance(target.get(key), dict) else {},
                value,
            )
        elif isinstance(value, bool):
            target.setdefault(key, value)
        elif isinstance(value, (int, float)):
            current = target.get(key)
            if isinstance(current, (int, float)) and not isinstance(current, bool):
                target[key] = current + value
            else:
                target[key] = value
        else:
            target.setdefault(key, value)
    return target


class GatewayServer(ThreadingHTTPServer):
    """The front process: routing table + backend pool behind the job API.

    Building the server **contacts every shard** (``GET /models``) to
    assemble the routing table; a shard that is down at startup is a hard
    error — a fleet must start from a verified topology, not guess one.
    ``shutdown_and_close`` stops serving and the health monitor; the
    shards' lifecycles belong to whoever spawned them (the CLI's
    supervisor, for ``--spawn`` shards).
    """

    daemon_threads = True

    def __init__(self, pool: BackendPool, host: str = "127.0.0.1", port: int = 0):
        self.pool = pool
        shard_models: dict[str, list[dict]] = {}
        for backend in pool:
            shard_models[backend.name] = backend.request("GET", "/models")["models"]
        self.table = RoutingTable(shard_models)
        for backend in pool:
            backend.expected_triples = self.table.expected_triples(backend.name)
        self.started_at = time.monotonic()
        self.jobs_forwarded = 0
        self.jobs_unroutable = 0
        self._count_lock = threading.Lock()
        super().__init__((host, port), _GatewayRequestHandler)

    def count(self, counter: str) -> None:
        """Bump one gateway counter (handler threads run concurrently)."""
        with self._count_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_and_close(self) -> None:
        """Stop serving and the health monitor (idempotent)."""
        self.shutdown()
        self.server_close()
        self.pool.close()

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        shard_health = {
            backend.name: {"url": backend.url, "healthy": backend.healthy}
            for backend in self.pool
        }
        degraded = [name for name, entry in shard_health.items() if not entry["healthy"]]
        return {
            "status": "degraded" if degraded else "ok",
            "models": len(self.table),
            "shards": shard_health,
            "uptime_s": time.monotonic() - self.started_at,
        }

    def stats(self) -> dict:
        """Fan out ``/stats`` and aggregate into one stats/v1 payload."""
        engine: dict = {}
        jobs: dict = {}
        cache: dict = {}
        sessions: dict = {}
        shards: dict = {}
        for backend in self.pool:
            entry = backend.stats()
            if backend.healthy:
                try:
                    payload = backend.request("GET", "/stats")
                except (BackendDownError, JobClientError) as error:
                    entry["stats_error"] = str(error)
                else:
                    _merge_numeric(engine, payload.get("engine", {}))
                    _merge_numeric(jobs, payload.get("jobs", {}))
                    _merge_numeric(cache, payload.get("cache", {}))
                    for session_id, session in payload.get("sessions", {}).items():
                        sessions[f"{backend.name}/{session_id}"] = session
            shards[backend.name] = entry
        hits, misses = cache.get("hits", 0), cache.get("misses", 0)
        if hits or misses:
            cache["hit_ratio"] = hits / (hits + misses)
        return {
            "schema": STATS_SCHEMA,
            "engine": engine,
            "jobs": jobs,
            "cache": cache,
            "sessions": sessions,
            "gateway": {
                "shards": len(self.pool.backends),
                "models": len(self.table),
                "jobs_forwarded": self.jobs_forwarded,
                "jobs_unroutable": self.jobs_unroutable,
                "uptime_s": time.monotonic() - self.started_at,
            },
            "shards": shards,
        }


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    """Routes the five endpoints; every response body is JSON."""

    server: GatewayServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, **extra) -> None:
        self._send_json(status, {"error": message, **extra})

    def _send_shard_down(self, shard: str, message: str) -> None:
        with_reason = {"reason": "shard_down", "shard": shard}
        self._send_json(503, {"error": message, **with_reason})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        server = self.server
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send_json(200, server.healthz())
            elif path == "/stats":
                self._send_json(200, server.stats())
            elif path == "/models":
                self._send_json(200, {"models": server.table.models()})
            elif path.startswith("/jobs/"):
                self._poll_job(path[len("/jobs/"):])
            else:
                self._send_error_json(404, f"no such endpoint: {path}")
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_json(500, f"{type(error).__name__}: {error}")

    def _poll_job(self, ref: str) -> None:
        server = self.server
        shard, _, job_id = ref.partition("/")
        if not job_id or shard not in server.pool.backends:
            self._send_error_json(
                404, f"unknown job ref {ref!r} (expected <shard>/<job-id>)"
            )
            return
        backend = server.pool[shard]
        if not backend.healthy:
            self._send_shard_down(shard, backend.last_error or "shard is marked down")
            return
        try:
            payload = backend.request("GET", f"/jobs/{job_id}")
        except BackendDownError as error:
            self._send_shard_down(shard, str(error))
            return
        except JobClientError as error:
            self._send_error_json(error.status or 502, str(error))
            return
        self._send_json(200, {"job": self._global_view(shard, payload["job"])})

    @staticmethod
    def _global_view(shard: str, view: dict) -> dict:
        """A shard's job view in gateway coordinates (ref-shaped id + shard)."""
        view = dict(view)
        view["id"] = f"{shard}/{view['id']}"
        view["shard"] = shard
        return view

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs":
            self._send_error_json(404, f"no such endpoint: {path}")
            return
        try:
            self._submit_job()
        except BrokenPipeError:
            pass
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_json(500, f"{type(error).__name__}: {error}")

    def _submit_job(self) -> None:
        server = self.server
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"request body is not valid JSON: {error}")
            return
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return
        # Resolve the model reference against the global routing table.
        try:
            if "model_index" in payload:
                route = server.table.by_index(payload["model_index"])
            elif "model" in payload:
                dataset = payload.get("dataset")
                route = server.table.by_name(
                    str(payload["model"]), None if dataset is None else str(dataset)
                )
            else:
                self._send_error_json(400, "payload needs 'model' or 'model_index'")
                return
        except (IndexError, KeyError) as error:
            server.count("jobs_unroutable")
            message = str(error)
            if isinstance(error, KeyError):
                message = error.args[0] if error.args else message
            self._send_error_json(404, message)
            return
        # Forward the payload otherwise untouched: the plan JSON must reach
        # the shard byte-for-byte so content-addressed keys are unchanged.
        forward = {
            key: value
            for key, value in payload.items()
            if key not in ("model", "model_index", "dataset")
        }
        forward["model_index"] = route.local_index
        backend = server.pool[route.shard]
        if not backend.healthy:
            self._send_shard_down(
                route.shard, backend.last_error or "shard is marked down"
            )
            return
        try:
            answer = backend.request("POST", "/jobs", forward)
        except AdmissionError as error:
            # The shard's admission verdict, relayed verbatim.
            self._send_error_json(429, error.message, reason=error.reason)
            return
        except BackendDownError as error:
            self._send_shard_down(route.shard, str(error))
            return
        except JobClientError as error:
            self._send_error_json(error.status or 502, str(error))
            return
        server.count("jobs_forwarded")
        self._send_json(202, {"job": self._global_view(route.shard, answer["job"])})


__all__ = ["GatewayServer"]
