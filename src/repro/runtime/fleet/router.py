"""The fleet routing table: which shard hosts which model.

Sharding is **by model**: every backend daemon owns a *disjoint* set of
``(model name, dataset)`` pairs, so each cell's evaluation — and therefore
its content-addressed cache entry and ledger record — has exactly one home
shard with exactly one dispatcher.  That is what keeps fleet-wide dedup
deterministic: the first submission of a cell evaluates it *on its shard*,
every later submission from any client through any path is that shard's
cache hit, and no two shards can ever race to evaluate the same cell.

The table is built once, from each shard's ``/models`` descriptors, at
gateway startup; overlapping model sets are a configuration error
(:class:`FleetConfigError`), not something to silently tolerate — an
overlap would split one cell's traffic across two dispatchers and break
the determinism story above.
"""

from __future__ import annotations


class FleetError(RuntimeError):
    """Base class of fleet-layer failures."""


class FleetConfigError(FleetError):
    """An invalid fleet topology (e.g. two shards hosting the same model)."""


class ModelRoute:
    """One hosted model as the gateway sees it: shard + local index + info."""

    def __init__(self, shard: str, local_index: int, info: dict):
        self.shard = shard
        self.local_index = int(local_index)
        self.info = dict(info)

    @property
    def name(self) -> str:
        return str(self.info["name"])

    @property
    def dataset(self) -> str:
        return str(self.info["dataset"])

    @property
    def context_key(self) -> str:
        return str(self.info["context_key"])


class RoutingTable:
    """Global model index over disjoint per-shard model sets.

    Built from ``{shard name: [/models descriptors]}``; global indices are
    assigned in shard order, then local-index order — deterministic for a
    fixed topology, so ``repro sweep --remote <gateway>`` enumerates models
    in the same order on every run.
    """

    def __init__(self, shard_models: "dict[str, list[dict]]"):
        self.routes: list[ModelRoute] = []
        self._by_key: dict[tuple[str, str], ModelRoute] = {}
        for shard, infos in shard_models.items():
            for info in sorted(infos, key=lambda entry: int(entry["index"])):
                route = ModelRoute(shard, int(info["index"]), info)
                key = (route.name, route.dataset)
                taken = self._by_key.get(key)
                if taken is not None:
                    raise FleetConfigError(
                        f"model {route.name!r} on dataset {route.dataset!r} is "
                        f"hosted by both shard {taken.shard!r} and shard "
                        f"{route.shard!r}; shards must own disjoint model sets "
                        "(deterministic per-shard dedup depends on it)"
                    )
                self._by_key[key] = route
                self.routes.append(route)
        if not self.routes:
            raise FleetConfigError("fleet hosts no models at all")

    def __len__(self) -> int:
        return len(self.routes)

    # ------------------------------------------------------------------
    def by_index(self, global_index: int) -> ModelRoute:
        """Route of one global model index (:class:`IndexError` if unknown)."""
        if (
            isinstance(global_index, bool)
            or not isinstance(global_index, int)
            or not 0 <= global_index < len(self.routes)
        ):
            raise IndexError(f"unknown model index {global_index!r}")
        return self.routes[global_index]

    def by_name(self, name: str, dataset: str | None = None) -> ModelRoute:
        """Route of one model by name (+ dataset when the name is ambiguous).

        Mirrors the single-daemon ``EvaluationService.model_index`` contract:
        :class:`KeyError` for unknown models and for ambiguous names.
        """
        matches = [
            route
            for route in self.routes
            if route.name == name and (dataset is None or route.dataset == dataset)
        ]
        if not matches:
            raise KeyError(f"fleet hosts no model {name!r} (dataset={dataset!r})")
        if len(matches) > 1:
            raise KeyError(
                f"model {name!r} is hosted for several datasets; pass dataset"
            )
        return matches[0]

    def shard_of(self, shard: str) -> list[ModelRoute]:
        """Every route living on ``shard``."""
        return [route for route in self.routes if route.shard == shard]

    def models(self) -> list[dict]:
        """The gateway's ``/models`` payload: per-shard descriptors renumbered
        into one global index space (each entry keeps its ``shard`` and the
        shard-local index under ``shard_index``)."""
        payload = []
        for global_index, route in enumerate(self.routes):
            info = dict(route.info)
            info["index"] = global_index
            info["shard"] = route.shard
            info["shard_index"] = route.local_index
            payload.append(info)
        return payload

    def expected_triples(self, shard: str) -> set[tuple[str, str, str]]:
        """The ``(name, dataset, context_key)`` set a healthy ``shard`` must
        report — re-verified when a shard comes back from the dead, so a
        restarted daemon hosting *different* models (or the same models with
        a different measurement setup) is not silently routed to."""
        return {
            (route.name, route.dataset, route.context_key)
            for route in self.shard_of(shard)
        }


__all__ = ["RoutingTable", "ModelRoute", "FleetError", "FleetConfigError"]
