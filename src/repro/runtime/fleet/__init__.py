"""The fleet layer: scale the job runtime past one process (layer 4 of 4).

The runtime stack with a fleet on top::

    layer 4  fleet       repro gateway: routing table over N daemons,
                         health-checked backend pool, aggregated stats
    layer 3  transport   repro serve (HTTP daemon)  /  in-process clients
    layer 2  jobs        JobManager: priority queue + admission control,
                         sessions, persistent result cache
    layer 1  engine      EvaluationService: publish-once shared memory,
                         prefix-aware scheduling, worker pool

Sharding is by model: each daemon owns a disjoint ``(model, dataset)``
set, so every cell has exactly one home dispatcher and fleet-wide dedup
stays deterministic — the property that keeps ``--remote <gateway>``
runs bit-exact with local ones.

Entry points: :class:`GatewayServer` (the front process),
:class:`RoutingTable` (who owns what), :class:`Backend` /
:class:`BackendPool` (per-shard clients + health eviction),
:class:`DaemonSupervisor` (spawn/adopt local ``repro serve`` children).
"""

from repro.runtime.fleet.gateway import GatewayServer
from repro.runtime.fleet.pool import Backend, BackendDownError, BackendPool
from repro.runtime.fleet.router import (
    FleetConfigError,
    FleetError,
    ModelRoute,
    RoutingTable,
)
from repro.runtime.fleet.supervisor import (
    DaemonSupervisor,
    SpawnedDaemon,
    SpawnError,
)

__all__ = [
    "Backend",
    "BackendDownError",
    "BackendPool",
    "DaemonSupervisor",
    "FleetConfigError",
    "FleetError",
    "GatewayServer",
    "ModelRoute",
    "RoutingTable",
    "SpawnError",
    "SpawnedDaemon",
]
