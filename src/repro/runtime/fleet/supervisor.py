"""The daemon supervisor: spawn (or adopt) local ``repro serve`` shards.

``repro gateway`` can front daemons started by anyone (``--backend URL``
— *adopted*, their lifecycle is not ours), but for one-command fleets it
also **spawns** shards itself (``--spawn "<serve args>"``): each spec
becomes a ``python -m repro serve ...`` child whose startup handshake
line (``serving on http://...``) is parsed for the shard's URL.  Spawned
shards are terminated with the gateway — SIGTERM first (the daemon's
graceful path: cancel queued jobs, close the engine, unlink every shared
block), SIGKILL only if the grace period runs out.

Child stdout/stderr is drained on a background thread and re-emitted
line-by-line under a ``[shard-name]`` prefix, so a fleet's logs are one
interleaved, attributable stream instead of N silent pipes.
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import threading

from repro.runtime.fleet.router import FleetError

#: The daemon's startup handshake (see ``repro serve``).
HANDSHAKE = re.compile(r"serving on (http://\S+)")


class SpawnError(FleetError):
    """A shard child that failed to start (or to hand us its URL in time)."""


class SpawnedDaemon:
    """One child ``repro serve`` process the supervisor owns."""

    def __init__(self, name: str, process: subprocess.Popen, url: str):
        self.name = name
        self.process = process
        self.url = url

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class DaemonSupervisor:
    """Spawns ``repro serve`` children and guarantees their teardown."""

    def __init__(self, echo=print):
        self.daemons: list[SpawnedDaemon] = []
        self._echo = echo

    # ------------------------------------------------------------------
    def spawn(
        self,
        serve_args: "list[str]",
        name: str,
        handshake_timeout: float = 600.0,
    ) -> SpawnedDaemon:
        """Start ``python -m repro serve <serve_args>`` and wait for its URL.

        The handshake wait is generous by default: a shard may train its
        hosted models at startup.  On failure the child is killed and
        :class:`SpawnError` carries everything it printed.
        """
        command = [sys.executable, "-m", "repro", "serve", *serve_args]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            bufsize=1,
        )
        lines: list[str] = []
        url: str | None = None
        timer = threading.Timer(handshake_timeout, process.kill)
        timer.start()
        try:
            assert process.stdout is not None
            for line in process.stdout:
                lines.append(line.rstrip("\n"))
                self._echo(f"[{name}] {lines[-1]}")
                match = HANDSHAKE.search(line)
                if match:
                    url = match.group(1)
                    break
        finally:
            timer.cancel()
        if url is None:
            process.kill()
            process.wait()
            output = "\n".join(lines) or "(no output)"
            raise SpawnError(
                f"shard {name!r} never printed its startup handshake "
                f"(command: {' '.join(command)}):\n{output}"
            )
        daemon = SpawnedDaemon(name, process, url)
        self.daemons.append(daemon)
        threading.Thread(
            target=self._drain, args=(daemon,), name=f"repro-shard-{name}", daemon=True
        ).start()
        return daemon

    def _drain(self, daemon: SpawnedDaemon) -> None:
        assert daemon.process.stdout is not None
        for line in daemon.process.stdout:
            self._echo(f"[{daemon.name}] {line.rstrip()}")

    # ------------------------------------------------------------------
    def terminate_all(self, grace_s: float = 30.0) -> None:
        """SIGTERM every spawned shard, escalating to SIGKILL after ``grace_s``.

        Graceful first: SIGTERM is the daemon's clean-shutdown path (the
        one that unlinks shared-memory blocks).  Idempotent.
        """
        for daemon in self.daemons:
            if daemon.alive:
                daemon.process.send_signal(signal.SIGTERM)
        for daemon in self.daemons:
            try:
                daemon.process.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                daemon.process.kill()
                daemon.process.wait()
        self.daemons.clear()

    def __enter__(self) -> "DaemonSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate_all()


__all__ = ["DaemonSupervisor", "SpawnedDaemon", "SpawnError", "HANDSHAKE"]
