"""Priority job queue with admission control and deadline-aware entries.

Submission is *admission-controlled*: a job enters the queue only when

* the queue holds fewer than ``max_depth`` jobs (bounded backlog — a slow
  consumer surfaces as fast ``429``-style rejections instead of unbounded
  memory growth), and
* its session has fewer than ``max_inflight_per_session`` jobs queued or
  running (one greedy client cannot monopolize the backlog).

Rejections raise :class:`AdmissionError` with a machine-readable
``reason`` code (``"queue_full"`` / ``"session_busy"``) plus a human
message — the transport layer maps them to HTTP 429 bodies verbatim.

Ordering is **priority-banded FIFO**: jobs carry an integer priority
(higher pops first, default 0) and within one band the dispatcher pops
jobs in strict submission order — which is what keeps duplicate-cell
behavior deterministic (the *first* submission of a cell evaluates it;
every later one is a cache hit).  Starvation is bounded, not merely
hoped away: every pop that bypasses the globally-oldest queued job
increments a counter, and once ``starvation_limit`` consecutive bypasses
accumulate the next pop serves that oldest job regardless of its band.
The escape hatch is deterministic (a counter, not wall-clock aging), so
test runs and replayed traffic order identically.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.runtime.jobs.model import Job
from repro.runtime.jobs.sessions import Session


class AdmissionError(RuntimeError):
    """A job the service refused to enqueue, and why."""

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason
        self.message = message


class JobQueue:
    """Bounded priority queue of :class:`~repro.runtime.jobs.model.Job` objects.

    Parameters
    ----------
    max_depth:
        Admission bound on queued (not yet running) jobs.
    max_inflight_per_session:
        Admission bound on one session's queued-or-running jobs.  The
        session's ``inflight`` counter is incremented under the queue lock
        at admission (:meth:`push`) and must be decremented via
        :meth:`release` when the job reaches a terminal state — both
        mutations go through the queue lock, so a concurrent push can
        never lose a finalizer's decrement.
    starvation_limit:
        After this many consecutive pops that bypassed the globally-oldest
        queued job, the next pop serves that job regardless of priority.
    """

    def __init__(
        self,
        max_depth: int = 64,
        max_inflight_per_session: int = 8,
        starvation_limit: int = 8,
    ):
        if int(max_depth) < 1:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if int(max_inflight_per_session) < 1:
            raise ValueError(
                "max_inflight_per_session must be positive, "
                f"got {max_inflight_per_session}"
            )
        if int(starvation_limit) < 1:
            raise ValueError(
                f"starvation_limit must be positive, got {starvation_limit}"
            )
        self.max_depth = int(max_depth)
        self.max_inflight_per_session = int(max_inflight_per_session)
        self.starvation_limit = int(starvation_limit)
        #: One FIFO per priority band; tuples of (arrival seq, job).
        self._bands: "dict[int, deque[tuple[int, Job]]]" = {}
        self._size = 0
        self._arrivals = 0
        self._bypassed = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.rejected = 0
        self.starvation_pops = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    def push(self, job: Job, session: Session) -> None:
        """Admit ``job`` for ``session`` or raise :class:`AdmissionError`."""
        # Plain objects without a priority land in band 0 — the queue only
        # needs an ordering key, not the full Job surface.
        priority = int(getattr(job, "priority", 0))
        with self._not_empty:
            if self._closed:
                self.rejected += 1
                raise AdmissionError("closed", "job service is shut down")
            if self._size >= self.max_depth:
                self.rejected += 1
                raise AdmissionError(
                    "queue_full",
                    f"job queue is full ({self.max_depth} jobs queued); retry later",
                )
            if session.inflight >= self.max_inflight_per_session:
                self.rejected += 1
                raise AdmissionError(
                    "session_busy",
                    f"session {session.id!r} already has {session.inflight} jobs "
                    f"in flight (cap {self.max_inflight_per_session}); "
                    "poll them to completion first",
                )
            session.inflight += 1
            self._arrivals += 1
            self._bands.setdefault(priority, deque()).append((self._arrivals, job))
            self._size += 1
            self._not_empty.notify()

    def release(self, session: Session) -> None:
        """Drop one of ``session``'s in-flight slots (job reached a terminal
        state).  Uses the same lock as :meth:`push`, which is what keeps the
        read-modify-write on ``session.inflight`` race-free."""
        with self._lock:
            session.inflight = max(0, session.inflight - 1)

    # ------------------------------------------------------------------
    def _oldest_band(self) -> int:
        """Band holding the globally-oldest entry (min arrival seq)."""
        return min(
            (band for band, jobs in self._bands.items() if jobs),
            key=lambda band: self._bands[band][0][0],
        )

    def _pop_locked(self) -> Job:
        oldest = self._oldest_band()
        if self._bypassed >= self.starvation_limit:
            band = oldest
            self.starvation_pops += 1
        else:
            band = max(b for b, jobs in self._bands.items() if jobs)
        self._bypassed = 0 if band == oldest else self._bypassed + 1
        _, job = self._bands[band].popleft()
        self._size -= 1
        return job

    def pop(self, timeout: float | None = None) -> Job | None:
        """Next job (highest band, FIFO within it, starvation-bounded);
        ``None`` on timeout or when closed+empty."""
        with self._not_empty:
            while not self._size:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return self._pop_locked()

    def drain(self) -> list[Job]:
        """Remove and return every queued job in arrival order
        (close-time cancellation)."""
        with self._lock:
            entries: list[tuple[int, Job]] = []
            for jobs in self._bands.values():
                entries.extend(jobs)
                jobs.clear()
            self._size = 0
            return [job for _, job in sorted(entries, key=lambda entry: entry[0])]

    def close(self) -> None:
        """Stop admitting; wake blocked poppers (idempotent)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": self._size,
                "max_depth": self.max_depth,
                "max_inflight_per_session": self.max_inflight_per_session,
                "rejected": self.rejected,
                "starvation_limit": self.starvation_limit,
                "starvation_pops": self.starvation_pops,
                "bands": {
                    str(band): len(jobs)
                    for band, jobs in sorted(self._bands.items())
                    if jobs
                },
            }


__all__ = ["JobQueue", "AdmissionError"]
