"""FIFO job queue with admission control.

Submission is *admission-controlled*: a job enters the queue only when

* the queue holds fewer than ``max_depth`` jobs (bounded backlog — a slow
  consumer surfaces as fast ``429``-style rejections instead of unbounded
  memory growth), and
* its session has fewer than ``max_inflight_per_session`` jobs queued or
  running (one greedy client cannot monopolize the backlog).

Rejections raise :class:`AdmissionError` with a machine-readable
``reason`` code (``"queue_full"`` / ``"session_busy"``) plus a human
message — the transport layer maps them to HTTP 429 bodies verbatim.

The queue is strictly FIFO: the dispatcher pops jobs in submission order,
which is what makes duplicate-cell behavior deterministic (the *first*
submission of a cell evaluates it; every later one is a cache hit).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.runtime.jobs.model import Job
from repro.runtime.jobs.sessions import Session


class AdmissionError(RuntimeError):
    """A job the service refused to enqueue, and why."""

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason
        self.message = message


class JobQueue:
    """Bounded FIFO of :class:`~repro.runtime.jobs.model.Job` objects.

    Parameters
    ----------
    max_depth:
        Admission bound on queued (not yet running) jobs.
    max_inflight_per_session:
        Admission bound on one session's queued-or-running jobs.  The
        session's ``inflight`` counter is incremented under the queue lock
        at admission (:meth:`push`) and must be decremented via
        :meth:`release` when the job reaches a terminal state — both
        mutations go through the queue lock, so a concurrent push can
        never lose a finalizer's decrement.
    """

    def __init__(self, max_depth: int = 64, max_inflight_per_session: int = 8):
        if int(max_depth) < 1:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if int(max_inflight_per_session) < 1:
            raise ValueError(
                "max_inflight_per_session must be positive, "
                f"got {max_inflight_per_session}"
            )
        self.max_depth = int(max_depth)
        self.max_inflight_per_session = int(max_inflight_per_session)
        self._jobs: "deque[Job]" = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._jobs)

    @property
    def closed(self) -> bool:
        return self._closed

    def push(self, job: Job, session: Session) -> None:
        """Admit ``job`` for ``session`` or raise :class:`AdmissionError`."""
        with self._not_empty:
            if self._closed:
                self.rejected += 1
                raise AdmissionError("closed", "job service is shut down")
            if len(self._jobs) >= self.max_depth:
                self.rejected += 1
                raise AdmissionError(
                    "queue_full",
                    f"job queue is full ({self.max_depth} jobs queued); retry later",
                )
            if session.inflight >= self.max_inflight_per_session:
                self.rejected += 1
                raise AdmissionError(
                    "session_busy",
                    f"session {session.id!r} already has {session.inflight} jobs "
                    f"in flight (cap {self.max_inflight_per_session}); "
                    "poll them to completion first",
                )
            session.inflight += 1
            self._jobs.append(job)
            self._not_empty.notify()

    def release(self, session: Session) -> None:
        """Drop one of ``session``'s in-flight slots (job reached a terminal
        state).  Uses the same lock as :meth:`push`, which is what keeps the
        read-modify-write on ``session.inflight`` race-free."""
        with self._lock:
            session.inflight = max(0, session.inflight - 1)

    def pop(self, timeout: float | None = None) -> Job | None:
        """Next job in FIFO order; ``None`` on timeout or when closed+empty."""
        with self._not_empty:
            while not self._jobs:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return self._jobs.popleft()

    def drain(self) -> list[Job]:
        """Remove and return every queued job (close-time cancellation)."""
        with self._lock:
            drained = list(self._jobs)
            self._jobs.clear()
            return drained

    def close(self) -> None:
        """Stop admitting; wake blocked poppers (idempotent)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._jobs),
                "max_depth": self.max_depth,
                "max_inflight_per_session": self.max_inflight_per_session,
                "rejected": self.rejected,
            }


__all__ = ["JobQueue", "AdmissionError"]
