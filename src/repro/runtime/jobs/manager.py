"""`JobManager`: the jobs layer between clients and the evaluation engine.

One manager fronts one :class:`~repro.runtime.service.EvaluationService`
(layer 1) and owns everything multi-client about it:

* a FIFO :class:`~repro.runtime.jobs.queue.JobQueue` with admission
  control (bounded depth, per-session in-flight caps), drained by one
  dispatcher thread — the engine keeps its existing single-submitter
  contract, jobs from any number of clients serialize deterministically;
* per-client :class:`~repro.runtime.jobs.sessions.Session`\\ s (seed
  streams, ledger namespaces, counters);
* the service-level :class:`~repro.runtime.jobs.cache.ResultCache` — every
  completed cell is stored under its content-addressed key (the exact
  :func:`~repro.dse.ledger.plan_key` recipe campaign ledgers use), so a
  duplicate cell from *any* client is a recorded cache hit;
* optional :class:`~repro.provenance.RunManifest` emission per served job.

Both transports sit on top of it: :class:`~repro.runtime.jobs.client.
LocalJobClient` calls it in-process, the HTTP daemon
(:mod:`repro.runtime.server`) exposes the same operations over the wire —
one code path, two bindings.

``close()`` cancels queued jobs (they report ``cancelled``), waits the
dispatcher out, and closes an *owned* engine — unlinking every shared
block, so a daemon shutdown leaks nothing in ``/dev/shm``.
"""

from __future__ import annotations

import threading
import traceback
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.seeding import SeedBank
from repro.datasets.synthetic import Dataset
from repro.runtime.jobs.cache import ResultCache
from repro.runtime.jobs.model import Job, JobState
from repro.runtime.jobs.queue import AdmissionError, JobQueue
from repro.runtime.jobs.sessions import SessionRegistry
from repro.runtime.service import EvaluationService
from repro.runtime.stats import runtime_stats
from repro.simulation.inference import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.campaign import TrainedModel


class JobManager:
    """Queue, sessions, result cache and dispatcher over one evaluation engine.

    Parameters
    ----------
    trained_models / datasets:
        The hosted models and their datasets; forwarded to an owned
        :class:`~repro.runtime.service.EvaluationService` unless
        ``service`` is given.
    service:
        An already-constructed engine to front (not owned: ``close()``
        leaves it running).  Mutually exclusive with the engine knobs.
    max_workers / requested_workers / chunks_per_worker / max_eval_images /
    calibration_images / engine_backend / reuse_prefix / use_shared_memory /
    batch_size:
        Engine knobs, as in :class:`~repro.runtime.service.EvaluationService`.
    max_queue_depth / max_inflight_per_session:
        Admission bounds (see :class:`~repro.runtime.jobs.queue.JobQueue`).
    default_priority:
        Priority band of jobs submitted without an explicit one.
    starvation_limit:
        Consecutive-bypass bound before the oldest queued job is served
        regardless of priority (see :class:`~repro.runtime.jobs.queue.JobQueue`).
    cache_entries:
        Result-cache capacity (``None`` = unbounded).
    cache_persist_dir:
        Spill the result cache through an on-disk
        :class:`~repro.dse.ledger.CampaignLedger` rooted here: every
        completed cell is written through, and a restarted manager loads
        the directory back so it starts warm (a repeated sweep is a 100%
        cache-hit run).  ``None`` keeps the cache memory-only.
    ledger_dir:
        Root of per-session ledger namespaces; ``None`` keeps session
        ledgers in memory.
    seed:
        Root seed of the per-session seed banks.
    record_manifests:
        Emit one digest-stamped :class:`~repro.provenance.RunManifest` per
        completed job (kind ``"job"``), as the CLI verbs do for their runs.
    auto_start:
        Start the dispatcher thread immediately.  ``False`` leaves jobs
        queued until :meth:`start` — deterministic admission-control tests
        fill the queue without racing the dispatcher.
    """

    def __init__(
        self,
        trained_models: "Iterable[TrainedModel] | None" = None,
        datasets: dict[str, Dataset] | None = None,
        *,
        service: EvaluationService | None = None,
        max_workers: int | None = 1,
        requested_workers: int | None = None,
        chunks_per_worker: int = 4,
        max_eval_images: int | None = None,
        calibration_images: int = 128,
        engine_backend: str | None = None,
        reuse_prefix: bool = True,
        use_shared_memory: bool | None = None,
        batch_size: int = 256,
        max_queue_depth: int = 64,
        max_inflight_per_session: int = 8,
        default_priority: int = 0,
        starvation_limit: int = 8,
        cache_entries: int | None = None,
        cache_persist_dir: str | None = None,
        ledger_dir: str | None = None,
        seed: int | None = None,
        record_manifests: bool = False,
        auto_start: bool = True,
    ):
        if service is not None:
            if trained_models is not None or datasets is not None:
                raise ValueError(
                    "pass either a prebuilt service or models+datasets, not both"
                )
            self.service = service
            self._owns_service = False
        else:
            if trained_models is None or datasets is None:
                raise ValueError(
                    "JobManager needs trained_models and datasets (or a service)"
                )
            self.service = EvaluationService(
                trained_models,
                datasets,
                max_workers=max_workers,
                requested_workers=requested_workers,
                chunks_per_worker=chunks_per_worker,
                max_eval_images=max_eval_images,
                calibration_images=calibration_images,
                engine_backend=engine_backend,
                reuse_prefix=reuse_prefix,
                use_shared_memory=use_shared_memory,
                batch_size=batch_size,
            )
            self._owns_service = True
        if isinstance(default_priority, bool) or not isinstance(default_priority, int):
            raise TypeError(f"default_priority must be an integer, got {default_priority!r}")
        self.default_priority = default_priority
        self.queue = JobQueue(
            max_depth=max_queue_depth,
            max_inflight_per_session=max_inflight_per_session,
            starvation_limit=starvation_limit,
        )
        self.cache = ResultCache(cache_entries, persist_dir=cache_persist_dir)
        self.sessions = SessionRegistry(SeedBank(seed), ledger_dir=ledger_dir)
        self.record_manifests = bool(record_manifests)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        #: Monotonic ID mint.  Never decremented — a rejected submission
        #: burns its ID, so a concurrent accepted job can never be
        #: overwritten by an ID reuse.  ``_submitted`` counts accepted jobs.
        self._seq = 0
        self._submitted = 0
        self._context_keys: dict[int, str] = {}
        self._dispatcher: threading.Thread | None = None
        self._closed = False
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        #: Deadline expiries, counted distinctly by where they were caught:
        #: still queued (the dispatcher refused to run the job) vs mid-run
        #: (evaluated, results cached, but finalized cancelled).
        self.deadline_expired_queued = 0
        self.deadline_expired_running = 0
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JobManager":
        """Start the dispatcher thread (idempotent)."""
        if self._closed:
            raise RuntimeError("JobManager is closed")
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-job-dispatcher", daemon=True
            )
            self._dispatcher.start()
        return self

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Cancel queued jobs, stop the dispatcher, close an owned engine.

        Queued (never started) jobs transition to ``cancelled``; the job
        currently running is waited out.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        for job in self.queue.drain():
            job.cancel()
            self._finalize(job)
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        # Cancel anything pushed between drain() and the dispatcher's exit.
        for job in self.queue.drain():
            job.cancel()
            self._finalize(job)
        if self._owns_service:
            self.service.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def models(self) -> list[dict]:
        """JSON-able descriptors of the hosted models (the ``/models`` payload)."""
        return [
            {
                "index": index,
                "name": trained.name,
                "dataset": trained.dataset_name,
                "float_accuracy": trained.float_accuracy,
                "mac_layer_names": list(self.service.mac_names(index)),
                "context_key": self.context_key(index),
            }
            for index, trained in enumerate(self.service.models)
        ]

    def resolve_model(self, name: str, dataset_name: str | None = None) -> int:
        """Index of one hosted model by name (see ``EvaluationService.model_index``)."""
        return self.service.model_index(name, dataset_name)

    def context_key(self, model_index: int) -> str:
        """Evaluation-context digest of one hosted model's measurement setup.

        Byte-identical to the key a
        :class:`~repro.dse.evaluator.ServicePlanEvaluator` (or the serial
        :class:`~repro.dse.evaluator.PlanEvaluator` with the same knobs)
        reports, so job-layer cache keys and campaign-ledger keys agree.
        """
        model_index = int(model_index)
        with self._lock:
            cached = self._context_keys.get(model_index)
        if cached is not None:
            return cached
        from repro.dse.evaluator import _resolve_eval_arrays
        from repro.dse.ledger import evaluation_context_key

        trained = self.service.models[model_index]
        dataset = self.service.datasets[trained.dataset_name]
        eval_images, eval_labels = _resolve_eval_arrays(
            dataset, self.service.max_eval_images, None, None
        )
        key = evaluation_context_key(
            trained.model,
            eval_images,
            eval_labels,
            dataset.train_images[: self.service.calibration_images],
            batch_size=self.service.batch_size,
            tag=dataset.name,
        )
        with self._lock:
            self._context_keys[model_index] = key
        return key

    def job(self, job_id: str) -> Job:
        """The job registered under ``job_id`` (:class:`KeyError` if unknown)."""
        with self._lock:
            return self._jobs[job_id]

    def stats(self) -> dict:
        """One consistent schema over engine, jobs, cache and sessions."""
        with self._lock:
            jobs_submitted = self._submitted
            states: dict[str, int] = {}
            for job in self._jobs.values():
                state = job.state.value
                states[state] = states.get(state, 0) + 1
        return runtime_stats(
            engine=self.service.stats()["engine"],
            jobs={
                "submitted": jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "cancelled": self.jobs_cancelled,
                "deadline_expired_queued": self.deadline_expired_queued,
                "deadline_expired_running": self.deadline_expired_running,
                "rejected": self.queue.rejected,
                "by_state": states,
                **self.queue.stats(),
            },
            cache=self.cache.stats(),
            sessions=self.sessions.stats(),
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        model_index: int,
        plans: Sequence[ExecutionPlan],
        session: str = "default",
        label: str = "",
        priority: int | None = None,
        deadline_s: float | None = None,
    ) -> Job:
        """Admit one job; returns it immediately (poll or :meth:`Job.wait`).

        ``priority`` (default: the manager's ``default_priority``) picks the
        scheduling band — higher runs first, FIFO within a band.
        ``deadline_s`` bounds the job's total latency from admission: a job
        whose deadline elapses finalizes ``cancelled`` with reason
        ``deadline_exceeded`` whether it was still queued or already running.

        Raises :class:`~repro.runtime.jobs.queue.AdmissionError` when the
        queue is full or the session is over its in-flight cap, and plain
        ``IndexError`` / ``TypeError`` / ``ValueError`` on malformed input
        (the transport maps the two families to 429 and 400).
        """
        if self._closed:
            raise AdmissionError("closed", "job service is shut down")
        if priority is None:
            priority = self.default_priority
        elif isinstance(priority, bool) or not isinstance(priority, int):
            raise TypeError(f"priority must be an integer, got {priority!r}")
        if deadline_s is not None:
            if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
                raise TypeError(f"deadline_s must be a number, got {deadline_s!r}")
            deadline_s = float(deadline_s)
            if not deadline_s > 0:
                raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        model_index = int(model_index)
        if not 0 <= model_index < len(self.service.models):
            raise IndexError(
                f"model index {model_index} out of range "
                f"(service hosts {len(self.service.models)} models)"
            )
        plans = list(plans)
        if not plans:
            raise ValueError("a job needs at least one plan")
        for plan in plans:
            if not isinstance(plan, ExecutionPlan):
                raise TypeError(f"job plans must be ExecutionPlans, got {plan!r}")
        sess = self.sessions.get_or_create(session)
        with self._lock:
            self._seq += 1
            job = Job(
                f"job-{self._seq:06d}",
                sess.id,
                model_index,
                plans,
                label=label,
                priority=priority,
                deadline_s=deadline_s,
            )
            self._jobs[job.id] = job
        try:
            self.queue.push(job, sess)
        except AdmissionError:
            # Forget the job but keep `_seq` where it is: rolling the mint
            # back would race a concurrent submit into reusing a live ID.
            with self._lock:
                del self._jobs[job.id]
            raise
        with self._lock:
            self._submitted += 1
            sess.jobs_submitted += 1
            sess.cells_submitted += len(plans)
        return job

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self.queue.closed:
                    return
                continue
            if job.expired():
                job.cancel(
                    f"deadline of {job.deadline_s}s elapsed while the job "
                    "was still queued",
                    reason="deadline_exceeded",
                )
                with self._lock:
                    self.deadline_expired_queued += 1
                self._finalize(job)
                continue
            try:
                self._run_job(job)
            except BaseException as exc:  # dispatcher must survive any job
                job.fail(f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            finally:
                self._finalize(job)

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        mac_names = self.service.mac_names(job.model_index)
        context = self.context_key(job.model_index)
        from repro.dse.ledger import plan_key

        keys = [plan_key(context, plan, mac_names) for plan in job.plans]
        job.cell_keys = keys
        # Dedup within the job, then against the service-level cache.
        first_plan: dict[str, ExecutionPlan] = {}
        unique_keys: list[str] = []
        for key, plan in zip(keys, job.plans):
            if key not in first_plan:
                first_plan[key] = plan
                unique_keys.append(key)
        values: dict[str, float] = {}
        miss_keys: list[str] = []
        for key in unique_keys:
            cached = self.cache.get(key)
            if cached is not None:
                values[key] = cached
            else:
                miss_keys.append(key)
        if miss_keys:
            accuracies = self.service.evaluate_plans(
                job.model_index, [first_plan[key] for key in miss_keys]
            )
            session = self.sessions.get_or_create(job.session_id)
            for key, acc in zip(miss_keys, accuracies):
                values[key] = acc
                self.cache.put(key, acc)
                session.ledger.put(
                    key,
                    {
                        "kind": "job-cell",
                        "accuracy": acc,
                        "context": context,
                        "job": job.id,
                        "label": job.label,
                    },
                )
        hits = len(keys) - len(miss_keys)
        results = [values[key] for key in keys]
        if job.expired():
            # The evaluation itself is never wasted — every fresh cell is
            # already in the cache and the session ledger above — but the
            # caller's deadline has passed, so the job finalizes cancelled.
            job.cancel(
                f"deadline of {job.deadline_s}s elapsed while the job was running",
                reason="deadline_exceeded",
            )
            with self._lock:
                self.deadline_expired_running += 1
            return
        if self.record_manifests:
            self._write_manifest(job, context, results, hits, len(miss_keys))
        job.finish(results, hits, len(miss_keys))

    def _write_manifest(
        self, job: Job, context: str, results: list[float], hits: int, misses: int
    ) -> None:
        from repro.provenance import record_run

        with record_run(
            "job",
            label=job.id,
            inputs={
                "job": {
                    "id": job.id,
                    "session": job.session_id,
                    "label": job.label,
                    "model": self.service.models[job.model_index].name,
                    "dataset": self.service.models[job.model_index].dataset_name,
                    "cells": len(job.plans),
                    "context_key": context,
                    "cell_keys": list(job.cell_keys or []),
                },
                "service": self.service.session_context(),
            },
        ) as manifest:
            manifest.outputs = {
                "accuracies": results,
                "cache_hits": hits,
                "cache_misses": misses,
            }

    def _finalize(self, job: Job) -> None:
        session = self.sessions.get_or_create(job.session_id)
        # The in-flight slot is owned by the queue lock (same lock push()
        # increments under); everything else here is manager-lock state.
        self.queue.release(session)
        with self._lock:
            if job.state is JobState.DONE:
                self.jobs_completed += 1
                session.jobs_completed += 1
                session.cache_hits += job.cache_hits
            elif job.state is JobState.FAILED:
                self.jobs_failed += 1
            elif job.state is JobState.CANCELLED:
                self.jobs_cancelled += 1


__all__ = ["JobManager"]
