"""Service-level result cache: content-addressed accuracies, shared by all clients.

The :class:`~repro.dse.ledger.CampaignLedger` dedups evaluations *within*
one campaign; this cache promotes the same content-addressed recipe to the
whole service: every completed cell is stored under its
:func:`~repro.dse.ledger.plan_key` (sha256 of the evaluation-context
digest — model bytes, eval/calibration bytes, batch size — plus the plan's
per-layer fingerprint sequence), so a duplicate cell submitted by *any*
client, in any job, in any session, is a cache hit that costs zero
evaluations.

With ``persist_dir`` the cache additionally **survives restarts**: every
``put`` is written through to an on-disk :class:`~repro.dse.ledger.
CampaignLedger` (one atomic ``<key>.json`` per cell, kind
``"result-cache"``), and construction loads the directory back — a
restarted daemon (or a freshly spawned shard pointed at a shared
directory) starts warm, so resubmitting yesterday's sweep is a 100%
cache-hit run.  Keys are content-addressed, so a stale or foreign record
can never alias a different measurement setup.

Bounded LRU with hit/miss/eviction counters (surfaced through
``stats()``); thread-safe — the dispatcher thread populates it while HTTP
handler threads read stats concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.dse.ledger import CampaignLedger

#: Record kind the persistent spill writes; other kinds sharing the
#: directory (e.g. session ledgers' "job-cell" records) are loadable too —
#: anything with a numeric "accuracy" field is a valid warm-start source.
PERSIST_KIND = "result-cache"


class ResultCache:
    """Bounded, thread-safe LRU of ``cell key -> accuracy``.

    Parameters
    ----------
    max_entries:
        Capacity; inserting beyond it evicts the least-recently-used
        entry.  ``None`` means unbounded (the in-process default — one
        accuracy is a float, so even large campaigns stay tiny).
    persist_dir:
        Directory for the write-through spill (see module docstring).
        ``None`` keeps the cache memory-only.
    """

    def __init__(self, max_entries: int | None = None, persist_dir: str | None = None):
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.persist_dir = persist_dir
        self._ledger = None if persist_dir is None else CampaignLedger(persist_dir)
        self._entries: "OrderedDict[str, float]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.loaded = 0
        if self._ledger is not None:
            self._load()

    def _load(self) -> None:
        """Warm-start from the spill directory (eviction-capped, no counters)."""
        assert self._ledger is not None
        for key, record in self._ledger.iter_disk_records():
            accuracy = record.get("accuracy")
            if not isinstance(accuracy, (int, float)) or isinstance(accuracy, bool):
                continue
            self._entries[key] = float(accuracy)
            self.loaded += 1
            while (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> float | None:
        """The cached accuracy under ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, accuracy: float) -> None:
        """Store ``accuracy`` under ``key``, evicting LRU entries over capacity.

        With persistence enabled the value is also written through to disk
        (atomic temp-file + rename); eviction only trims the in-memory
        LRU — the disk record survives, so an evicted-then-resubmitted
        cell is a warm start away, never a lost measurement.
        """
        with self._lock:
            self._entries[key] = float(accuracy)
            self._entries.move_to_end(key)
            while self.max_entries is not None and len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            if self._ledger is not None:
                self._ledger.put(
                    key, {"kind": PERSIST_KIND, "accuracy": float(accuracy)}
                )

    def stats(self) -> dict:
        """Counters of the cache so far (one consistent snapshot)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_ratio": (self.hits / total) if total else 0.0,
                "loaded": self.loaded,
                "persist_path": self.persist_dir,
            }


__all__ = ["ResultCache", "PERSIST_KIND"]
