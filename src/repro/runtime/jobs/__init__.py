"""The jobs layer of the evaluation runtime (layer 2 of 3).

The runtime stack is three explicit layers::

    layer 3  transport   repro serve (HTTP daemon)  /  in-process clients
    layer 2  jobs        JobManager: queue + admission control, sessions,
                         service-level result cache, provenance
    layer 1  engine      EvaluationService: publish-once shared memory,
                         prefix-aware scheduling, worker pool

This package is layer 2: everything *multi-client* about evaluation —
admission-controlled FIFO job queueing, per-client sessions (seed streams
+ ledger namespaces), and the content-addressed service-level result
cache that makes duplicate cells free across any client — without the
engine below knowing clients exist or the transport above knowing how
cells execute.

Entry points: :class:`JobManager` (host a service), :class:`LocalJobClient`
/ :class:`HttpJobClient` (talk to one), :class:`RemotePlanEvaluator` (run
a DSE campaign against one), :func:`sweep_over_jobs` (the Table III sweep
as jobs).
"""

from repro.runtime.jobs.cache import ResultCache
from repro.runtime.jobs.client import (
    HttpJobClient,
    JobClientError,
    JobFailedError,
    LocalJobClient,
    RemoteBatch,
    RemotePlanEvaluator,
    sweep_over_jobs,
)
from repro.runtime.jobs.codec import (
    PlanCodecError,
    TableMultiplier,
    decode_plan,
    decode_plans,
    encode_plan,
    encode_plans,
)
from repro.runtime.jobs.manager import JobManager
from repro.runtime.jobs.model import Job, JobState
from repro.runtime.jobs.queue import AdmissionError, JobQueue
from repro.runtime.jobs.sessions import Session, SessionError, SessionRegistry

__all__ = [
    "AdmissionError",
    "HttpJobClient",
    "Job",
    "JobClientError",
    "JobFailedError",
    "JobManager",
    "JobQueue",
    "JobState",
    "LocalJobClient",
    "PlanCodecError",
    "RemoteBatch",
    "RemotePlanEvaluator",
    "ResultCache",
    "Session",
    "SessionError",
    "SessionRegistry",
    "TableMultiplier",
    "decode_plan",
    "decode_plans",
    "encode_plan",
    "encode_plans",
    "sweep_over_jobs",
]
