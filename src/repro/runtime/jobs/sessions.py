"""Per-client sessions: named seed streams and ledger namespaces.

A session is the multi-tenant unit of the jobs layer: each client gets

* **its own deterministic seed streams** — a
  :class:`~repro.core.seeding.SeedBank` spawned from the service's root
  bank under the session id, so two clients running seeded algorithms
  (eval subsampling, NSGA-II) against one daemon draw independent,
  reproducible streams — and re-connecting under the same session id
  replays them;
* **its own ledger namespace** — an optional
  :class:`~repro.dse.ledger.CampaignLedger` rooted at
  ``<ledger_dir>/<session id>/``, so one client's campaign records never
  mix with another's (the *service-level* result cache still dedups
  across sessions — dedup is global, provenance is per-tenant);
* **its own counters** — submitted/completed jobs and the in-flight count
  the admission controller caps.

Sessions are created on first use (``get_or_create``): the transport layer
simply passes whatever ``session`` string the client supplied (default
``"default"``).
"""

from __future__ import annotations

import os
import re
import threading

from repro.core.seeding import SeedBank
from repro.dse.ledger import CampaignLedger

#: Session ids become directory names (ledger namespaces), so keep them flat.
_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class SessionError(ValueError):
    """An invalid session id (HTTP 400 material)."""


class Session:
    """One client's state within a job service."""

    def __init__(
        self,
        session_id: str,
        seeds: SeedBank,
        ledger_dir: str | None = None,
    ):
        self.id = session_id
        #: Seed streams private to this session (``seeds.generator(name)``).
        self.seeds = seeds
        self.ledger_dir = ledger_dir
        self._ledger: CampaignLedger | None = None
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.cells_submitted = 0
        self.cache_hits = 0
        #: Jobs currently queued or running (the admission-control quantity).
        self.inflight = 0

    @property
    def ledger(self) -> CampaignLedger:
        """This session's campaign ledger (created lazily; in-memory when
        the service has no ledger directory)."""
        if self._ledger is None:
            self._ledger = CampaignLedger(self.ledger_dir)
        return self._ledger

    def stats(self) -> dict:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "cells_submitted": self.cells_submitted,
            "cache_hits": self.cache_hits,
            "inflight": self.inflight,
            "ledger_dir": self.ledger_dir,
        }


class SessionRegistry:
    """Thread-safe ``session id -> Session`` map with create-on-first-use.

    Parameters
    ----------
    seeds:
        The service's root seed bank; each session's bank is
        ``seeds.spawn(f"session:{id}")`` — stable per id, independent
        across ids, unaffected by creation order.
    ledger_dir:
        Root of the per-session ledger namespaces (``<dir>/<id>/``);
        ``None`` keeps every session ledger in memory.
    """

    def __init__(self, seeds: SeedBank, ledger_dir: str | None = None):
        self._seeds = seeds
        self._ledger_dir = ledger_dir
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()

    def validate_id(self, session_id: str) -> str:
        session_id = str(session_id)
        if not _SESSION_ID_RE.match(session_id):
            raise SessionError(
                f"invalid session id {session_id!r}: use 1-64 characters from "
                "[A-Za-z0-9._-], starting with an alphanumeric"
            )
        return session_id

    def get_or_create(self, session_id: str = "default") -> Session:
        session_id = self.validate_id(session_id)
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                ledger_dir = (
                    None
                    if self._ledger_dir is None
                    else os.path.join(self._ledger_dir, session_id)
                )
                session = Session(
                    session_id,
                    self._seeds.spawn(f"session:{session_id}"),
                    ledger_dir=ledger_dir,
                )
                self._sessions[session_id] = session
            return session

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict:
        with self._lock:
            return {
                session_id: session.stats()
                for session_id, session in sorted(self._sessions.items())
            }


__all__ = ["Session", "SessionRegistry", "SessionError"]
