"""The :class:`Job` model: one submitted unit of evaluation work.

A job is *model-ref + plan-set + eval context*: the index of a hosted
model, the list of :class:`~repro.simulation.inference.ExecutionPlan`
cells to score against it, and the session it belongs to (the evaluation
context itself — eval/calibration arrays, batch size, backend — is a
property of the hosting service and is folded into every cell's
content-addressed key).  Jobs move through a strict lifecycle::

    QUEUED -> RUNNING -> DONE | FAILED
    QUEUED | RUNNING ------> CANCELLED        (service closed / deadline)

Cancellations carry a machine-readable :attr:`Job.reason` code alongside
the human message: ``"service_closed"`` when the daemon shut down with
the job still queued, ``"deadline_exceeded"`` when the job's deadline
elapsed — whether it expired *in the queue* (the dispatcher cancels it
instead of running it) or *mid-run* (the evaluation completes, results
are still cached and ledgered, but the job finalizes cancelled because
its caller's deadline has passed).

State transitions happen on the dispatcher thread; readers (HTTP handler
threads, polling clients) synchronize through :meth:`Job.wait` /
:meth:`Job.view`, which snapshot under the job's lock.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Sequence

from repro.simulation.inference import ExecutionPlan


class JobState(str, enum.Enum):
    """Lifecycle states of a job (string-valued: JSON-able as-is)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class Job:
    """One submitted plan-set evaluation against one hosted model."""

    def __init__(
        self,
        job_id: str,
        session_id: str,
        model_index: int,
        plans: Sequence[ExecutionPlan],
        label: str = "",
        priority: int = 0,
        deadline_s: float | None = None,
    ):
        self.id = job_id
        self.session_id = session_id
        self.model_index = int(model_index)
        self.plans = list(plans)
        self.label = str(label)
        #: Scheduling band: higher pops first (see JobQueue).
        self.priority = int(priority)
        #: Caller's deadline, seconds from admission; ``None`` = no deadline.
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.deadline_at = (
            None if deadline_s is None else time.monotonic() + float(deadline_s)
        )
        #: Machine-readable cancellation code (``service_closed`` /
        #: ``deadline_exceeded``); ``None`` unless CANCELLED.
        self.reason: str | None = None
        self.state = JobState.QUEUED
        #: Accuracies in plan submission order (set when DONE).
        self.accuracies: list[float] | None = None
        #: Human-readable failure reason (set when FAILED/CANCELLED).
        self.error: str | None = None
        #: Content-addressed cell keys (set by the dispatcher before running).
        self.cell_keys: list[str] | None = None
        #: Cells served from the service-level result cache / freshly evaluated.
        self.cache_hits = 0
        self.cache_misses = 0
        self._lock = threading.Lock()
        self._finished = threading.Event()

    def __len__(self) -> int:
        return len(self.plans)

    # ------------------------------------------------------------------
    # Dispatcher-side transitions
    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        with self._lock:
            self.state = JobState.RUNNING

    def finish(self, accuracies: list[float], hits: int, misses: int) -> None:
        with self._lock:
            self.accuracies = list(accuracies)
            self.cache_hits = int(hits)
            self.cache_misses = int(misses)
            self.state = JobState.DONE
        self._finished.set()

    def fail(self, error: str) -> None:
        with self._lock:
            self.error = str(error)
            self.state = JobState.FAILED
        self._finished.set()

    def cancel(
        self,
        message: str = "service closed while job was queued",
        reason: str = "service_closed",
    ) -> None:
        with self._lock:
            self.error = str(message)
            self.reason = str(reason)
            self.state = JobState.CANCELLED
        self._finished.set()

    def expired(self, now: float | None = None) -> bool:
        """Whether the job's deadline has elapsed (always False without one)."""
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (or ``timeout``)."""
        return self._finished.wait(timeout)

    def view(self) -> dict:
        """JSON-able snapshot of the job (the GET ``/jobs/<id>`` payload)."""
        with self._lock:
            return {
                "id": self.id,
                "session": self.session_id,
                "model_index": self.model_index,
                "label": self.label,
                "state": self.state.value,
                "priority": self.priority,
                "deadline_s": self.deadline_s,
                "reason": self.reason,
                "cells": len(self.plans),
                "accuracies": None
                if self.accuracies is None
                else list(self.accuracies),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "error": self.error,
            }


__all__ = ["Job", "JobState"]
