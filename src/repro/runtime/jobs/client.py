"""Job clients: one interface, an in-process and an HTTP binding.

Everything above the jobs layer talks to a *client* exposing the same five
operations — ``models()``, ``submit_job()``, ``job()``, ``wait()``,
``stats()`` — so the CLI verbs, the sweep helpers and the DSE campaign do
not know (or care) whether the evaluation engine lives in this process or
behind ``repro serve``:

* :class:`LocalJobClient` binds the interface straight onto a
  :class:`~repro.runtime.jobs.manager.JobManager`;
* :class:`HttpJobClient` speaks the daemon's JSON API over stdlib
  ``urllib`` (POST ``/jobs``, poll GET ``/jobs/<id>``), translating
  admission rejections (HTTP 429) back into
  :class:`~repro.runtime.jobs.queue.AdmissionError`;
* :class:`RemotePlanEvaluator` adapts either client to the DSE campaign's
  evaluator surface (``evaluate`` / ``submit`` / ``context_key`` /
  ``mac_layer_names``), so ``repro dse --remote URL`` runs the exact same
  search loop against a daemon — with the server-reported context key
  keeping ledger records interchangeable with local campaigns;
* :func:`sweep_over_jobs` rebuilds the Table III sweep on the job API (one
  job per model), bit-exact with
  :func:`~repro.simulation.campaign.parallel_sweep`.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Sequence

from repro.runtime.jobs.codec import decode_plans, encode_plans
from repro.runtime.jobs.manager import JobManager
from repro.runtime.jobs.model import JobState
from repro.runtime.jobs.queue import AdmissionError
from repro.simulation.inference import ExecutionPlan


class JobFailedError(RuntimeError):
    """A polled job reached ``failed`` (or ``cancelled``) instead of ``done``."""

    def __init__(self, view: dict):
        super().__init__(
            f"job {view.get('id')} {view.get('state')}: {view.get('error')}"
        )
        self.view = view


class JobClientError(RuntimeError):
    """A transport-level error from the HTTP binding (non-2xx, bad payload,
    unreachable or unresponsive daemon).  ``status`` is ``None`` when no
    HTTP response was received at all (connection refused, timeout)."""

    def __init__(self, status: "int | None", message: str):
        prefix = f"HTTP {status}" if status is not None else "transport error"
        super().__init__(f"{prefix}: {message}")
        self.status = status


class LocalJobClient:
    """The in-process binding: a thin veneer over one :class:`JobManager`.

    ``own_manager=True`` (default) closes the manager with the client —
    the single-owner shape the CLI verbs use.
    """

    def __init__(self, manager: JobManager, own_manager: bool = True):
        self.manager = manager
        self._own_manager = bool(own_manager)

    # ------------------------------------------------------------------
    def models(self) -> list[dict]:
        return self.manager.models()

    def submit_job(
        self,
        model: "int | str",
        plans: Sequence[ExecutionPlan],
        session: str = "default",
        label: str = "",
        dataset: str | None = None,
        priority: int | None = None,
        deadline_s: float | None = None,
    ) -> str:
        if isinstance(model, str):
            model = self.manager.resolve_model(model, dataset)
        return self.manager.submit(
            model,
            plans,
            session=session,
            label=label,
            priority=priority,
            deadline_s=deadline_s,
        ).id

    def job(self, job_id: str) -> dict:
        return self.manager.job(job_id).view()

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job is terminal; returns its final view.

        Raises :class:`JobFailedError` on ``failed``/``cancelled`` and
        :class:`TimeoutError` when ``timeout`` elapses first.
        """
        job = self.manager.job(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state.value} after {timeout}s")
        view = job.view()
        if view["state"] != JobState.DONE.value:
            raise JobFailedError(view)
        return view

    def stats(self) -> dict:
        return self.manager.stats()

    def close(self) -> None:
        if self._own_manager:
            self.manager.close()

    def __enter__(self) -> "LocalJobClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class HttpJobClient:
    """The wire binding: the same interface against a ``repro serve`` daemon.

    Plans are shipped through the fingerprint-preserving codec
    (:mod:`repro.runtime.jobs.codec`), so content-addressed cell keys —
    and therefore cache hits and ledger records — are identical to
    submitting the same plans in-process.

    ``request_timeout`` bounds every single HTTP round trip, so a hung
    daemon surfaces as :class:`JobClientError` instead of blocking forever
    — in particular :meth:`wait`'s deadline keeps ticking because no one
    poll can stall past the request timeout.

    Transport-level failures (connection refused/reset, timeout — i.e. no
    HTTP response at all) are **retried for GETs only**, up to ``retries``
    times with capped exponential backoff: status polls and stats reads
    are idempotent, so one blip mid-campaign should not fail hours of
    work.  ``POST /jobs`` is *never* retried — a submission that died
    after reaching the daemon may already hold an in-flight slot, and a
    blind resend would double-submit.  HTTP error responses (4xx/5xx) are
    never retried either: the daemon answered; retrying cannot change it.
    """

    def __init__(
        self,
        base_url: str,
        poll_interval: float = 0.05,
        request_timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
    ):
        if int(retries) < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.poll_interval = float(poll_interval)
        self.request_timeout = float(request_timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self._model_cache: list[dict] | None = None

    # ------------------------------------------------------------------
    def _request_once(self, method: str, path: str, payload: dict | None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.request_timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError:
                parsed = {"error": body}
            message = parsed.get("error", body)
            if error.code == 429:
                raise AdmissionError(
                    parsed.get("reason", "rejected"), message
                ) from None
            raise JobClientError(error.code, message) from None
        except (
            urllib.error.URLError,
            TimeoutError,
            ConnectionError,
            http.client.HTTPException,
        ) as error:
            # Connection refused/reset, DNS failure, socket timeout, or a
            # connection that died mid-response (RemoteDisconnected,
            # IncompleteRead): no usable HTTP response, so no status.
            reason = getattr(error, "reason", error)
            raise JobClientError(
                None, f"cannot reach {self.base_url}{path}: {reason}"
            ) from None

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        # Only idempotent GETs retry; see the class docstring.
        attempts = 1 + (self.retries if method == "GET" else 0)
        delay = self.backoff
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload)
            except JobClientError as error:
                if error.status is not None or attempt + 1 == attempts:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, self.max_backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One raw JSON round trip (the gateway's forwarding primitive)."""
        return self._request(method, path, payload)

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def models(self) -> list[dict]:
        if self._model_cache is None:
            self._model_cache = self._request("GET", "/models")["models"]
        return self._model_cache

    def submit_job(
        self,
        model: "int | str",
        plans: Sequence[ExecutionPlan],
        session: str = "default",
        label: str = "",
        dataset: str | None = None,
        priority: int | None = None,
        deadline_s: float | None = None,
    ) -> str:
        payload: dict = {
            "plans": encode_plans(list(plans)),
            "session": session,
            "label": label,
        }
        if priority is not None:
            payload["priority"] = priority
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if isinstance(model, int):
            payload["model_index"] = model
        else:
            payload["model"] = model
            if dataset is not None:
                payload["dataset"] = dataset
        return self._request("POST", "/jobs", payload)["job"]["id"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            state = view["state"]
            if state == JobState.DONE.value:
                return view
            if state in (JobState.FAILED.value, JobState.CANCELLED.value):
                raise JobFailedError(view)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {state} after {timeout}s")
            time.sleep(self.poll_interval)

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def close(self) -> None:
        """Nothing to release client-side (the daemon outlives its clients)."""

    def __enter__(self) -> "HttpJobClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteBatch:
    """Async handle of one submitted job (``results()`` polls to completion)."""

    def __init__(self, client, job_id: str, num_plans: int):
        self._client = client
        self.job_id = job_id
        self._num_plans = num_plans

    def __len__(self) -> int:
        return self._num_plans

    def results(self) -> list[float]:
        view = self._client.wait(self.job_id)
        return [float(value) for value in view["accuracies"]]


class RemotePlanEvaluator:
    """DSE evaluator surface over a job client (the ``--remote`` campaign path).

    Scoring submits one job per candidate batch; the context key and MAC
    layer names come from the server's ``/models`` descriptors, so ledger
    records a remote campaign writes are interchangeable with local runs
    of the same measurement setup.  The one-call baseline adapters need a
    local executor (:attr:`executor`) — not available remotely by design.
    """

    def __init__(
        self,
        client: "LocalJobClient | HttpJobClient",
        model: "int | str",
        dataset: str | None = None,
        session: str = "default",
    ):
        self.client = client
        self.session = session
        infos = client.models()
        if isinstance(model, int):
            matches = [info for info in infos if info["index"] == model]
        else:
            matches = [
                info
                for info in infos
                if info["name"] == model
                and (dataset is None or info["dataset"] == dataset)
            ]
        if not matches:
            raise KeyError(f"service hosts no model {model!r} (dataset={dataset!r})")
        if len(matches) > 1:
            raise KeyError(
                f"model {model!r} is hosted for several datasets; pass dataset"
            )
        self.info = matches[0]
        self.model_index = int(self.info["index"])
        self.evaluations = 0
        self._batch_seq = 0

    # ------------------------------------------------------------------
    @property
    def executor(self):
        raise RuntimeError(
            "baseline strategies drive a local executor directly and cannot "
            "run against a remote evaluation service; run them without --remote"
        )

    def context_key(self) -> str:
        return self.info["context_key"]

    def mac_layer_names(self) -> list[str]:
        return list(self.info["mac_layer_names"])

    def submit(self, plans: Sequence[ExecutionPlan]) -> RemoteBatch:
        plans = list(plans)
        if not plans:
            from repro.dse.evaluator import ResolvedBatch

            return ResolvedBatch([])
        self._batch_seq += 1
        job_id = self.client.submit_job(
            self.model_index,
            plans,
            session=self.session,
            label=f"dse-batch-{self._batch_seq}",
        )
        self.evaluations += len(plans)
        return RemoteBatch(self.client, job_id, len(plans))

    def evaluate(self, plans: Sequence[ExecutionPlan]) -> list[float]:
        return self.submit(plans).results()


def sweep_over_jobs(
    client: "LocalJobClient | HttpJobClient",
    perforations: Sequence[int] = (1, 2, 3),
    session: str = "default",
    models: "Sequence[int] | None" = None,
):
    """The Table III sweep as jobs: one job per hosted model.

    Submits every model's cells (accurate baseline + every ``(m, cv)``
    combination) as one job, waits them out in submission order, and
    assembles the standard :class:`~repro.simulation.campaign.SweepResult`
    — bit-exact with :func:`~repro.simulation.campaign.parallel_sweep`
    over the same hosted models, because the engine underneath is the
    same.  Returns ``(result, job_stats)`` where ``job_stats`` carries the
    per-sweep cache totals (``{"jobs", "cells", "cache_hits",
    "cache_misses"}``).

    ``models`` restricts the sweep to those hosted-model indices.
    """
    from repro.simulation.campaign import (
        _assemble_sweep_result,
        _spec_plan,
        _sweep_cell_specs,
    )

    infos = client.models()
    if models is not None:
        wanted = set(int(index) for index in models)
        infos = [info for info in infos if info["index"] in wanted]
    if not infos:
        raise ValueError("no hosted models to sweep")

    class _ModelRef:
        def __init__(self, name: str, dataset_name: str):
            self.name = name
            self.dataset_name = dataset_name

    refs = [_ModelRef(info["name"], info["dataset"]) for info in infos]
    specs = _sweep_cell_specs(refs, perforations)
    per_model: dict[int, list[tuple[int, int | None, bool]]] = {}
    for ref_index, m, with_cv in specs:
        per_model.setdefault(ref_index, []).append((ref_index, m, with_cv))
    job_ids: list[tuple[int, str]] = []
    for ref_index, model_specs in per_model.items():
        plans = [_spec_plan(m, with_cv) for _, m, with_cv in model_specs]
        job_ids.append(
            (
                ref_index,
                client.submit_job(
                    infos[ref_index]["index"],
                    plans,
                    session=session,
                    label=f"sweep-{refs[ref_index].name}",
                ),
            )
        )
    cell_results: list[tuple[int, int | None, bool, float]] = []
    totals = {"jobs": len(job_ids), "cells": 0, "cache_hits": 0, "cache_misses": 0}
    for ref_index, job_id in job_ids:
        view = client.wait(job_id)
        totals["cells"] += view["cells"]
        totals["cache_hits"] += view["cache_hits"]
        totals["cache_misses"] += view["cache_misses"]
        for (spec_index, m, with_cv), acc in zip(per_model[ref_index], view["accuracies"]):
            cell_results.append((spec_index, m, with_cv, float(acc)))
    return _assemble_sweep_result(refs, perforations, cell_results), totals


__all__ = [
    "LocalJobClient",
    "HttpJobClient",
    "RemoteBatch",
    "RemotePlanEvaluator",
    "JobFailedError",
    "JobClientError",
    "sweep_over_jobs",
    "decode_plans",
    "encode_plans",
]
