"""Wire codec: :class:`~repro.simulation.inference.ExecutionPlan` <-> JSON.

The jobs layer (and the HTTP transport above it) ships plans between
clients and the daemon as plain JSON.  The codec is **fingerprint
preserving**: a plan that round-trips through it produces the exact same
:meth:`~repro.simulation.inference.ProductModel.fingerprint` sequence as
the original, so content-addressed cache keys (and therefore ledger
records and the service-level result cache) are identical whether a cell
arrived in-process or over the wire.

Wire format of one product model::

    {"kind": "accurate"}
    {"kind": "perforated", "m": 2, "use_control_variate": true}
    {"kind": "lut", "name": "mul8u_XYZ", "table": "<base64 int64 LE bytes>"}

and of one plan::

    {"default": {...}, "per_layer": {"<layer name>": {...}, ...}}

LUT tables travel by value (the 256x256 int64 grid, base64-encoded) so a
remote client can submit a multiplier the server has never seen; decoding
wraps the table in a :class:`TableMultiplier`, whose
:meth:`~repro.multipliers.base.Multiplier.build_lut` reproduces the table
bit-exactly — keeping the LUT fingerprint (a digest of the table bytes)
stable across the round trip.
"""

from __future__ import annotations

import base64

import numpy as np

from repro.multipliers.base import OPERAND_LEVELS, Multiplier
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
    ProductModel,
)


class PlanCodecError(ValueError):
    """A payload that does not decode to a valid plan (HTTP 400 material)."""


class TableMultiplier(Multiplier):
    """A multiplier defined extensionally by its full product table.

    The decode-side stand-in for whatever multiplier object produced a
    serialized LUT product: behaviorally identical (products *are* the
    table) and therefore fingerprint-identical.
    """

    def __init__(self, table: np.ndarray, name: str = "table"):
        table = np.asarray(table, dtype=np.int64)
        if table.shape != (OPERAND_LEVELS, OPERAND_LEVELS):
            raise PlanCodecError(
                f"LUT table must have shape {(OPERAND_LEVELS, OPERAND_LEVELS)}, "
                f"got {table.shape}"
            )
        self._table = np.ascontiguousarray(table)
        self.name = str(name)

    def multiply(self, w: np.ndarray, a: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.int64)
        a = np.asarray(a, dtype=np.int64)
        return self._table[w, a]


def encode_product(model: ProductModel) -> dict:
    """JSON-able payload of one product model (see module docstring)."""
    if isinstance(model, PerforatedProduct):
        return {
            "kind": "perforated",
            "m": model.m,
            "use_control_variate": model.use_control_variate,
        }
    if isinstance(model, LUTProduct):
        table = np.ascontiguousarray(model.lut, dtype=np.int64)
        return {
            "kind": "lut",
            "name": model.multiplier.name,
            "table": base64.b64encode(table.tobytes()).decode("ascii"),
        }
    if isinstance(model, AccurateProduct):
        return {"kind": "accurate"}
    raise PlanCodecError(
        f"cannot encode product model of type {type(model).__name__}"
    )


def decode_product(payload: dict) -> ProductModel:
    """Inverse of :func:`encode_product` (fingerprint preserving)."""
    if not isinstance(payload, dict):
        raise PlanCodecError(f"product payload must be an object, got {payload!r}")
    kind = payload.get("kind")
    if kind == "accurate":
        return AccurateProduct()
    if kind == "perforated":
        try:
            m = int(payload["m"])
        except (KeyError, TypeError, ValueError):
            raise PlanCodecError(f"bad perforated payload: {payload!r}") from None
        use_cv = bool(payload.get("use_control_variate", True))
        try:
            return PerforatedProduct(m, use_control_variate=use_cv)
        except ValueError as exc:
            raise PlanCodecError(str(exc)) from None
    if kind == "lut":
        try:
            raw = base64.b64decode(payload["table"], validate=True)
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanCodecError(f"bad LUT table payload: {exc}") from None
        expected = OPERAND_LEVELS * OPERAND_LEVELS * np.dtype(np.int64).itemsize
        if len(raw) != expected:
            raise PlanCodecError(
                f"LUT table must be {expected} bytes of int64, got {len(raw)}"
            )
        table = np.frombuffer(raw, dtype=np.int64).reshape(
            OPERAND_LEVELS, OPERAND_LEVELS
        )
        return LUTProduct(TableMultiplier(table, name=payload.get("name", "table")))
    raise PlanCodecError(f"unknown product kind {kind!r}")


def encode_plan(plan: ExecutionPlan) -> dict:
    """JSON-able payload of one execution plan."""
    return {
        "default": encode_product(plan.default),
        "per_layer": {
            name: encode_product(model) for name, model in plan.per_layer.items()
        },
    }


def decode_plan(payload: dict) -> ExecutionPlan:
    """Inverse of :func:`encode_plan` (fingerprint preserving)."""
    if not isinstance(payload, dict) or "default" not in payload:
        raise PlanCodecError(f"plan payload must be an object with 'default': {payload!r}")
    per_layer = payload.get("per_layer", {})
    if not isinstance(per_layer, dict):
        raise PlanCodecError(f"per_layer must be an object, got {per_layer!r}")
    return ExecutionPlan(
        default=decode_product(payload["default"]),
        per_layer={
            str(name): decode_product(model) for name, model in per_layer.items()
        },
    )


def encode_plans(plans: "list[ExecutionPlan]") -> list[dict]:
    return [encode_plan(plan) for plan in plans]


def decode_plans(payloads: "list[dict]") -> list[ExecutionPlan]:
    if not isinstance(payloads, list):
        raise PlanCodecError(f"plans must be a list, got {payloads!r}")
    return [decode_plan(payload) for payload in payloads]


__all__ = [
    "PlanCodecError",
    "TableMultiplier",
    "encode_product",
    "decode_product",
    "encode_plan",
    "decode_plan",
    "encode_plans",
    "decode_plans",
]
