"""`EvaluationService`: the persistent, prefix-aware evaluation runtime.

Every sweep and DSE campaign in this repo reduces to the same operation —
score many per-layer approximation plans against trained models.  The
service is the one execution path behind all of them:

* **publish once** — trained-model parameters and datasets are written
  once into shared blocks (:mod:`repro.runtime.publishing`); workers
  attach read-only views, so N workers hold one copy of the bytes;
* **persistent workers** — one process pool outlives every submitted
  batch: executors stay calibrated, kernels stay compiled, and successive
  DSE generations or sweep batches pay zero per-batch setup;
* **prefix-aware scheduling** — submitted cells are ordered with the
  fingerprint schedule of :mod:`repro.runtime.scheduling` and distributed
  as contiguous chunks, so plans sharing a layer prefix land adjacently on
  one worker and resume from checkpoints instead of re-running the prefix;
* **cost-balanced work stealing** — on the pool path the schedule is split
  into *more chunks than workers* (``chunks_per_worker`` per worker),
  balanced by the predicted cell cost of a
  :class:`~repro.runtime.cost_model.CellCostModel` with cuts biased toward
  prefix-divergence boundaries; idle workers drain the excess chunks from
  the pool's queue, so one LUT-heavy straggler chunk no longer serializes
  the batch.  Measured chunk wall-clocks feed back into the cost model
  (online refinement), sharpening the balance across a session;
* **bit-exact** — every accuracy the service returns is identical to
  evaluating the same plan on a fresh in-process executor with reuse
  disabled (pinned by the parity suite).

Lifecycle::

    with EvaluationService(models, datasets, max_workers=4) as service:
        accuracies = service.evaluate_plans(0, plans)        # blocking
        batch = service.submit([(0, plan_a), (1, plan_b)])   # async
        accuracies = batch.results()                          # input order

``close()`` (or leaving the ``with`` block, normally *or* via an exception
such as :class:`KeyboardInterrupt`) drains the workers, cancels queued
chunks, and unlinks every shared block — no leaked ``/dev/shm`` segments,
even when a worker failed mid-batch.

``max_workers=1`` degenerates to a fully in-process serial path with no
multiprocessing overhead (the same worker code runs against a service-
private state dict), which keeps the service usable as the *only* execution
path: callers never branch on worker count.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.datasets.synthetic import Dataset
from repro.runtime.publishing import (
    SharedDatasets,
    SharedTrainedModels,
    publish_datasets,
    publish_trained_models,
)
from repro.runtime.scheduling import (
    DEFAULT_PLAN_GROUP_SIZE,
    contiguous_chunks,
    cost_balanced_chunks,
    model_mac_names,
    plan_group_slices,
    schedule_cells,
    shared_prefix_depths,
)
from repro.runtime.sizing import auto_worker_count
from repro.runtime.worker import (
    STAT_COUNTERS,
    _init_pool_worker,
    _timed_eval_cell_chunk_task,
    eval_cell_chunk,
    init_worker_state,
)
from repro.simulation.inference import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.runtime.cost_model import CellCostModel
    from repro.simulation.campaign import TrainedModel


class EvaluationBatch:
    """Handle of one submitted cell batch; resolves to input-order accuracies.

    Returned by :meth:`EvaluationService.submit`.  On the pool path the
    chunks run asynchronously — :meth:`results` blocks until every chunk is
    done, cancelling the rest of the batch on the first failure (including
    :class:`KeyboardInterrupt`) so the service drains instead of churning
    through doomed work.  The first failure is cached: every later
    :meth:`results` call re-raises *it*, not the ``CancelledError`` of the
    chunks the cleanup cancelled.  Pool chunks return ``(accuracies,
    wall_clock, counters)`` triples; each measured wall-clock is folded
    into the service's cost model — and each counter delta into the
    service's aggregated worker counters — as the chunk completes.
    """

    def __init__(
        self,
        order: list[int],
        chunk_results: list[list[float]] | None,
        futures: "list[Future] | None",
        num_cells: int,
        cost_model: CellCostModel | None = None,
        chunk_units: list[dict[str, float]] | None = None,
        counters_sink: "Callable[[dict[str, int]], None] | None" = None,
    ):
        self._order = order
        self._chunk_results = chunk_results
        self._futures = futures
        self._num_cells = num_cells
        self._cost_model = cost_model
        self._chunk_units = chunk_units
        self._counters_sink = counters_sink
        self._failure: BaseException | None = None

    def __len__(self) -> int:
        return self._num_cells

    def results(self) -> list[float]:
        """Accuracies in the *submission* order of the batch's cells."""
        if self._failure is not None:
            raise self._failure
        if self._chunk_results is None:
            collected: list[list[float]] = []
            try:
                for index, future in enumerate(self._futures):
                    outcome = future.result()
                    accuracies, elapsed, counters = outcome
                    collected.append(accuracies)
                    if self._cost_model is not None and self._chunk_units:
                        self._cost_model.observe(self._chunk_units[index], elapsed)
                    if self._counters_sink is not None:
                        self._counters_sink(counters)
            except BaseException as exc:
                # First failure (worker exception, KeyboardInterrupt, ...):
                # stop feeding the pool — queued chunks are dead weight —
                # and remember the cause so repeated results() calls see it
                # instead of the CancelledError of the chunks we cancel.
                for future in self._futures:
                    future.cancel()
                self._failure = exc
                self._futures = None
                raise
            self._chunk_results = collected
            self._futures = None
        flat = [value for chunk in self._chunk_results for value in chunk]
        ordered: list[float] = [0.0] * self._num_cells
        for schedule_pos, cell_index in enumerate(self._order):
            ordered[cell_index] = flat[schedule_pos]
        return ordered


class EvaluationService:
    """Persistent prefix-aware worker service scoring ``(model, plan)`` cells.

    Parameters
    ----------
    trained_models:
        The models the session hosts; cells reference them by index (see
        :meth:`model_index`).  A multi-model session (e.g. all six
        reference networks x both datasets) publishes everything once and
        serves every sweep and campaign from the same pool.
    datasets:
        ``{name: Dataset}`` covering every ``TrainedModel.dataset_name``
        (calibration reads the train split's head, evaluation the test
        split).
    max_workers:
        Worker process count; ``None`` auto-sizes from the schedulable-CPU
        count (CPU affinity / cgroup cpusets, not the machine's core
        count) discounted by host load
        (:func:`repro.runtime.sizing.auto_worker_count`); ``1`` runs fully
        in-process.  An explicit count is honored verbatim — the
        degrade-to-serial clamp of
        :func:`~repro.runtime.sizing.resolve_worker_count` applies at the
        campaign/sweep/CLI entry points, not here.
    requested_workers:
        What the caller originally asked for, *before* any clamping at the
        entry point (``None`` for auto-sizing), reported next to the
        effective ``workers`` in :meth:`stats` so a degraded-to-serial run
        is visible as ``requested_workers=4, workers=1``.  Defaults to
        ``max_workers``.
    chunks_per_worker:
        Pool-path oversubscription factor: each batch is split into up to
        ``max_workers * chunks_per_worker`` cost-balanced chunks, so idle
        workers steal queued chunks instead of waiting on a straggler.
        ``1`` restores one-chunk-per-worker static partitioning.
    max_eval_images / calibration_images / engine_backend / reuse_prefix:
        As in :func:`repro.simulation.campaign.plan_sweep` — they select
        the (bit-exact) measurement setup every worker reproduces.
    fuse_plans:
        Ride the fused multi-plan path: workers evaluate each plan group
        (consecutive same-model cells of the prefix-sorted schedule, up to
        ``plan_group_size`` plans) through one batched backend launch per
        layer (:meth:`~repro.simulation.inference
        .ApproximateExecutor.forward_many`) instead of looping plans in
        Python, the scheduler prices and cuts chunks at group granularity,
        and :meth:`stats` reports ``fused_launches`` /
        ``plans_per_launch_avg``.  Bit-exact either way; backends without
        the ``fused_multi_plan`` capability (e.g. ``lowmem``) fall back to
        the per-plan loop automatically.
    plan_group_size:
        Cap on plans per fused group (default
        :data:`~repro.runtime.scheduling.DEFAULT_PLAN_GROUP_SIZE`); bounds
        the fused path's stacked-activation memory.
    use_shared_memory:
        ``None`` (default) publishes models and datasets exactly when
        worker processes are used; ``True`` forces the publish/attach
        round trip even in-process (useful for testing), ``False`` ships
        them directly to the pool initializer.
    batch_size:
        Forward batch size of every evaluation (part of the measurement
        setup: it is hashed into DSE ledger context keys).
    """

    def __init__(
        self,
        trained_models: "Iterable[TrainedModel]",
        datasets: dict[str, Dataset],
        *,
        max_workers: int | None = None,
        requested_workers: int | None = None,
        chunks_per_worker: int = 4,
        max_eval_images: int | None = None,
        calibration_images: int = 128,
        engine_backend: str | None = None,
        reuse_prefix: bool = True,
        use_shared_memory: bool | None = None,
        batch_size: int = 256,
        fuse_plans: bool = True,
        plan_group_size: int = DEFAULT_PLAN_GROUP_SIZE,
    ):
        self.models = list(trained_models)
        if not self.models:
            raise ValueError("EvaluationService needs at least one trained model")
        self.datasets = dict(datasets)
        missing = sorted(
            {t.dataset_name for t in self.models} - set(self.datasets)
        )
        if missing:
            raise ValueError(f"no dataset published for: {missing}")
        if max_workers is None:
            # Affinity/load-aware, not os.cpu_count(): a cgroup-limited
            # container reports the machine's cores, not the schedulable ones.
            max_workers = auto_worker_count()
        if int(max_workers) < 1:
            raise ValueError(
                f"max_workers must be a positive integer, got {max_workers}"
            )
        if int(chunks_per_worker) < 1:
            raise ValueError(
                f"chunks_per_worker must be a positive integer, got {chunks_per_worker}"
            )
        if int(batch_size) < 1:
            raise ValueError(f"batch_size must be a positive integer, got {batch_size}")
        if int(plan_group_size) < 1:
            raise ValueError(
                f"plan_group_size must be a positive integer, got {plan_group_size}"
            )
        self.max_workers = int(max_workers)
        self.requested_workers = (
            self.max_workers if requested_workers is None else int(requested_workers)
        )
        self.chunks_per_worker = int(chunks_per_worker)
        self.max_eval_images = max_eval_images
        self.calibration_images = int(calibration_images)
        self.engine_backend = engine_backend
        self.reuse_prefix = bool(reuse_prefix)
        self.use_shared_memory = use_shared_memory
        self.batch_size = int(batch_size)
        self.fuse_plans = bool(fuse_plans)
        self.plan_group_size = int(plan_group_size)

        self._worker_counters = {counter: 0 for counter in STAT_COUNTERS}
        self._counters_lock = threading.Lock()
        self._mac_names = {
            index: model_mac_names(trained)
            for index, trained in enumerate(self.models)
        }
        self._pool: ProcessPoolExecutor | None = None
        self._cost_model: CellCostModel | None = None
        self._serial_state: dict | None = None
        self._model_store: SharedTrainedModels | None = None
        self._dataset_store: SharedDatasets | None = None
        self._started = False
        self._closed = False
        self.cells_submitted = 0
        self.batches_submitted = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def serial(self) -> bool:
        """Whether the service runs fully in-process (``max_workers == 1``)."""
        return self.max_workers == 1

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "EvaluationService":
        """Publish models/datasets and spawn the worker pool (idempotent)."""
        if self._closed:
            raise RuntimeError("EvaluationService is closed")
        if self._started:
            return self
        share = (
            (not self.serial)
            if self.use_shared_memory is None
            else bool(self.use_shared_memory)
        )
        try:
            # Publish inside the try: if the second publish (or the pool
            # spawn) fails, close() still unlinks the first block.
            if share:
                self._model_store = publish_trained_models(self.models)
                self._dataset_store = publish_datasets(self.datasets)
            initargs = (
                self._model_store if self._model_store is not None else self.models,
                self._dataset_store
                if self._dataset_store is not None
                else self.datasets,
                self.max_eval_images,
                self.calibration_images,
                self.engine_backend,
                self.reuse_prefix,
                self.batch_size,
                self.fuse_plans,
                self.plan_group_size,
            )
            if self.serial:
                self._serial_state = {}
                init_worker_state(self._serial_state, *initargs)
            else:
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=context,
                    initializer=_init_pool_worker,
                    initargs=initargs,
                )
        except BaseException:
            self._started = True  # let close() tear down the partial state
            self.close()
            raise
        self._started = True
        return self

    def __enter__(self) -> "EvaluationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Drain workers, cancel queued chunks, unlink shared blocks.

        Idempotent, and safe to call at any point of the lifecycle —
        including from an exception path such as :class:`KeyboardInterrupt`
        or after a worker failure: running chunks are waited out, queued
        chunks are cancelled, and every published block is released.
        """
        if self._closed:
            return
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if self._serial_state is not None:
            # Drop the in-process executors/views before unlinking below.
            self._serial_state.clear()
            self._serial_state = None
        stores = (self._model_store, self._dataset_store)
        self._model_store = self._dataset_store = None
        for store in stores:
            if store is not None:
                store.unlink()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def model_index(self, name: str, dataset_name: str | None = None) -> int:
        """Index of one hosted model by name (and dataset, when ambiguous)."""
        matches = [
            index
            for index, trained in enumerate(self.models)
            if trained.name == name
            and (dataset_name is None or trained.dataset_name == dataset_name)
        ]
        if not matches:
            raise KeyError(f"service hosts no model {name!r} (dataset={dataset_name!r})")
        if len(matches) > 1:
            raise KeyError(
                f"model {name!r} is hosted for several datasets; pass dataset_name"
            )
        return matches[0]

    def mac_names(self, model_index: int) -> tuple[str, ...]:
        """MAC layer names of one hosted model, in execution order."""
        return self._mac_names[model_index]

    def shared_store_handles(self) -> list[tuple[str, str]]:
        """``(kind, name)`` of every published block (for leak diagnostics)."""
        return [
            (store.store.kind, store.store.name)
            for store in (self._model_store, self._dataset_store)
            if store is not None
        ]

    def nbytes_shared(self) -> int:
        """Total bytes placed in shared blocks (0 when shipping by pickle)."""
        return sum(
            store.nbytes_shared()
            for store in (self._model_store, self._dataset_store)
            if store is not None
        )

    def cost_model(self) -> CellCostModel:
        """The session's cell cost model (built lazily, one per service).

        Layer work is extracted once per hosted model (a one-image dummy
        forward); the per-technique throughput factors start at the
        bench-calibrated defaults and are refined online from the measured
        chunk wall-clocks of every pool batch.
        """
        # Imported lazily: cost_model imports the simulation package, whose
        # campaign module imports this module back — a top-level import here
        # breaks a cold `import repro.runtime`.
        from repro.runtime.cost_model import CellCostModel

        if self._cost_model is None:
            shapes = [
                tuple(self.datasets[trained.dataset_name].test_images.shape[1:])
                for trained in self.models
            ]
            self._cost_model = CellCostModel.from_models(self.models, shapes)
        return self._cost_model

    def session_context(self) -> dict:
        """The measurement setup of this session, for run manifests.

        Everything that selects *what* the service measures (hosted models
        and datasets, eval caps, calibration size, backend, batch size —
        the knobs hashed into DSE ledger context keys) plus how it executes
        (workers, shared memory).  JSON-able by construction.
        """
        return {
            "workers": self.max_workers,
            "chunks_per_worker": self.chunks_per_worker,
            "serial": self.serial,
            "models": [
                {"name": trained.name, "dataset": trained.dataset_name}
                for trained in self.models
            ],
            "datasets": sorted(self.datasets),
            "max_eval_images": self.max_eval_images,
            "calibration_images": self.calibration_images,
            "engine_backend": self.engine_backend,
            "reuse_prefix": self.reuse_prefix,
            "use_shared_memory": self.use_shared_memory,
            "batch_size": self.batch_size,
            "nbytes_shared": self.nbytes_shared(),
        }

    def _absorb_worker_counters(self, counters: dict[str, int]) -> None:
        """Fold one chunk's executor-counter delta into the session totals."""
        with self._counters_lock:
            for key, value in counters.items():
                if key in self._worker_counters:
                    self._worker_counters[key] += int(value)

    def stats(self) -> dict:
        """Counters of the session so far (``repro-runtime-stats/v1.1`` schema).

        The payload nests everything engine-level under ``"engine"``, with
        ``requested_workers`` (what the caller asked for) next to the
        effective ``workers`` — the schema the jobs layer extends with its
        ``jobs``/``cache``/``sessions`` sections.  v1.1 adds (additively)
        the fused multi-plan observability counters: ``fused_launches``,
        ``fused_plans_total``, ``plans_per_launch_avg`` (``None`` until the
        first fused launch) and the prefix-checkpoint / activation-code
        cache hit counters, aggregated across every worker.
        """
        from repro.runtime.stats import runtime_stats

        engine = {
            "requested_workers": self.requested_workers,
            "workers": self.max_workers,
            "chunks_per_worker": self.chunks_per_worker,
            "models": len(self.models),
            "datasets": len(self.datasets),
            "batches_submitted": self.batches_submitted,
            "cells_submitted": self.cells_submitted,
            "nbytes_shared": self.nbytes_shared(),
            "fuse_plans": self.fuse_plans,
            "plan_group_size": self.plan_group_size,
        }
        with self._counters_lock:
            counters = dict(self._worker_counters)
        if self._serial_state is not None:
            for counter in STAT_COUNTERS:
                counters[counter] += int(self._serial_state.get(counter, 0))
        engine.update(counters)
        launches = counters["fused_launches"]
        engine["plans_per_launch_avg"] = (
            counters["fused_plans_total"] / launches if launches else None
        )
        if self._cost_model is not None:
            engine["cost_model_observations"] = self._cost_model.observations
            engine["cost_model_seconds_per_unit"] = self._cost_model.seconds_per_unit
        if self._serial_state is not None:
            engine["executor_builds"] = self._serial_state.get("executor_builds", 0)
            engine["cells_evaluated"] = self._serial_state.get("cells_evaluated", 0)
        return runtime_stats(engine)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _validate_cells(
        self, cells: Sequence[tuple[int, ExecutionPlan]]
    ) -> list[tuple[int, ExecutionPlan]]:
        validated: list[tuple[int, ExecutionPlan]] = []
        for model_index, plan in cells:
            model_index = int(model_index)
            if not 0 <= model_index < len(self.models):
                raise IndexError(
                    f"model index {model_index} out of range "
                    f"(service hosts {len(self.models)} models)"
                )
            if not isinstance(plan, ExecutionPlan):
                raise TypeError(f"cell plan must be an ExecutionPlan, got {plan!r}")
            validated.append((model_index, plan))
        return validated

    def submit(self, cells: Sequence[tuple[int, ExecutionPlan]]) -> EvaluationBatch:
        """Schedule a batch of ``(model_index, plan)`` cells; returns a handle.

        Cells are ordered with the prefix-aware fingerprint schedule.  The
        serial path evaluates them in-process as one contiguous block; the
        pool path splits the schedule into up to ``max_workers *
        chunks_per_worker`` cost-balanced contiguous chunks (cuts biased
        toward prefix-divergence boundaries) and dispatches them
        asynchronously — the excess chunks sit in the pool's queue and are
        *stolen* by whichever worker goes idle first, so a mispredicted
        straggler delays one chunk, not the whole batch.  With
        ``fuse_plans`` on, the chunking unit is the *plan group* (up to
        ``plan_group_size`` consecutive same-model cells), priced as one
        fused launch tree (:meth:`CellCostModel.group_cost`) and never
        split across chunks — so the groups a worker fuses are exactly the
        groups the scheduler balanced.  Chunking never changes what is
        evaluated: every cell runs the same measurement regardless of
        worker count (the bit-exactness contract).  ``batch.results()``
        resolves to accuracies in the cells' *submission* order.  The
        service auto-starts on first submission.
        """
        if self._closed:
            raise RuntimeError("EvaluationService is closed")
        if not self._started:
            self.start()
        cells = self._validate_cells(cells)
        self.batches_submitted += 1
        self.cells_submitted += len(cells)
        if not cells:
            return EvaluationBatch([], [], None, 0)
        order = schedule_cells(cells, self._mac_names)
        schedule = [cells[index] for index in order]
        if self.serial:
            chunks = contiguous_chunks(schedule, self.max_workers)
            chunk_results = [
                eval_cell_chunk(self._serial_state, chunk) for chunk in chunks
            ]
            return EvaluationBatch(order, chunk_results, None, len(cells))
        cost_model = self.cost_model()
        depths = shared_prefix_depths(schedule, self._mac_names)
        max_chunks = self.max_workers * self.chunks_per_worker
        if self.fuse_plans:
            # Chunk at plan-group granularity: each group is one fused
            # launch tree on its worker, so a cut through a group would
            # shrink the very batch the fusion amortizes.
            slices = plan_group_slices(
                schedule, self.plan_group_size, split_depths=depths
            )
            groups = [schedule[start:stop] for start, stop in slices]
            group_costs = [
                cost_model.group_cost(
                    group[0][0],
                    [plan for _, plan in group],
                    self._mac_names[group[0][0]],
                )
                for group in groups
            ]
            # Depth between the last cell of one group and the first of the
            # next — the prefix a cut between those groups would re-run.
            group_depths = [depths[stop - 1] for _, stop in slices[:-1]]
            group_chunks = cost_balanced_chunks(
                groups, group_costs, max_chunks, split_depths=group_depths
            )
            chunks = [
                [cell for group in chunk for cell in group]
                for chunk in group_chunks
            ]
        else:
            costs = [
                cost_model.cell_cost(model_index, plan, self._mac_names[model_index])
                for model_index, plan in schedule
            ]
            chunks = cost_balanced_chunks(
                schedule, costs, max_chunks, split_depths=depths
            )
        chunk_units = [
            cost_model.chunk_units_by_kind(chunk, self._mac_names)
            for chunk in chunks
        ]
        futures = [
            self._pool.submit(_timed_eval_cell_chunk_task, chunk)
            for chunk in chunks
        ]
        return EvaluationBatch(
            order,
            None,
            futures,
            len(cells),
            cost_model=cost_model,
            chunk_units=chunk_units,
            counters_sink=self._absorb_worker_counters,
        )

    def evaluate_cells(self, cells: Sequence[tuple[int, ExecutionPlan]]) -> list[float]:
        """Blocking convenience: ``submit(cells).results()``."""
        return self.submit(cells).results()

    def evaluate_plans(
        self, model_index: int, plans: Sequence[ExecutionPlan]
    ) -> list[float]:
        """Accuracies of ``plans`` on one hosted model, in input order."""
        return self.evaluate_cells([(model_index, plan) for plan in plans])


__all__ = ["EvaluationService", "EvaluationBatch"]
